//! Chrome `trace_event` JSON exporter.
//!
//! Emits the "JSON object format" (`{"traceEvents": [...]}`) with one
//! complete event (`ph: "X"`) per span, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. Timestamps are
//! microseconds; sim-stamped spans use the virtual timeline, wall-only
//! spans (real runs) use nanoseconds-since-epoch / 1000, so a given
//! trace file lives on whichever clock the run used. The span id and
//! parent id ride along in `args` so tooling (and the round-trip tests)
//! can reconstruct the hierarchy exactly.

use crate::span::SpanRecord;
use serde_json::{Map, Value};

/// Timestamp in trace microseconds: sim time when stamped, else wall.
fn ts_us(span: &SpanRecord) -> (f64, f64) {
    match (span.sim_start, span.sim_end) {
        (Some(s), Some(e)) => (s.as_secs_f64() * 1e6, (e - s).as_secs_f64() * 1e6),
        _ => (
            span.wall_start_ns as f64 / 1e3,
            span.wall_end_ns.saturating_sub(span.wall_start_ns) as f64 / 1e3,
        ),
    }
}

fn event(span: &SpanRecord) -> Value {
    event_with_pid(span, 1.0)
}

fn event_with_pid(span: &SpanRecord, pid: f64) -> Value {
    let (ts, dur) = ts_us(span);
    let mut args = Map::new();
    args.insert("span_id".to_string(), Value::from(span.id as f64));
    args.insert(
        "parent_id".to_string(),
        match span.parent {
            Some(p) => Value::from(p as f64),
            None => Value::Null,
        },
    );
    args.insert(
        "clock".to_string(),
        Value::from(if span.sim_start.is_some() {
            "sim"
        } else {
            "wall"
        }),
    );
    args.insert(
        "wall_start_s".to_string(),
        Value::from(span.wall_start_ns as f64 * 1e-9),
    );
    if let Some(trace_id) = span.trace_id.as_deref() {
        args.insert("trace_id".to_string(), Value::from(trace_id));
    }
    for (k, v) in &span.attrs {
        args.insert(format!("attr.{k}"), Value::from(v.as_str()));
    }
    let mut ev = Map::new();
    ev.insert("name".to_string(), Value::from(span.name.as_str()));
    ev.insert("cat".to_string(), Value::from(span.stage.as_str()));
    ev.insert("ph".to_string(), Value::from("X"));
    ev.insert("pid".to_string(), Value::from(pid));
    ev.insert("tid".to_string(), Value::from(span.tid as f64));
    ev.insert("ts".to_string(), Value::from(ts));
    ev.insert("dur".to_string(), Value::from(dur));
    ev.insert("args".to_string(), Value::Object(args));
    Value::Object(ev)
}

/// Render spans as a Chrome-trace JSON document.
pub fn render(spans: &[SpanRecord]) -> String {
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by(|a, b| {
        ts_us(a)
            .0
            .partial_cmp(&ts_us(b).0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    let events: Vec<Value> = ordered.into_iter().map(event).collect();
    finish(events)
}

/// Render several span stores as **separate process lanes** of one
/// Chrome trace: lane *i* gets pid *i+1*, named via a `ph:"M"`
/// `process_name` metadata event, so Perfetto shows e.g. each facility
/// as its own process row. Used by `crate::xfac` for stitched
/// cross-facility timelines.
pub fn render_processes(lanes: &[(&str, Vec<&SpanRecord>)]) -> String {
    let mut events: Vec<Value> = Vec::new();
    for (i, (name, _)) in lanes.iter().enumerate() {
        let pid = (i + 1) as f64;
        let mut args = Map::new();
        args.insert("name".to_string(), Value::from(*name));
        let mut meta = Map::new();
        meta.insert("name".to_string(), Value::from("process_name"));
        meta.insert("ph".to_string(), Value::from("M"));
        meta.insert("pid".to_string(), Value::from(pid));
        meta.insert("tid".to_string(), Value::from(0.0));
        meta.insert("args".to_string(), Value::Object(args));
        events.push(Value::Object(meta));
    }
    let mut ordered: Vec<(f64, &SpanRecord)> = Vec::new();
    for (i, (_, spans)) in lanes.iter().enumerate() {
        let pid = (i + 1) as f64;
        ordered.extend(spans.iter().map(|s| (pid, *s)));
    }
    ordered.sort_by(|a, b| {
        ts_us(a.1)
            .0
            .partial_cmp(&ts_us(b.1).0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.id.cmp(&b.1.id))
    });
    events.extend(ordered.into_iter().map(|(pid, s)| event_with_pid(s, pid)));
    finish(events)
}

fn finish(events: Vec<Value>) -> String {
    let mut root = Map::new();
    root.insert("traceEvents".to_string(), Value::from(events));
    root.insert("displayTimeUnit".to_string(), Value::from("ms"));
    serde_json::to_string(&Value::Object(root)).expect("trace serialization is infallible")
}

//! JSON-lines exporter: one self-describing object per line — spans
//! first (open order), then counters, gauges, and histogram summaries.
//! The format a quick `jq`/Python script wants when neither a trace
//! viewer nor a Prometheus scraper is at hand.

use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;
use serde_json::{Map, Value};

fn span_line(span: &SpanRecord) -> Value {
    let mut obj = Map::new();
    obj.insert("type".to_string(), Value::from("span"));
    obj.insert("id".to_string(), Value::from(span.id as f64));
    obj.insert(
        "parent".to_string(),
        span.parent
            .map(|p| Value::from(p as f64))
            .unwrap_or(Value::Null),
    );
    obj.insert("stage".to_string(), Value::from(span.stage.as_str()));
    obj.insert("name".to_string(), Value::from(span.name.as_str()));
    obj.insert("tid".to_string(), Value::from(span.tid as f64));
    obj.insert(
        "sim_start_s".to_string(),
        span.sim_start
            .map(|t| Value::from(t.as_secs_f64()))
            .unwrap_or(Value::Null),
    );
    obj.insert(
        "sim_end_s".to_string(),
        span.sim_end
            .map(|t| Value::from(t.as_secs_f64()))
            .unwrap_or(Value::Null),
    );
    obj.insert(
        "wall_start_s".to_string(),
        Value::from(span.wall_start_ns as f64 * 1e-9),
    );
    obj.insert(
        "wall_end_s".to_string(),
        Value::from(span.wall_end_ns as f64 * 1e-9),
    );
    let mut attrs = Map::new();
    for (k, v) in &span.attrs {
        attrs.insert(k.clone(), Value::from(v.as_str()));
    }
    obj.insert("attrs".to_string(), Value::Object(attrs));
    Value::Object(obj)
}

/// Render spans + metrics as JSON-lines.
pub fn render(spans: &[SpanRecord], snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let push = |out: &mut String, v: Value| {
        out.push_str(&serde_json::to_string(&v).expect("jsonl serialization is infallible"));
        out.push('\n');
    };
    for span in spans {
        push(&mut out, span_line(span));
    }
    for (key, value) in &snapshot.counters {
        let mut obj = Map::new();
        obj.insert("type".to_string(), Value::from("counter"));
        obj.insert("name".to_string(), Value::from(key.name.as_str()));
        obj.insert("stage".to_string(), Value::from(key.stage.as_str()));
        obj.insert("value".to_string(), Value::from(*value as f64));
        push(&mut out, Value::Object(obj));
    }
    for (key, value) in &snapshot.gauges {
        let mut obj = Map::new();
        obj.insert("type".to_string(), Value::from("gauge"));
        obj.insert("name".to_string(), Value::from(key.name.as_str()));
        obj.insert("stage".to_string(), Value::from(key.stage.as_str()));
        obj.insert("value".to_string(), Value::from(*value));
        push(&mut out, Value::Object(obj));
    }
    for (key, h) in &snapshot.histograms {
        let mut obj = Map::new();
        obj.insert("type".to_string(), Value::from("histogram"));
        obj.insert("name".to_string(), Value::from(key.name.as_str()));
        obj.insert("stage".to_string(), Value::from(key.stage.as_str()));
        obj.insert("count".to_string(), Value::from(h.count() as f64));
        obj.insert("sum".to_string(), Value::from(h.sum()));
        obj.insert("max".to_string(), Value::from(h.max()));
        obj.insert("p50".to_string(), Value::from(h.p50()));
        obj.insert("p90".to_string(), Value::from(h.p90()));
        obj.insert("p99".to_string(), Value::from(h.p99()));
        push(&mut out, Value::Object(obj));
    }
    out
}

//! JSON-lines exporter: one self-describing object per line — spans
//! first (open order), then counters, gauges, and histogram summaries.
//! The format a quick `jq`/Python script wants when neither a trace
//! viewer nor a Prometheus scraper is at hand.
//!
//! [`parse`] is the inverse for the span/counter/gauge lines, so a
//! [`crate::archive::RunArchive`] can reload a dumped store and diff it
//! offline. Histogram summary lines are lossy by construction (they hold
//! percentiles, not samples) and are skipped on the way back in.

use crate::metrics::{MetricKey, MetricsSnapshot};
use crate::span::SpanRecord;
use eoml_simtime::SimTime;
use serde_json::{Map, Value};

fn span_line(span: &SpanRecord) -> Value {
    let mut obj = Map::new();
    obj.insert("type".to_string(), Value::from("span"));
    obj.insert("id".to_string(), Value::from(span.id as f64));
    obj.insert(
        "parent".to_string(),
        span.parent
            .map(|p| Value::from(p as f64))
            .unwrap_or(Value::Null),
    );
    obj.insert("stage".to_string(), Value::from(span.stage.as_str()));
    obj.insert("name".to_string(), Value::from(span.name.as_str()));
    obj.insert("tid".to_string(), Value::from(span.tid as f64));
    obj.insert(
        "sim_start_s".to_string(),
        span.sim_start
            .map(|t| Value::from(t.as_secs_f64()))
            .unwrap_or(Value::Null),
    );
    obj.insert(
        "sim_end_s".to_string(),
        span.sim_end
            .map(|t| Value::from(t.as_secs_f64()))
            .unwrap_or(Value::Null),
    );
    obj.insert(
        "wall_start_s".to_string(),
        Value::from(span.wall_start_ns as f64 * 1e-9),
    );
    obj.insert(
        "wall_end_s".to_string(),
        Value::from(span.wall_end_ns as f64 * 1e-9),
    );
    obj.insert(
        "trace_id".to_string(),
        span.trace_id
            .as_deref()
            .map(Value::from)
            .unwrap_or(Value::Null),
    );
    let mut attrs = Map::new();
    for (k, v) in &span.attrs {
        attrs.insert(k.clone(), Value::from(v.as_str()));
    }
    obj.insert("attrs".to_string(), Value::Object(attrs));
    Value::Object(obj)
}

/// Render spans + metrics as JSON-lines.
pub fn render(spans: &[SpanRecord], snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let push = |out: &mut String, v: Value| {
        out.push_str(&serde_json::to_string(&v).expect("jsonl serialization is infallible"));
        out.push('\n');
    };
    for span in spans {
        push(&mut out, span_line(span));
    }
    for (key, value) in &snapshot.counters {
        let mut obj = Map::new();
        obj.insert("type".to_string(), Value::from("counter"));
        obj.insert("name".to_string(), Value::from(key.name.as_str()));
        obj.insert("stage".to_string(), Value::from(key.stage.as_str()));
        obj.insert("value".to_string(), Value::from(*value as f64));
        push(&mut out, Value::Object(obj));
    }
    for (key, value) in &snapshot.gauges {
        let mut obj = Map::new();
        obj.insert("type".to_string(), Value::from("gauge"));
        obj.insert("name".to_string(), Value::from(key.name.as_str()));
        obj.insert("stage".to_string(), Value::from(key.stage.as_str()));
        obj.insert("value".to_string(), Value::from(*value));
        push(&mut out, Value::Object(obj));
    }
    for (key, h) in &snapshot.histograms {
        let mut obj = Map::new();
        obj.insert("type".to_string(), Value::from("histogram"));
        obj.insert("name".to_string(), Value::from(key.name.as_str()));
        obj.insert("stage".to_string(), Value::from(key.stage.as_str()));
        obj.insert("count".to_string(), Value::from(h.count() as f64));
        obj.insert("sum".to_string(), Value::from(h.sum()));
        obj.insert("max".to_string(), Value::from(h.max()));
        // Exact order statistics while the histogram still holds every
        // raw sample (n ≤ 1024); the ≤ 19 % log-bucket approximation
        // beyond that.
        let (p50, p90, p99, exact) = match h.exact_summary() {
            Some(s) => (
                s.percentile(50.0),
                s.percentile(90.0),
                s.percentile(99.0),
                true,
            ),
            None => (h.p50(), h.p90(), h.p99(), false),
        };
        obj.insert("p50".to_string(), Value::from(p50));
        obj.insert("p90".to_string(), Value::from(p90));
        obj.insert("p99".to_string(), Value::from(p99));
        obj.insert("exact".to_string(), Value::from(exact));
        push(&mut out, Value::Object(obj));
    }
    out
}

/// A JSONL dump parsed back into structured telemetry: the spans plus the
/// counter/gauge registry values (histogram summaries are not
/// reconstructable and are skipped).
#[derive(Debug, Clone, Default)]
pub struct ParsedJsonl {
    /// Span records, in dump order.
    pub spans: Vec<SpanRecord>,
    /// Counter values by `(name, stage)`.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge values by `(name, stage)`.
    pub gauges: Vec<(MetricKey, f64)>,
}

impl ParsedJsonl {
    /// Rebuild a [`MetricsSnapshot`] (histograms empty) — enough for the
    /// memory/alloc accounting that rides on counters and gauges.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: Vec::new(),
        }
    }
}

fn parse_span(obj: &Map, lineno: usize) -> Result<SpanRecord, String> {
    let err = |what: &str| format!("line {lineno}: span missing {what}");
    let num = |key: &str| obj.get(key).and_then(Value::as_f64);
    let sim = |key: &str| {
        obj.get(key)
            .filter(|v| !matches!(v, Value::Null))
            .and_then(Value::as_f64)
            .map(|s| SimTime::from_secs_f64(s.max(0.0)))
    };
    Ok(SpanRecord {
        id: num("id").ok_or_else(|| err("id"))? as u64,
        parent: obj
            .get("parent")
            .filter(|v| !matches!(v, Value::Null))
            .and_then(Value::as_f64)
            .map(|p| p as u64),
        stage: obj
            .get("stage")
            .and_then(Value::as_str)
            .ok_or_else(|| err("stage"))?
            .to_string(),
        name: obj
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| err("name"))?
            .to_string(),
        tid: num("tid").unwrap_or(0.0) as u64,
        sim_start: sim("sim_start_s"),
        sim_end: sim("sim_end_s"),
        wall_start_ns: (num("wall_start_s").unwrap_or(0.0) * 1e9).round() as u64,
        wall_end_ns: (num("wall_end_s").unwrap_or(0.0) * 1e9).round() as u64,
        trace_id: obj
            .get("trace_id")
            .and_then(Value::as_str)
            .map(str::to_string),
        attrs: obj
            .get("attrs")
            .and_then(Value::as_object)
            .map(|attrs| {
                attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.as_str().unwrap_or_default().to_string()))
                    .collect()
            })
            .unwrap_or_default(),
    })
}

fn parse_metric_key(obj: &Map, lineno: usize) -> Result<MetricKey, String> {
    let field = |what: &str| {
        obj.get(what)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("line {lineno}: metric missing {what}"))
    };
    Ok(MetricKey {
        name: field("name")?,
        stage: field("stage")?,
    })
}

/// Parse a [`render`]ed document back into spans, counters, and gauges.
///
/// Wall-clock bounds round-trip through seconds (sub-nanosecond loss
/// only); `attrs` come back key-sorted. Histogram lines are skipped —
/// their summaries cannot rebuild the sample distribution. Unknown line
/// types are ignored (forward compatibility); malformed lines error.
pub fn parse(text: &str) -> Result<ParsedJsonl, String> {
    let mut out = ParsedJsonl::default();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("line {lineno}: {e:?}"))?;
        let obj = value
            .as_object()
            .ok_or_else(|| format!("line {lineno}: not an object"))?;
        match obj.get("type").and_then(Value::as_str) {
            Some("span") => out.spans.push(parse_span(obj, lineno)?),
            Some("counter") => {
                let key = parse_metric_key(obj, lineno)?;
                let v = obj.get("value").and_then(Value::as_f64).unwrap_or(0.0);
                out.counters.push((key, v.round() as u64));
            }
            Some("gauge") => {
                let key = parse_metric_key(obj, lineno)?;
                let v = obj.get("value").and_then(Value::as_f64).unwrap_or(0.0);
                out.gauges.push((key, v));
            }
            Some(_) => {} // histogram summaries and future line types
            None => return Err(format!("line {lineno}: object without a type")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn histogram_line(rendered: &str) -> Value {
        rendered
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .find(|v| v.get("type").and_then(|t| t.as_str()) == Some("histogram"))
            .expect("histogram line present")
    }

    #[test]
    fn small_histograms_export_exact_percentiles() {
        let reg = MetricsRegistry::default();
        for i in 1..=100 {
            reg.observe("file_seconds", "download", i as f64);
        }
        let rendered = render(&[], &reg.snapshot());
        let line = histogram_line(&rendered);
        assert_eq!(line.get("exact").unwrap().as_bool(), Some(true));
        // Exact linear-interpolated percentiles over 1..=100.
        assert!((line.get("p50").unwrap().as_f64().unwrap() - 50.5).abs() < 1e-9);
        assert!((line.get("p90").unwrap().as_f64().unwrap() - 90.1).abs() < 1e-9);
        assert!((line.get("p99").unwrap().as_f64().unwrap() - 99.01).abs() < 1e-9);
    }

    #[test]
    fn large_histograms_fall_back_within_error_bound() {
        let reg = MetricsRegistry::default();
        // 2000 samples: past the 1024-sample buffer, so the exporter
        // falls back to log buckets.
        for i in 1..=2000 {
            reg.observe("file_seconds", "download", i as f64 / 1000.0);
        }
        let h = reg.histogram("file_seconds", "download").unwrap();
        assert!(h.exact_summary().is_none());
        let rendered = render(&[], &reg.snapshot());
        let line = histogram_line(&rendered);
        assert_eq!(line.get("exact").unwrap().as_bool(), Some(false));
        // One sub-bucket spans 2^(1/4) ≈ 1.19: approximation stays
        // within the documented ≤ 19 % relative-error bound of the
        // exact percentile.
        for (key, exact) in [("p50", 1.0005), ("p90", 1.8001), ("p99", 1.98001)] {
            let approx = line.get(key).unwrap().as_f64().unwrap();
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= 0.19,
                "{key}: approx={approx} exact={exact} rel={rel}"
            );
        }
    }

    #[test]
    fn exported_percentiles_cross_over_at_1024_samples() {
        let reg = MetricsRegistry::default();
        for i in 1..=1024 {
            reg.observe("file_seconds", "download", i as f64);
        }
        let line = histogram_line(&render(&[], &reg.snapshot()));
        assert_eq!(line.get("exact").unwrap().as_bool(), Some(true));
        let exact_p50 = line.get("p50").unwrap().as_f64().unwrap();
        assert!((exact_p50 - 512.5).abs() < 1e-9);

        // Sample 1025 flips the same histogram to the approximation.
        reg.observe("file_seconds", "download", 1025.0);
        let line = histogram_line(&render(&[], &reg.snapshot()));
        assert_eq!(line.get("exact").unwrap().as_bool(), Some(false));
        let approx_p50 = line.get("p50").unwrap().as_f64().unwrap();
        let rel = (approx_p50 - exact_p50).abs() / exact_p50;
        assert!(
            rel <= 0.19,
            "approx={approx_p50} exact={exact_p50} rel={rel}"
        );
    }

    #[test]
    fn dump_round_trips_spans_counters_and_gauges() {
        use crate::TraceContext;
        use eoml_simtime::SimTime;
        let obs = crate::Obs::new();
        obs.record_sim_span_traced(
            "download",
            "file",
            SimTime::from_secs_f64(1.5),
            SimTime::from_secs_f64(4.0),
            Some(&TraceContext::new("MOD.A2022001.0610")),
            &[("file", "MOD021KM.A2022001.0610.hdf")],
        );
        {
            let _guard = obs.span("preprocess", "wall_only");
        }
        obs.counter_add("alloc_bytes", "preprocess", 4096);
        obs.gauge_set("alloc_peak_bytes", "preprocess", 2048.0);

        let parsed = parse(&obs.jsonl()).expect("round trip");
        assert_eq!(parsed.spans.len(), 2);
        let sim = &parsed.spans[0];
        assert_eq!(sim.stage, "download");
        assert_eq!(sim.sim_seconds(), Some(2.5));
        assert_eq!(sim.trace_id.as_deref(), Some("MOD.A2022001.0610"));
        assert_eq!(sim.attr("file"), Some("MOD021KM.A2022001.0610.hdf"));
        let wall = &parsed.spans[1];
        assert!(wall.sim_start.is_none() && wall.parent.is_none());
        // Durations survive in whichever clock the span carried.
        let originals = obs.spans();
        for (a, b) in originals.iter().zip(&parsed.spans) {
            assert!((a.duration_seconds() - b.duration_seconds()).abs() < 1e-8);
        }
        let snap = parsed.metrics_snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(k, v)| k.name == "alloc_bytes" && k.stage == "preprocess" && *v == 4096));
        assert!(snap
            .gauges
            .iter()
            .any(|(k, v)| k.name == "alloc_peak_bytes" && *v == 2048.0));
        // Histogram lines exist in the dump but are skipped on parse.
        assert!(obs.jsonl().contains("\"type\":\"histogram\""));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"no\":\"type\"}").is_err());
        assert!(parse("{\"type\":\"span\"}").is_err(), "span without id");
        // Unknown types and blank lines are tolerated.
        let ok = parse("{\"type\":\"future_thing\",\"x\":1}\n\n").unwrap();
        assert!(ok.spans.is_empty() && ok.counters.is_empty());
    }

    #[test]
    fn span_lines_carry_the_trace_id() {
        use crate::TraceContext;
        use eoml_simtime::SimTime;
        let obs = crate::Obs::new();
        obs.record_sim_span_traced(
            "download",
            "file",
            SimTime::ZERO,
            SimTime::from_secs_f64(1.0),
            Some(&TraceContext::new("MOD.A2022001.0610")),
            &[],
        );
        let rendered = obs.jsonl();
        let span_line = rendered
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .find(|v| v.get("type").and_then(|t| t.as_str()) == Some("span"))
            .unwrap();
        assert_eq!(
            span_line.get("trace_id").unwrap().as_str(),
            Some("MOD.A2022001.0610")
        );
    }
}

//! JSON-lines exporter: one self-describing object per line — spans
//! first (open order), then counters, gauges, and histogram summaries.
//! The format a quick `jq`/Python script wants when neither a trace
//! viewer nor a Prometheus scraper is at hand.

use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;
use serde_json::{Map, Value};

fn span_line(span: &SpanRecord) -> Value {
    let mut obj = Map::new();
    obj.insert("type".to_string(), Value::from("span"));
    obj.insert("id".to_string(), Value::from(span.id as f64));
    obj.insert(
        "parent".to_string(),
        span.parent
            .map(|p| Value::from(p as f64))
            .unwrap_or(Value::Null),
    );
    obj.insert("stage".to_string(), Value::from(span.stage.as_str()));
    obj.insert("name".to_string(), Value::from(span.name.as_str()));
    obj.insert("tid".to_string(), Value::from(span.tid as f64));
    obj.insert(
        "sim_start_s".to_string(),
        span.sim_start
            .map(|t| Value::from(t.as_secs_f64()))
            .unwrap_or(Value::Null),
    );
    obj.insert(
        "sim_end_s".to_string(),
        span.sim_end
            .map(|t| Value::from(t.as_secs_f64()))
            .unwrap_or(Value::Null),
    );
    obj.insert(
        "wall_start_s".to_string(),
        Value::from(span.wall_start_ns as f64 * 1e-9),
    );
    obj.insert(
        "wall_end_s".to_string(),
        Value::from(span.wall_end_ns as f64 * 1e-9),
    );
    obj.insert(
        "trace_id".to_string(),
        span.trace_id
            .as_deref()
            .map(Value::from)
            .unwrap_or(Value::Null),
    );
    let mut attrs = Map::new();
    for (k, v) in &span.attrs {
        attrs.insert(k.clone(), Value::from(v.as_str()));
    }
    obj.insert("attrs".to_string(), Value::Object(attrs));
    Value::Object(obj)
}

/// Render spans + metrics as JSON-lines.
pub fn render(spans: &[SpanRecord], snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let push = |out: &mut String, v: Value| {
        out.push_str(&serde_json::to_string(&v).expect("jsonl serialization is infallible"));
        out.push('\n');
    };
    for span in spans {
        push(&mut out, span_line(span));
    }
    for (key, value) in &snapshot.counters {
        let mut obj = Map::new();
        obj.insert("type".to_string(), Value::from("counter"));
        obj.insert("name".to_string(), Value::from(key.name.as_str()));
        obj.insert("stage".to_string(), Value::from(key.stage.as_str()));
        obj.insert("value".to_string(), Value::from(*value as f64));
        push(&mut out, Value::Object(obj));
    }
    for (key, value) in &snapshot.gauges {
        let mut obj = Map::new();
        obj.insert("type".to_string(), Value::from("gauge"));
        obj.insert("name".to_string(), Value::from(key.name.as_str()));
        obj.insert("stage".to_string(), Value::from(key.stage.as_str()));
        obj.insert("value".to_string(), Value::from(*value));
        push(&mut out, Value::Object(obj));
    }
    for (key, h) in &snapshot.histograms {
        let mut obj = Map::new();
        obj.insert("type".to_string(), Value::from("histogram"));
        obj.insert("name".to_string(), Value::from(key.name.as_str()));
        obj.insert("stage".to_string(), Value::from(key.stage.as_str()));
        obj.insert("count".to_string(), Value::from(h.count() as f64));
        obj.insert("sum".to_string(), Value::from(h.sum()));
        obj.insert("max".to_string(), Value::from(h.max()));
        // Exact order statistics while the histogram still holds every
        // raw sample (n ≤ 1024); the ≤ 19 % log-bucket approximation
        // beyond that.
        let (p50, p90, p99, exact) = match h.exact_summary() {
            Some(s) => (
                s.percentile(50.0),
                s.percentile(90.0),
                s.percentile(99.0),
                true,
            ),
            None => (h.p50(), h.p90(), h.p99(), false),
        };
        obj.insert("p50".to_string(), Value::from(p50));
        obj.insert("p90".to_string(), Value::from(p90));
        obj.insert("p99".to_string(), Value::from(p99));
        obj.insert("exact".to_string(), Value::from(exact));
        push(&mut out, Value::Object(obj));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn histogram_line(rendered: &str) -> Value {
        rendered
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .find(|v| v.get("type").and_then(|t| t.as_str()) == Some("histogram"))
            .expect("histogram line present")
    }

    #[test]
    fn small_histograms_export_exact_percentiles() {
        let reg = MetricsRegistry::default();
        for i in 1..=100 {
            reg.observe("file_seconds", "download", i as f64);
        }
        let rendered = render(&[], &reg.snapshot());
        let line = histogram_line(&rendered);
        assert_eq!(line.get("exact").unwrap().as_bool(), Some(true));
        // Exact linear-interpolated percentiles over 1..=100.
        assert!((line.get("p50").unwrap().as_f64().unwrap() - 50.5).abs() < 1e-9);
        assert!((line.get("p90").unwrap().as_f64().unwrap() - 90.1).abs() < 1e-9);
        assert!((line.get("p99").unwrap().as_f64().unwrap() - 99.01).abs() < 1e-9);
    }

    #[test]
    fn large_histograms_fall_back_within_error_bound() {
        let reg = MetricsRegistry::default();
        // 2000 samples: past the 1024-sample buffer, so the exporter
        // falls back to log buckets.
        for i in 1..=2000 {
            reg.observe("file_seconds", "download", i as f64 / 1000.0);
        }
        let h = reg.histogram("file_seconds", "download").unwrap();
        assert!(h.exact_summary().is_none());
        let rendered = render(&[], &reg.snapshot());
        let line = histogram_line(&rendered);
        assert_eq!(line.get("exact").unwrap().as_bool(), Some(false));
        // One sub-bucket spans 2^(1/4) ≈ 1.19: approximation stays
        // within the documented ≤ 19 % relative-error bound of the
        // exact percentile.
        for (key, exact) in [("p50", 1.0005), ("p90", 1.8001), ("p99", 1.98001)] {
            let approx = line.get(key).unwrap().as_f64().unwrap();
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= 0.19,
                "{key}: approx={approx} exact={exact} rel={rel}"
            );
        }
    }

    #[test]
    fn exported_percentiles_cross_over_at_1024_samples() {
        let reg = MetricsRegistry::default();
        for i in 1..=1024 {
            reg.observe("file_seconds", "download", i as f64);
        }
        let line = histogram_line(&render(&[], &reg.snapshot()));
        assert_eq!(line.get("exact").unwrap().as_bool(), Some(true));
        let exact_p50 = line.get("p50").unwrap().as_f64().unwrap();
        assert!((exact_p50 - 512.5).abs() < 1e-9);

        // Sample 1025 flips the same histogram to the approximation.
        reg.observe("file_seconds", "download", 1025.0);
        let line = histogram_line(&render(&[], &reg.snapshot()));
        assert_eq!(line.get("exact").unwrap().as_bool(), Some(false));
        let approx_p50 = line.get("p50").unwrap().as_f64().unwrap();
        let rel = (approx_p50 - exact_p50).abs() / exact_p50;
        assert!(
            rel <= 0.19,
            "approx={approx_p50} exact={exact_p50} rel={rel}"
        );
    }

    #[test]
    fn span_lines_carry_the_trace_id() {
        use crate::TraceContext;
        use eoml_simtime::SimTime;
        let obs = crate::Obs::new();
        obs.record_sim_span_traced(
            "download",
            "file",
            SimTime::ZERO,
            SimTime::from_secs_f64(1.0),
            Some(&TraceContext::new("MOD.A2022001.0610")),
            &[],
        );
        let rendered = obs.jsonl();
        let span_line = rendered
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .find(|v| v.get("type").and_then(|t| t.as_str()) == Some("span"))
            .unwrap();
        assert_eq!(
            span_line.get("trace_id").unwrap().as_str(),
            Some("MOD.A2022001.0610")
        );
    }
}

//! Exporters: post-hoc renderings of the collector and registry.
//!
//! Three formats, three audiences:
//! - [`chrome`] — Chrome `trace_event` JSON, for humans with Perfetto.
//! - [`prometheus`] — text exposition, for scrapers and dashboards.
//! - [`jsonl`] — one JSON object per line, for ad-hoc scripting.

pub mod chrome;
pub mod jsonl;
pub mod prometheus;

//! Table writer for the bench figure harness: one code path renders an
//! aligned text table for the terminal *and* a machine-readable JSON
//! document (`BENCH_<figure>.json`) so figure trajectories can be
//! captured per run instead of scraped from stdout.

use serde_json::{Map, Value};

/// One table cell: text, integer, or fixed-precision float.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Left-aligned text.
    Str(String),
    /// Right-aligned integer.
    Int(i64),
    /// Right-aligned float rendered with `prec` decimals.
    Num {
        /// The value.
        value: f64,
        /// Decimals to render in the text form (JSON keeps full precision).
        prec: usize,
    },
}

impl Cell {
    /// Text cell.
    pub fn str(s: impl ToString) -> Cell {
        Cell::Str(s.to_string())
    }

    /// Integer cell.
    pub fn int(v: impl Into<i64>) -> Cell {
        Cell::Int(v.into())
    }

    /// Float cell with `prec` decimals in the text rendering.
    pub fn num(value: f64, prec: usize) -> Cell {
        Cell::Num { value, prec }
    }

    fn render(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Num { value, prec } => format!("{value:.prec$}"),
        }
    }

    fn to_json(&self) -> Value {
        match self {
            Cell::Str(s) => Value::from(s.as_str()),
            Cell::Int(v) => Value::from(*v as f64),
            Cell::Num { value, .. } => Value::from(*value),
        }
    }

    fn right_aligned(&self) -> bool {
        !matches!(self, Cell::Str(_))
    }
}

/// A named table: column headers plus rows of [`Cell`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name (`fig3`, `table1_strong`, ...); also the JSON file stem.
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each must have `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// New empty table.
    pub fn new(name: &str, columns: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the column count).
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "table {} row has {} cells, expected {}",
            self.name,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
        self
    }

    /// Aligned text rendering (headers, rule, rows), `indent` spaces deep.
    pub fn render_text(&self, indent: usize) -> String {
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, h)| {
                rendered
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let pad = " ".repeat(indent);
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        out.push_str(&format!("{pad}{}\n", header.join("  ")));
        out.push_str(&format!(
            "{pad}{}\n",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        ));
        for (row, cells) in rendered.iter().zip(&self.rows) {
            let line: Vec<String> = row
                .iter()
                .zip(cells)
                .enumerate()
                .map(|(i, (text, cell))| {
                    if cell.right_aligned() {
                        format!("{text:>width$}", width = widths[i])
                    } else {
                        format!("{text:<width$}", width = widths[i])
                    }
                })
                .collect();
            out.push_str(&format!("{pad}{}\n", line.join("  ").trim_end()));
        }
        out
    }

    /// JSON document: `{"table": name, "columns": [...], "rows": [[...]]}`.
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("table".to_string(), Value::from(self.name.as_str()));
        obj.insert(
            "columns".to_string(),
            Value::from(
                self.columns
                    .iter()
                    .map(|c| Value::from(c.as_str()))
                    .collect::<Vec<_>>(),
            ),
        );
        obj.insert(
            "rows".to_string(),
            Value::from(
                self.rows
                    .iter()
                    .map(|r| Value::from(r.iter().map(Cell::to_json).collect::<Vec<_>>()))
                    .collect::<Vec<_>>(),
            ),
        );
        Value::Object(obj)
    }

    /// Write `BENCH_<name>.json` into `dir` (created if absent); returns
    /// the path written.
    pub fn write_json(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir.as_ref())?;
        let path = dir.as_ref().join(format!("BENCH_{}.json", self.name));
        std::fs::write(
            &path,
            serde_json::to_string(&self.to_json()).expect("table serialization is infallible"),
        )?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text_and_json() {
        let mut t = Table::new("fig_demo", &["workers", "speed_mb_s", "note"]);
        t.row(vec![Cell::int(3), Cell::num(41.2, 1), Cell::str("paper")]);
        t.row(vec![Cell::int(6), Cell::num(80.537, 1), Cell::str("2x")]);
        let text = t.render_text(2);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("workers"));
        assert!(lines[2].contains("41.2"));
        assert!(lines[3].contains("80.5"));

        let json = t.to_json();
        assert_eq!(json.get("table").unwrap().as_str(), Some("fig_demo"));
        assert_eq!(json.get("columns").unwrap().as_array().unwrap().len(), 3);
        let rows = json.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].as_array().unwrap()[1].as_f64(), Some(80.537));
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.row(vec![Cell::int(1)]);
    }
}

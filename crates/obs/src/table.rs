//! Table writer for the bench figure harness: one code path renders an
//! aligned text table for the terminal *and* a machine-readable JSON
//! document (`BENCH_<figure>.json`) so figure trajectories can be
//! captured per run instead of scraped from stdout.

use serde_json::{Map, Value};

/// One table cell: text, integer, or fixed-precision float.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Left-aligned text.
    Str(String),
    /// Right-aligned integer.
    Int(i64),
    /// Right-aligned float rendered with `prec` decimals.
    Num {
        /// The value.
        value: f64,
        /// Decimals to render in the text form (JSON keeps full precision).
        prec: usize,
    },
}

impl Cell {
    /// Text cell.
    pub fn str(s: impl ToString) -> Cell {
        Cell::Str(s.to_string())
    }

    /// Integer cell.
    pub fn int(v: impl Into<i64>) -> Cell {
        Cell::Int(v.into())
    }

    /// Float cell with `prec` decimals in the text rendering.
    pub fn num(value: f64, prec: usize) -> Cell {
        Cell::Num { value, prec }
    }

    fn render(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Num { value, prec } => format!("{value:.prec$}"),
        }
    }

    fn to_json(&self) -> Value {
        match self {
            Cell::Str(s) => Value::from(s.as_str()),
            Cell::Int(v) => Value::from(*v as f64),
            Cell::Num { value, .. } => Value::from(*value),
        }
    }

    fn right_aligned(&self) -> bool {
        !matches!(self, Cell::Str(_))
    }
}

/// A named table: column headers plus rows of [`Cell`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name (`fig3`, `table1_strong`, ...); also the JSON file stem.
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each must have `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// New empty table.
    pub fn new(name: &str, columns: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the column count).
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "table {} row has {} cells, expected {}",
            self.name,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
        self
    }

    /// Aligned text rendering (headers, rule, rows), `indent` spaces deep.
    pub fn render_text(&self, indent: usize) -> String {
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, h)| {
                rendered
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let pad = " ".repeat(indent);
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        out.push_str(&format!("{pad}{}\n", header.join("  ")));
        out.push_str(&format!(
            "{pad}{}\n",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        ));
        for (row, cells) in rendered.iter().zip(&self.rows) {
            let line: Vec<String> = row
                .iter()
                .zip(cells)
                .enumerate()
                .map(|(i, (text, cell))| {
                    if cell.right_aligned() {
                        format!("{text:>width$}", width = widths[i])
                    } else {
                        format!("{text:<width$}", width = widths[i])
                    }
                })
                .collect();
            out.push_str(&format!("{pad}{}\n", line.join("  ").trim_end()));
        }
        out
    }

    /// JSON document: `{"table": name, "columns": [...], "rows": [[...]]}`.
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("table".to_string(), Value::from(self.name.as_str()));
        obj.insert(
            "columns".to_string(),
            Value::from(
                self.columns
                    .iter()
                    .map(|c| Value::from(c.as_str()))
                    .collect::<Vec<_>>(),
            ),
        );
        obj.insert(
            "rows".to_string(),
            Value::from(
                self.rows
                    .iter()
                    .map(|r| Value::from(r.iter().map(Cell::to_json).collect::<Vec<_>>()))
                    .collect::<Vec<_>>(),
            ),
        );
        Value::Object(obj)
    }

    /// Parse a table back from its [`Table::to_json`] document (extra
    /// top-level keys, e.g. a baseline's `tolerance`, are ignored).
    pub fn from_json(value: &Value) -> Result<Table, String> {
        let obj = value.as_object().ok_or("table document is not an object")?;
        let name = obj
            .get("table")
            .and_then(Value::as_str)
            .ok_or("missing 'table' name")?
            .to_string();
        let columns: Vec<String> = obj
            .get("columns")
            .and_then(Value::as_array)
            .ok_or("missing 'columns' array")?
            .iter()
            .map(|c| {
                c.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("non-string column in table '{name}'"))
            })
            .collect::<Result<_, _>>()?;
        let mut rows = Vec::new();
        for (i, row) in obj
            .get("rows")
            .and_then(Value::as_array)
            .ok_or("missing 'rows' array")?
            .iter()
            .enumerate()
        {
            let cells: Vec<Cell> = row
                .as_array()
                .ok_or_else(|| format!("row {i} of table '{name}' is not an array"))?
                .iter()
                .map(|cell| match cell {
                    Value::String(s) => Ok(Cell::str(s)),
                    _ => cell
                        .as_f64()
                        .map(|v| {
                            // Integral values round-trip as Int (to_json
                            // flattens Int to a number).
                            if v.fract() == 0.0 && v.abs() < 9e15 {
                                Cell::Int(v as i64)
                            } else {
                                Cell::num(v, 3)
                            }
                        })
                        .ok_or_else(|| format!("unsupported cell in row {i} of table '{name}'")),
                })
                .collect::<Result<_, _>>()?;
            if cells.len() != columns.len() {
                return Err(format!(
                    "row {i} of table '{name}' has {} cells, expected {}",
                    cells.len(),
                    columns.len()
                ));
            }
            rows.push(cells);
        }
        Ok(Table {
            name,
            columns,
            rows,
        })
    }

    /// Write `BENCH_<name>.json` into `dir` (created if absent); returns
    /// the path written.
    pub fn write_json(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir.as_ref())?;
        let path = dir.as_ref().join(format!("BENCH_{}.json", self.name));
        std::fs::write(
            &path,
            serde_json::to_string(&self.to_json()).expect("table serialization is infallible"),
        )?;
        Ok(path)
    }

    /// [`Table::write_json`] with a `meta` block (git describe, sim seed,
    /// host cores, schema version — see [`crate::archive::RunMeta`])
    /// attached at the top level, making the emitted `BENCH_*.json`
    /// self-describing. `meta` is an *extra* key: [`Table::from_json`]
    /// and therefore [`crate::BaselineStore`] comparisons ignore it, so
    /// committed baselines never need regenerating when meta changes.
    pub fn write_json_with_meta(
        &self,
        dir: impl AsRef<std::path::Path>,
        meta: &Value,
    ) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir.as_ref())?;
        let path = dir.as_ref().join(format!("BENCH_{}.json", self.name));
        let mut obj = match self.to_json() {
            Value::Object(obj) => obj,
            _ => unreachable!("Table::to_json returns an object"),
        };
        obj.insert("meta".to_string(), meta.clone());
        std::fs::write(
            &path,
            serde_json::to_string(&Value::Object(obj)).expect("table serialization is infallible"),
        )?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text_and_json() {
        let mut t = Table::new("fig_demo", &["workers", "speed_mb_s", "note"]);
        t.row(vec![Cell::int(3), Cell::num(41.2, 1), Cell::str("paper")]);
        t.row(vec![Cell::int(6), Cell::num(80.537, 1), Cell::str("2x")]);
        let text = t.render_text(2);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("workers"));
        assert!(lines[2].contains("41.2"));
        assert!(lines[3].contains("80.5"));

        let json = t.to_json();
        assert_eq!(json.get("table").unwrap().as_str(), Some("fig_demo"));
        assert_eq!(json.get("columns").unwrap().as_array().unwrap().len(), 3);
        let rows = json.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].as_array().unwrap()[1].as_f64(), Some(80.537));
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let mut t = Table::new("fig_demo", &["workers", "speed_mb_s", "note"]);
        t.row(vec![Cell::int(3), Cell::num(41.25, 1), Cell::str("paper")]);
        let back = Table::from_json(&t.to_json()).unwrap();
        assert_eq!(back.name, "fig_demo");
        assert_eq!(back.columns, t.columns);
        assert_eq!(back.rows[0][0], Cell::int(3));
        assert_eq!(back.rows[0][2], Cell::str("paper"));
        match back.rows[0][1] {
            Cell::Num { value, .. } => assert_eq!(value, 41.25),
            ref other => panic!("expected Num, got {other:?}"),
        }
        // Malformed documents report, not panic.
        assert!(Table::from_json(&Value::from(3.0)).is_err());
        assert!(Table::from_json(&serde_json::json!({"table": "x"})).is_err());
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.row(vec![Cell::int(1)]);
    }
}

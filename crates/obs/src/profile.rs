//! Deterministic span profiler: per-span *self time*, hot-path tables,
//! and a collapsed-stack exporter.
//!
//! The span store records where wall/sim time went *inclusively*; for
//! optimization work the question is exclusive: a parent span that merely
//! awaits its children is not hot, however long it is. [`SpanProfile`]
//! computes each span's **self time** — its duration minus the summed
//! durations of its direct children — aggregates it into a hot-path table
//! keyed by `(stage, name)`, and renders the whole tree in the `folded`
//! collapsed-stack format that `inferno-flamegraph` / `flamegraph.pl`
//! consume directly.
//!
//! Invariant (tested): for a well-nested trace, the self times of a span's
//! subtree sum exactly to the span's own duration, so no time is double
//! counted or lost by the decomposition.

use std::collections::{BTreeMap, HashMap};

use crate::span::SpanRecord;
use crate::table::{Cell, Table};
use crate::Obs;

/// Aggregated self-time entry for one `(stage, name)` label pair.
#[derive(Debug, Clone, PartialEq)]
pub struct HotPathEntry {
    /// Pipeline stage label.
    pub stage: String,
    /// Component name within the stage.
    pub name: String,
    /// Spans aggregated into this entry.
    pub count: u64,
    /// Summed inclusive duration, seconds.
    pub total_s: f64,
    /// Summed exclusive (self) duration, seconds.
    pub self_s: f64,
}

/// Self-time decomposition of one recorded span store.
///
/// Durations follow [`SpanRecord::duration_seconds`]: sim time when the
/// span is sim-stamped (virtual campaigns), wall time otherwise. Children
/// that overlap each other or spill past their parent can only *shrink* a
/// parent's self time — it is clamped at zero, never negative.
#[derive(Debug, Clone)]
pub struct SpanProfile {
    entries: Vec<HotPathEntry>,
    self_by_id: HashMap<u64, f64>,
    /// `(stack, micros)` pairs, stack frames root-first, deterministic order.
    folded: BTreeMap<String, u64>,
    total_self_s: f64,
}

impl SpanProfile {
    /// Profile everything an [`Obs`] hub recorded.
    pub fn from_obs(obs: &Obs) -> SpanProfile {
        SpanProfile::from_spans(&obs.spans())
    }

    /// Profile a span snapshot.
    pub fn from_spans(spans: &[SpanRecord]) -> SpanProfile {
        // Sum of direct-child durations per parent id.
        let mut child_sum: HashMap<u64, f64> = HashMap::new();
        for span in spans {
            if let Some(parent) = span.parent {
                *child_sum.entry(parent).or_insert(0.0) += span.duration_seconds();
            }
        }
        let mut self_by_id = HashMap::with_capacity(spans.len());
        let mut groups: BTreeMap<(String, String), HotPathEntry> = BTreeMap::new();
        let mut total_self_s = 0.0;
        for span in spans {
            let own = span.duration_seconds();
            let self_s = (own - child_sum.get(&span.id).copied().unwrap_or(0.0)).max(0.0);
            self_by_id.insert(span.id, self_s);
            total_self_s += self_s;
            let entry = groups
                .entry((span.stage.clone(), span.name.clone()))
                .or_insert_with(|| HotPathEntry {
                    stage: span.stage.clone(),
                    name: span.name.clone(),
                    count: 0,
                    total_s: 0.0,
                    self_s: 0.0,
                });
            entry.count += 1;
            entry.total_s += own;
            entry.self_s += self_s;
        }
        let mut entries: Vec<HotPathEntry> = groups.into_values().collect();
        entries.sort_by(|a, b| {
            b.self_s
                .total_cmp(&a.self_s)
                .then_with(|| (&a.stage, &a.name).cmp(&(&b.stage, &b.name)))
        });

        // Collapsed stacks: walk each span's parent chain to the root and
        // attribute its *self* time to the full stack path.
        let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for span in spans {
            let micros = (self_by_id[&span.id] * 1e6).round() as u64;
            if micros == 0 {
                continue;
            }
            let mut frames = vec![frame_label(span)];
            let mut cursor = span.parent;
            while let Some(pid) = cursor {
                // A parent missing from the snapshot (guard still open when
                // the snapshot was taken) truncates the stack there.
                let Some(parent) = by_id.get(&pid) else { break };
                frames.push(frame_label(parent));
                cursor = parent.parent;
            }
            frames.reverse();
            *folded.entry(frames.join(";")).or_insert(0) += micros;
        }

        SpanProfile {
            entries,
            self_by_id,
            folded,
            total_self_s,
        }
    }

    /// Hot-path entries, sorted by self time descending.
    pub fn entries(&self) -> &[HotPathEntry] {
        &self.entries
    }

    /// Self time of one span by id, seconds.
    pub fn self_time(&self, span_id: u64) -> Option<f64> {
        self.self_by_id.get(&span_id).copied()
    }

    /// Sum of all self times — equals the summed duration of the root
    /// spans for a well-nested trace.
    pub fn total_self_seconds(&self) -> f64 {
        self.total_self_s
    }

    /// Top-`n` self-time table (`profile_self_time`): stage, component,
    /// span count, inclusive total, exclusive self time, and self share.
    pub fn top_table(&self, n: usize) -> Table {
        let mut table = Table::new(
            "profile_self_time",
            &[
                "stage",
                "component",
                "count",
                "total_s",
                "self_s",
                "self_pct",
            ],
        );
        let denom = if self.total_self_s > 0.0 {
            self.total_self_s
        } else {
            1.0
        };
        for entry in self.entries.iter().take(n) {
            table.row(vec![
                Cell::str(&entry.stage),
                Cell::str(&entry.name),
                Cell::int(entry.count as i64),
                Cell::num(entry.total_s, 3),
                Cell::num(entry.self_s, 3),
                Cell::num(100.0 * entry.self_s / denom, 1),
            ]);
        }
        table
    }

    /// Collapsed-stack (`folded`) rendering: one line per unique stack,
    /// `stage:name;stage:name <self-micros>`, feedable to
    /// `inferno-flamegraph` / `flamegraph.pl` unchanged. Lines are sorted
    /// by stack for deterministic output; zero-self-time stacks are
    /// omitted.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (stack, micros) in &self.folded {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&micros.to_string());
            out.push('\n');
        }
        out
    }

    /// Write the collapsed-stack rendering to `path`.
    pub fn write_folded(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.folded())
    }
}

/// One collapsed-stack frame: `stage:name`, with the structural
/// characters of the folded format (`;` between frames, space before the
/// count, and the newline that terminates a stack line) replaced so
/// frames always round-trip — a hostile span name must corrupt at most
/// its own label, never the frame boundaries of the document.
fn frame_label(span: &SpanRecord) -> String {
    let clean = |s: &str| s.replace([';', ' ', '\n', '\r'], "_");
    format!("{}:{}", clean(&span.stage), clean(&span.name))
}

/// Parse a collapsed-stack document back into `(frames, micros)` pairs —
/// the round-trip counterpart of [`SpanProfile::folded`].
pub fn parse_folded(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator in {line:?}", lineno + 1))?;
        let micros: u64 = value
            .parse()
            .map_err(|e| format!("line {}: bad sample count {value:?}: {e}", lineno + 1))?;
        let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        if frames.iter().any(|f| f.is_empty()) {
            return Err(format!("line {}: empty frame in {stack:?}", lineno + 1));
        }
        out.push((frames, micros));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_simtime::SimTime;

    fn sim_span(
        id: u64,
        parent: Option<u64>,
        stage: &str,
        name: &str,
        a: f64,
        b: f64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            stage: stage.to_string(),
            name: name.to_string(),
            tid: 0,
            sim_start: Some(SimTime::from_secs_f64(a)),
            sim_end: Some(SimTime::from_secs_f64(b)),
            wall_start_ns: 0,
            wall_end_ns: 0,
            trace_id: None,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn self_time_excludes_children() {
        // root [0,10] with children [1,4] and [5,7]; grandchild [2,3].
        let spans = vec![
            sim_span(1, None, "campaign", "run", 0.0, 10.0),
            sim_span(2, Some(1), "download", "file", 1.0, 4.0),
            sim_span(3, Some(1), "preprocess", "granule", 5.0, 7.0),
            sim_span(4, Some(2), "download", "connect", 2.0, 3.0),
        ];
        let p = SpanProfile::from_spans(&spans);
        assert_eq!(p.self_time(1), Some(5.0)); // 10 - (3 + 2)
        assert_eq!(p.self_time(2), Some(2.0)); // 3 - 1
        assert_eq!(p.self_time(3), Some(2.0));
        assert_eq!(p.self_time(4), Some(1.0));
        // Subtree self times sum to the root duration.
        assert!((p.total_self_seconds() - 10.0).abs() < 1e-9);
        // Hot paths are sorted by self time.
        assert_eq!(p.entries()[0].stage, "campaign");
        assert_eq!(p.entries()[0].self_s, 5.0);
    }

    #[test]
    fn overlapping_children_clamp_at_zero() {
        let spans = vec![
            sim_span(1, None, "s", "parent", 0.0, 2.0),
            sim_span(2, Some(1), "s", "a", 0.0, 2.0),
            sim_span(3, Some(1), "s", "b", 0.0, 2.0),
        ];
        let p = SpanProfile::from_spans(&spans);
        assert_eq!(p.self_time(1), Some(0.0));
    }

    #[test]
    fn folded_round_trips_and_aggregates_stacks() {
        let spans = vec![
            sim_span(1, None, "campaign", "run", 0.0, 10.0),
            sim_span(2, Some(1), "download", "file", 1.0, 4.0),
            sim_span(3, Some(1), "download", "file", 5.0, 7.0),
        ];
        let p = SpanProfile::from_spans(&spans);
        let folded = p.folded();
        let parsed = parse_folded(&folded).expect("round trip");
        // Two distinct stacks: root alone, root;download:file (merged).
        assert_eq!(parsed.len(), 2);
        let total: u64 = parsed.iter().map(|(_, v)| *v).sum();
        assert_eq!(total, 10_000_000); // 10 s of self time in µs
        let leaf = parsed
            .iter()
            .find(|(frames, _)| frames.len() == 2)
            .expect("nested stack");
        assert_eq!(leaf.0, vec!["campaign:run", "download:file"]);
        assert_eq!(leaf.1, 5_000_000);
    }

    #[test]
    fn frames_with_separator_characters_still_round_trip() {
        let spans = vec![sim_span(1, None, "weird stage", "a;b c", 0.0, 1.0)];
        let p = SpanProfile::from_spans(&spans);
        let parsed = parse_folded(&p.folded()).expect("round trip");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, vec!["weird_stage:a_b_c"]);
        assert_eq!(parsed[0].1, 1_000_000);
    }

    #[test]
    fn hostile_names_with_newlines_cannot_break_frame_boundaries() {
        // A span name smuggling the folded format's own structure: frame
        // separators, a sample-count separator, and a forged second line
        // claiming a bogus stack. All of it must stay inside one label.
        let spans = vec![
            sim_span(
                1,
                None,
                "stage\nls",
                "evil;frame 99\nfake:stack 1",
                0.0,
                2.0,
            ),
            sim_span(2, Some(1), "child", "with\r\ncrlf", 0.0, 1.0),
        ];
        let p = SpanProfile::from_spans(&spans);
        let doc = p.folded();
        // Exactly the two real stacks — the forged newline produced no
        // extra document line.
        assert_eq!(doc.lines().count(), 2);
        let parsed = parse_folded(&doc).expect("hostile names still round-trip");
        assert_eq!(parsed.len(), 2);
        let flat: Vec<(String, u64)> = parsed
            .iter()
            .map(|(frames, micros)| (frames.join(";"), *micros))
            .collect();
        assert!(flat.contains(&("stage_ls:evil_frame_99_fake:stack_1".to_string(), 1_000_000)));
        assert!(flat.contains(&(
            "stage_ls:evil_frame_99_fake:stack_1;child:with__crlf".to_string(),
            1_000_000
        )));
    }

    #[test]
    fn parse_folded_rejects_malformed_lines() {
        assert!(parse_folded("no-value-line").is_err());
        assert!(parse_folded("a;b not-a-number").is_err());
        assert!(parse_folded("a;;b 10").is_err());
        assert!(parse_folded("").unwrap().is_empty());
    }

    #[test]
    fn top_table_has_share_column() {
        let spans = vec![
            sim_span(1, None, "s", "hot", 0.0, 3.0),
            sim_span(2, None, "s", "cold", 0.0, 1.0),
        ];
        let t = SpanProfile::from_spans(&spans).top_table(10);
        assert_eq!(t.name, "profile_self_time");
        assert_eq!(t.rows.len(), 2);
        // First row is the hottest; 3s of 4s total = 75%.
        assert_eq!(t.rows[0][1], Cell::str("hot"));
        assert_eq!(t.rows[0][5], Cell::num(75.0, 1));
    }
}

//! Bench-trajectory regression gating: committed `BENCH_*.json`
//! baselines, a noise-aware diff against a fresh run, and verdicts a CI
//! gate can turn into an exit code.
//!
//! The figures bench is fully deterministic (discrete-event simulation,
//! fixed seeds), so the committed baselines are bit-stable across runs of
//! the same code — any numeric drift is a real behavior change. The
//! tolerance still matters: it separates "the model changed on purpose"
//! (refresh the baselines) from "a cell moved within rounding noise"
//! (e.g. a float printed at a different precision), and it keeps the gate
//! usable if a future bench ever measures wall time.
//!
//! A cell regresses only when it moves by more than `tolerance.rel`
//! *relative* AND more than `tolerance.abs` *absolute* — the absolute
//! floor keeps tiny denominators (a 0.02 s stage) from tripping the
//! relative test on meaningless deltas. Movement in *either* direction
//! fails the gate: an unexplained speedup is as suspicious as a slowdown
//! (it usually means the workload shrank), and accepting it silently
//! would let the baseline rot. Refresh with `--write-baselines` when the
//! change is intended.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use serde_json::{Map, Value};

use crate::table::{Cell, Table};

/// Noise thresholds for one table's comparison, embedded in its baseline
/// JSON under `"tolerance"`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum allowed relative change, e.g. `0.2` = ±20 %.
    pub rel: f64,
    /// Minimum absolute delta before the relative test applies.
    pub abs: f64,
}

impl Default for Tolerance {
    fn default() -> Tolerance {
        Tolerance {
            rel: 0.2,
            abs: 0.05,
        }
    }
}

impl Tolerance {
    /// Whether moving from `baseline` to `current` exceeds this tolerance.
    pub fn exceeded(&self, baseline: f64, current: f64) -> bool {
        let delta = (current - baseline).abs();
        if delta <= self.abs {
            return false;
        }
        if baseline == 0.0 {
            return true; // any above-floor delta off a zero baseline
        }
        delta / baseline.abs() > self.rel
    }

    fn to_json(self) -> Value {
        let mut obj = Map::new();
        obj.insert("rel".to_string(), Value::from(self.rel));
        obj.insert("abs".to_string(), Value::from(self.abs));
        Value::Object(obj)
    }

    fn from_json(value: Option<&Value>) -> Tolerance {
        let default = Tolerance::default();
        let Some(obj) = value.and_then(Value::as_object) else {
            return default;
        };
        Tolerance {
            rel: obj
                .get("rel")
                .and_then(Value::as_f64)
                .unwrap_or(default.rel),
            abs: obj
                .get("abs")
                .and_then(Value::as_f64)
                .unwrap_or(default.abs),
        }
    }
}

/// One committed baseline: the reference table plus its tolerance.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// The reference table.
    pub table: Table,
    /// Comparison thresholds for this table.
    pub tolerance: Tolerance,
}

/// Why (or whether) one table passed its baseline comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Ok,
    /// One or more cells moved beyond tolerance.
    Regressed,
    /// Columns or row count changed — the tables are not comparable.
    ShapeChanged,
    /// The run produced a table with no committed baseline.
    MissingBaseline,
}

/// One out-of-tolerance cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDelta {
    /// Row index in the table.
    pub row: usize,
    /// Column name.
    pub column: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
}

impl CellDelta {
    /// Relative change, `(current - baseline) / |baseline|`; infinite off
    /// a zero baseline.
    pub fn rel_change(&self) -> f64 {
        if self.baseline == 0.0 {
            if self.current == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.current - self.baseline) / self.baseline.abs()
        }
    }
}

/// Comparison result for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableVerdict {
    /// Table name.
    pub table: String,
    /// Outcome.
    pub verdict: Verdict,
    /// Out-of-tolerance cells (for [`Verdict::Regressed`]).
    pub deltas: Vec<CellDelta>,
    /// Human-readable notes (shape mismatches, string-cell changes, ...).
    pub notes: Vec<String>,
}

impl TableVerdict {
    fn ok(table: &str) -> TableVerdict {
        TableVerdict {
            table: table.to_string(),
            verdict: Verdict::Ok,
            deltas: Vec::new(),
            notes: Vec::new(),
        }
    }
}

/// Verdicts for every table a run produced.
#[derive(Debug, Clone, Default)]
pub struct RunComparison {
    /// One verdict per compared table, in comparison order.
    pub verdicts: Vec<TableVerdict>,
}

impl RunComparison {
    /// Whether any table failed its comparison (regression, shape change,
    /// or missing baseline) — the CI gate's exit condition.
    pub fn regressed(&self) -> bool {
        self.verdicts.iter().any(|v| v.verdict != Verdict::Ok)
    }

    /// Tables that failed, by name.
    pub fn failures(&self) -> Vec<&TableVerdict> {
        self.verdicts
            .iter()
            .filter(|v| v.verdict != Verdict::Ok)
            .collect()
    }

    /// Terminal rendering: one line per table, with per-cell deltas under
    /// failing tables.
    pub fn render_text(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut out = String::new();
        for v in &self.verdicts {
            let status = match v.verdict {
                Verdict::Ok => "ok",
                Verdict::Regressed => "REGRESSED",
                Verdict::ShapeChanged => "SHAPE CHANGED",
                Verdict::MissingBaseline => "NO BASELINE",
            };
            out.push_str(&format!("{pad}{:<24} {status}\n", v.table));
            for d in &v.deltas {
                out.push_str(&format!(
                    "{pad}  row {:>3} {:<16} {:>12.4} -> {:>12.4}  ({:+.1}%)\n",
                    d.row,
                    d.column,
                    d.baseline,
                    d.current,
                    100.0 * d.rel_change()
                ));
            }
            for note in &v.notes {
                out.push_str(&format!("{pad}  {note}\n"));
            }
        }
        out
    }
}

/// Committed baselines, loaded from a directory of `BENCH_*.json` files.
#[derive(Debug, Clone, Default)]
pub struct BaselineStore {
    baselines: BTreeMap<String, Baseline>,
}

impl BaselineStore {
    /// Load every `BENCH_*.json` in `dir`. A missing directory is an
    /// empty store (the gate then reports every table as
    /// [`Verdict::MissingBaseline`]); an unparsable file is an error.
    pub fn load(dir: impl AsRef<Path>) -> io::Result<BaselineStore> {
        let dir = dir.as_ref();
        let mut baselines = BTreeMap::new();
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BaselineStore::default()),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !name.starts_with("BENCH_") || !name.ends_with(".json") {
                continue;
            }
            let body = std::fs::read_to_string(&path)?;
            let value: Value = serde_json::from_str(&body).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })?;
            let table = Table::from_json(&value).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })?;
            let tolerance = Tolerance::from_json(value.get("tolerance"));
            baselines.insert(table.name.clone(), Baseline { table, tolerance });
        }
        Ok(BaselineStore { baselines })
    }

    /// Write each table as `BENCH_<name>.json` into `dir` with the
    /// tolerance embedded; returns the paths written.
    pub fn write(
        dir: impl AsRef<Path>,
        tables: &[Table],
        tolerance: Tolerance,
    ) -> io::Result<Vec<PathBuf>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::with_capacity(tables.len());
        for table in tables {
            let mut doc = match table.to_json() {
                Value::Object(obj) => obj,
                _ => unreachable!("Table::to_json returns an object"),
            };
            doc.insert("tolerance".to_string(), tolerance.to_json());
            let path = dir.join(format!("BENCH_{}.json", table.name));
            std::fs::write(
                &path,
                serde_json::to_string(&Value::Object(doc))
                    .expect("table serialization is infallible"),
            )?;
            paths.push(path);
        }
        Ok(paths)
    }

    /// Baseline for one table, if committed.
    pub fn get(&self, name: &str) -> Option<&Baseline> {
        self.baselines.get(name)
    }

    /// Names of all committed baselines.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.baselines.keys().map(String::as_str)
    }

    /// Number of committed baselines.
    pub fn len(&self) -> usize {
        self.baselines.len()
    }

    /// Whether the store holds no baselines.
    pub fn is_empty(&self) -> bool {
        self.baselines.is_empty()
    }

    /// Compare one freshly produced table against its baseline.
    pub fn compare(&self, current: &Table) -> TableVerdict {
        let Some(baseline) = self.baselines.get(&current.name) else {
            return TableVerdict {
                table: current.name.clone(),
                verdict: Verdict::MissingBaseline,
                deltas: Vec::new(),
                notes: vec!["no committed baseline; refresh with --write-baselines".to_string()],
            };
        };
        compare_tables(&baseline.table, current, baseline.tolerance)
    }

    /// Compare every table of a run; tables without baselines fail, but
    /// committed baselines the run did not produce are ignored (partial
    /// runs compare partially).
    pub fn compare_all(&self, tables: &[Table]) -> RunComparison {
        RunComparison {
            verdicts: tables.iter().map(|t| self.compare(t)).collect(),
        }
    }
}

/// Diff two same-named tables under a tolerance.
pub fn compare_tables(baseline: &Table, current: &Table, tolerance: Tolerance) -> TableVerdict {
    let mut verdict = TableVerdict::ok(&current.name);
    if baseline.columns != current.columns {
        verdict.verdict = Verdict::ShapeChanged;
        verdict.notes.push(format!(
            "columns changed: baseline {:?}, current {:?}",
            baseline.columns, current.columns
        ));
        return verdict;
    }
    if baseline.rows.len() != current.rows.len() {
        verdict.verdict = Verdict::ShapeChanged;
        verdict.notes.push(format!(
            "row count changed: baseline {}, current {}",
            baseline.rows.len(),
            current.rows.len()
        ));
        return verdict;
    }
    for (row_idx, (brow, crow)) in baseline.rows.iter().zip(&current.rows).enumerate() {
        for (col_idx, (bcell, ccell)) in brow.iter().zip(crow).enumerate() {
            let column = &current.columns[col_idx];
            match (numeric(bcell), numeric(ccell)) {
                (Some(b), Some(c)) => {
                    if tolerance.exceeded(b, c) {
                        verdict.deltas.push(CellDelta {
                            row: row_idx,
                            column: column.clone(),
                            baseline: b,
                            current: c,
                        });
                    }
                }
                (None, None) => {
                    // Text cells (labels, sizes like "112.5 MB") must
                    // match exactly — a changed label is a changed table.
                    if bcell != ccell {
                        verdict.notes.push(format!(
                            "row {row_idx} {column}: text cell changed {:?} -> {:?}",
                            cell_text(bcell),
                            cell_text(ccell)
                        ));
                    }
                }
                _ => verdict.notes.push(format!(
                    "row {row_idx} {column}: cell type changed (text vs numeric)"
                )),
            }
        }
    }
    if !verdict.deltas.is_empty() || !verdict.notes.is_empty() {
        verdict.verdict = Verdict::Regressed;
    }
    verdict
}

fn numeric(cell: &Cell) -> Option<f64> {
    match cell {
        Cell::Int(v) => Some(*v as f64),
        Cell::Num { value, .. } => Some(*value),
        Cell::Str(_) => None,
    }
}

fn cell_text(cell: &Cell) -> String {
    match cell {
        Cell::Str(s) => s.clone(),
        Cell::Int(v) => v.to_string(),
        Cell::Num { value, .. } => value.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table(scale: f64) -> Table {
        let mut t = Table::new("fig_demo", &["workers", "speed_mb_s", "note"]);
        t.row(vec![
            Cell::int(3),
            Cell::num(41.2 * scale, 1),
            Cell::str("paper"),
        ]);
        t.row(vec![
            Cell::int(6),
            Cell::num(80.5 * scale, 1),
            Cell::str("2x"),
        ]);
        t
    }

    #[test]
    fn tolerance_needs_both_relative_and_absolute_exceedance() {
        let tol = Tolerance {
            rel: 0.2,
            abs: 0.05,
        };
        assert!(!tol.exceeded(100.0, 100.0));
        // Large relative move on a tiny value: below the absolute floor.
        assert!(!tol.exceeded(0.02, 0.04));
        // Large absolute move within the relative band.
        assert!(!tol.exceeded(100.0, 110.0));
        // Both exceeded, in either direction.
        assert!(tol.exceeded(100.0, 130.0));
        assert!(tol.exceeded(100.0, 70.0));
        // Zero baseline: the absolute floor alone decides.
        assert!(!tol.exceeded(0.0, 0.04));
        assert!(tol.exceeded(0.0, 0.06));
    }

    fn store_with(table: Table, tolerance: Tolerance) -> BaselineStore {
        let mut baselines = BTreeMap::new();
        baselines.insert(table.name.clone(), Baseline { table, tolerance });
        BaselineStore { baselines }
    }

    #[test]
    fn identical_tables_pass() {
        let store = store_with(sample_table(1.0), Tolerance::default());
        let verdict = store.compare(&sample_table(1.0));
        assert_eq!(verdict.verdict, Verdict::Ok);
        assert!(!store.compare_all(&[sample_table(1.0)]).regressed());
    }

    #[test]
    fn meta_block_in_bench_json_is_ignored_by_the_gate() {
        // A fresh run now emits BENCH_*.json with a self-describing
        // `meta` block; the 12 committed seeds carry none. Loading and
        // comparing across that difference must be meta-blind in both
        // directions, or every meta change would fail the gate.
        let dir = std::env::temp_dir().join(format!("eoml_meta_gate_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let meta = crate::archive::RunMeta::new("bench", "cfg", 2022).to_json();
        sample_table(1.0)
            .write_json_with_meta(&dir, &meta)
            .expect("write with meta");
        let store = BaselineStore::load(&dir).expect("load");
        // Emitted file really carries the block...
        let body = std::fs::read_to_string(dir.join("BENCH_fig_demo.json")).unwrap();
        assert!(body.contains("\"meta\""));
        assert!(body.contains("\"sim_seed\""));
        // ...and the comparison is unaffected, metaless side either way.
        assert_eq!(store.compare(&sample_table(1.0)).verdict, Verdict::Ok);
        let metaless = store_with(sample_table(1.0), Tolerance::default());
        let loaded = store.get("fig_demo").expect("baseline").table.clone();
        assert_eq!(metaless.compare(&loaded).verdict, Verdict::Ok);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn doubled_values_regress_in_both_directions() {
        let store = store_with(sample_table(1.0), Tolerance::default());
        let slow = store.compare(&sample_table(2.0));
        assert_eq!(slow.verdict, Verdict::Regressed);
        assert_eq!(slow.deltas.len(), 2); // both speed cells
        assert!(slow.deltas[0].rel_change() > 0.99);
        let fast = store.compare(&sample_table(0.5));
        assert_eq!(fast.verdict, Verdict::Regressed);
        let text = store.compare_all(&[sample_table(2.0)]).render_text(0);
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("speed_mb_s"));
    }

    #[test]
    fn shape_and_text_changes_are_flagged() {
        let store = store_with(sample_table(1.0), Tolerance::default());
        let mut extra_row = sample_table(1.0);
        extra_row.row(vec![Cell::int(9), Cell::num(1.0, 1), Cell::str("x")]);
        assert_eq!(store.compare(&extra_row).verdict, Verdict::ShapeChanged);

        let mut renamed = sample_table(1.0);
        renamed.rows[0][2] = Cell::str("reprint");
        let verdict = store.compare(&renamed);
        assert_eq!(verdict.verdict, Verdict::Regressed);
        assert!(verdict.notes[0].contains("text cell changed"));

        let missing = store.compare(&Table::new("unknown", &["a"]));
        assert_eq!(missing.verdict, Verdict::MissingBaseline);
        assert!(store
            .compare_all(&[Table::new("unknown", &["a"])])
            .regressed());
    }

    #[test]
    fn store_round_trips_through_disk_with_tolerance() {
        let dir = std::env::temp_dir().join(format!("baselines_{}", std::process::id()));
        let tol = Tolerance {
            rel: 0.1,
            abs: 0.01,
        };
        let paths = BaselineStore::write(&dir, &[sample_table(1.0)], tol).unwrap();
        assert_eq!(paths.len(), 1);
        assert!(paths[0].ends_with("BENCH_fig_demo.json"));

        let store = BaselineStore::load(&dir).unwrap();
        assert_eq!(store.len(), 1);
        let baseline = store.get("fig_demo").unwrap();
        assert_eq!(baseline.tolerance, tol);
        assert_eq!(store.compare(&sample_table(1.0)).verdict, Verdict::Ok);
        // The tighter tolerance catches a 15 % drift the default allows.
        assert_eq!(
            store.compare(&sample_table(1.15)).verdict,
            Verdict::Regressed
        );
        std::fs::remove_dir_all(&dir).ok();

        // A missing directory loads as an empty store.
        let empty = BaselineStore::load(dir.join("nope")).unwrap();
        assert!(empty.is_empty());
    }
}

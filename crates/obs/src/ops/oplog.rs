//! Size-rotated JSONL ops event log.
//!
//! One wide-event stream per service instance, written as
//! `<dir>/ops.jsonl` with rotations `ops.jsonl.1` (older) …
//! `ops.jsonl.N`. A restarted service appends to the same history: the
//! sequence number continues from the highest recovered `seq`, and
//! [`read_all`] returns rotations oldest-first so the event order
//! replays the service's whole operational life.
//!
//! Event kinds written by the service layer: `service_open`,
//! `tenant_registered`, `submit`, `pause`, `resume`, `cancel`,
//! `admission`, `lease_acquired`, `lease_released`, `window_roll`,
//! `alert_fired`, `alert_cleared`, `health`, `idle`. The log is
//! *advisory*: torn or unparseable trailing lines are skipped, never
//! fatal — the control journal, not this log, is the source of truth for
//! service state.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use serde_json::{json, Value};

use super::health::HealthReport;

/// File name of the active log segment inside the ops directory.
pub const OPS_LOG_FILE: &str = "ops.jsonl";

/// One structured ops event.
#[derive(Debug, Clone, PartialEq)]
pub struct OpsEvent {
    /// Monotone sequence number across restarts.
    pub seq: u64,
    /// Event kind (snake_case).
    pub kind: String,
    /// Ops-clock timestamp (sim seconds).
    pub at_s: f64,
    /// Kind-specific payload.
    pub data: Value,
}

impl OpsEvent {
    /// The JSONL line form.
    pub fn to_json(&self) -> Value {
        json!({
            "seq": self.seq,
            "kind": self.kind,
            "at_s": self.at_s,
            "data": self.data,
        })
    }

    /// Parse one JSONL line.
    pub fn from_json(v: &Value) -> Result<OpsEvent, String> {
        Ok(OpsEvent {
            seq: v["seq"].as_u64().ok_or("ops event missing seq")?,
            kind: v["kind"]
                .as_str()
                .ok_or("ops event missing kind")?
                .to_string(),
            at_s: v["at_s"].as_f64().unwrap_or(0.0),
            data: v["data"].clone(),
        })
    }
}

/// Appender with size-based rotation.
#[derive(Debug)]
pub struct OpsLog {
    dir: PathBuf,
    max_bytes: u64,
    keep: usize,
    next_seq: u64,
}

impl OpsLog {
    /// Open (or create) the log in `dir`, recovering the next sequence
    /// number from whatever history is already there. Rotation happens
    /// when the active segment exceeds `max_bytes`; `keep` rotated
    /// segments are retained.
    pub fn open(dir: &Path, max_bytes: u64, keep: usize) -> std::io::Result<OpsLog> {
        std::fs::create_dir_all(dir)?;
        let next_seq = read_all(dir).iter().map(|e| e.seq + 1).max().unwrap_or(0);
        Ok(OpsLog {
            dir: dir.to_path_buf(),
            max_bytes: max_bytes.max(1024),
            keep: keep.max(1),
            next_seq,
        })
    }

    /// Directory the log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next appended event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append one event, rotating first if the active segment is full.
    /// Returns the event as written.
    pub fn append(&mut self, kind: &str, at_s: f64, data: Value) -> std::io::Result<OpsEvent> {
        let active = self.dir.join(OPS_LOG_FILE);
        if let Ok(meta) = std::fs::metadata(&active) {
            if meta.len() >= self.max_bytes {
                self.rotate()?;
            }
        }
        let event = OpsEvent {
            seq: self.next_seq,
            kind: kind.to_string(),
            at_s,
            data,
        };
        let mut f = OpenOptions::new().create(true).append(true).open(&active)?;
        let line = serde_json::to_string(&event.to_json())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(f, "{line}")?;
        self.next_seq += 1;
        Ok(event)
    }

    /// Shift `ops.jsonl` → `.1` → `.2` …, dropping beyond `keep`.
    fn rotate(&self) -> std::io::Result<()> {
        let oldest = self.dir.join(format!("{OPS_LOG_FILE}.{}", self.keep));
        if oldest.exists() {
            std::fs::remove_file(&oldest)?;
        }
        for i in (1..self.keep).rev() {
            let from = self.dir.join(format!("{OPS_LOG_FILE}.{i}"));
            if from.exists() {
                std::fs::rename(&from, self.dir.join(format!("{OPS_LOG_FILE}.{}", i + 1)))?;
            }
        }
        let active = self.dir.join(OPS_LOG_FILE);
        if active.exists() {
            std::fs::rename(&active, self.dir.join(format!("{OPS_LOG_FILE}.1")))?;
        }
        Ok(())
    }
}

/// Read the full event history in `dir`: rotated segments oldest-first,
/// then the active segment. Unparseable lines (torn tail after a crash)
/// are skipped.
pub fn read_all(dir: &Path) -> Vec<OpsEvent> {
    let mut paths: Vec<PathBuf> = Vec::new();
    // Highest rotation index is oldest.
    let mut rotated: Vec<(u64, PathBuf)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().to_string();
            if let Some(idx) = name.strip_prefix(&format!("{OPS_LOG_FILE}.")) {
                if let Ok(i) = idx.parse::<u64>() {
                    rotated.push((i, entry.path()));
                }
            }
        }
    }
    rotated.sort_by_key(|(i, _)| std::cmp::Reverse(*i));
    paths.extend(rotated.into_iter().map(|(_, p)| p));
    paths.push(dir.join(OPS_LOG_FILE));

    let mut events = Vec::new();
    for path in paths {
        let Ok(f) = File::open(&path) else { continue };
        for line in BufReader::new(f).lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let Ok(v) = serde_json::from_str(&line) else {
                continue;
            };
            if let Ok(e) = OpsEvent::from_json(&v) {
                events.push(e);
            }
        }
    }
    events
}

/// Replay the event stream to the final health verdict: the last
/// `health` event's report, which by the evaluation contract equals the
/// live report at that moment.
pub fn replay_final_health(events: &[OpsEvent]) -> Option<HealthReport> {
    events
        .iter()
        .rev()
        .find(|e| e.kind == "health")
        .and_then(|e| HealthReport::from_json(&e.data).ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    fn tempdir(tag: &str) -> PathBuf {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("eoml-oplog-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn sequence_numbers_continue_across_reopen() {
        let dir = tempdir("reopen");
        {
            let mut log = OpsLog::open(&dir, 1 << 20, 2).unwrap();
            for i in 0..5 {
                log.append("tick", i as f64, json!({"i": i})).unwrap();
            }
        }
        let mut log = OpsLog::open(&dir, 1 << 20, 2).unwrap();
        assert_eq!(log.next_seq(), 5);
        log.append("tick", 5.0, json!({"i": 5})).unwrap();
        let events = read_all(&dir);
        assert_eq!(events.len(), 6);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_bounded_segments_and_read_all_orders_oldest_first() {
        let dir = tempdir("rotate");
        // max_bytes is clamped to 1024, so ~60-byte lines rotate every
        // ~17 events.
        let mut log = OpsLog::open(&dir, 1, 2).unwrap();
        for i in 0..200u64 {
            log.append("tick", i as f64, json!({"i": i})).unwrap();
        }
        // Active + at most `keep` rotations.
        assert!(dir.join(OPS_LOG_FILE).exists());
        assert!(dir.join(format!("{OPS_LOG_FILE}.1")).exists());
        assert!(!dir.join(format!("{OPS_LOG_FILE}.3")).exists());
        let events = read_all(&dir);
        // Old events were dropped with their segments, but what remains
        // is strictly ordered and ends at the newest.
        assert!(events.len() < 200);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events.last().unwrap().seq, 199);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seq_stays_monotone_across_rotation_boundaries_and_reopens() {
        let dir = tempdir("rotate-seq");
        // Tiny max_bytes (clamped to 1024) with a generous keep so no
        // segment is dropped: every event survives across ~6 rotations.
        {
            let mut log = OpsLog::open(&dir, 1, 10).unwrap();
            for i in 0..60u64 {
                log.append("tick", i as f64, json!({"i": i})).unwrap();
            }
        }
        assert!(
            dir.join(format!("{OPS_LOG_FILE}.1")).exists(),
            "test must actually span a rotation"
        );
        // Reopen mid-history: the recovered seq continues from the
        // highest across *all* segments, not just the active one.
        {
            let mut log = OpsLog::open(&dir, 1, 10).unwrap();
            assert_eq!(log.next_seq(), 60);
            for i in 60..120u64 {
                log.append("tick", i as f64, json!({"i": i})).unwrap();
            }
        }
        let events = read_all(&dir);
        assert_eq!(events.len(), 120, "no events lost across rotations");
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "seq gap or reorder at {i}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_final_health_reads_across_rotated_segments() {
        let dir = tempdir("rotate-health");
        let policy = crate::ops::health::HealthPolicy::default();
        let early = crate::ops::health::evaluate(
            &policy,
            1.0,
            1,
            None,
            0,
            Vec::new(),
            1, // firing alert → degraded
            false,
            0,
            Vec::new(),
        );
        let late = crate::ops::health::evaluate(
            &policy,
            50.0,
            5,
            None,
            0,
            Vec::new(),
            0,
            false,
            0,
            Vec::new(),
        );
        let mut log = OpsLog::open(&dir, 1, 10).unwrap();
        log.append("health", 1.0, early.to_json()).unwrap();
        // Push the early health event into a rotated segment.
        for i in 0..40u64 {
            log.append("tick", i as f64, json!({"i": i})).unwrap();
        }
        log.append("health", 50.0, late.to_json()).unwrap();
        assert!(dir.join(format!("{OPS_LOG_FILE}.1")).exists());

        let events = read_all(&dir);
        let replayed = replay_final_health(&events).unwrap();
        assert_eq!(replayed, late, "latest verdict wins across segments");
        assert_eq!(replayed.state.label(), "healthy");
        // The early verdict is still in the history (oldest-first).
        let first_health = events.iter().find(|e| e.kind == "health").unwrap();
        assert_eq!(first_health.data["state"].as_str(), Some("degraded"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lines_are_skipped_and_health_replays() {
        let dir = tempdir("torn");
        let mut log = OpsLog::open(&dir, 1 << 20, 2).unwrap();
        log.append("service_open", 0.0, json!({})).unwrap();
        let report = crate::ops::health::evaluate(
            &crate::ops::health::HealthPolicy::default(),
            3.0,
            2,
            Some(0.9),
            10,
            Vec::new(),
            0,
            false,
            0,
            Vec::new(),
        );
        log.append("health", 3.0, report.to_json()).unwrap();
        // Simulate a torn tail.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(OPS_LOG_FILE))
            .unwrap();
        write!(f, "{{\"seq\": 99, \"kind\": \"hea").unwrap();
        drop(f);

        let events = read_all(&dir);
        assert_eq!(events.len(), 2);
        let replayed = replay_final_health(&events).unwrap();
        assert_eq!(replayed, report);
        // Reopen continues after the torn line without inheriting it.
        let log = OpsLog::open(&dir, 1 << 20, 2).unwrap();
        assert_eq!(log.next_seq(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Declarative SLOs evaluated per rolled window, with error-budget burn.
//!
//! An [`SloSpec`] names a condition over one window's metrics (a counter
//! rate floor, a latency quantile ceiling); the [`SloTracker`] evaluates
//! every spec against every *active* stage each time a window rolls and
//! keeps a bounded good/bad history per `(slo, stage)`. The burn rate is
//! the classic error-budget form: with target `t` (the fraction of
//! windows that must be good), budget `1 - t`, and observed bad fraction
//! `b`, `burn = b / (1 - t)` — burn 1.0 consumes the budget exactly as
//! fast as it refills, and a sustained burn above it eventually violates
//! the SLO.
//!
//! Stages are evaluated only while **active** (the caller passes the set
//! — for the campaign service, tenants with running or paused work), so
//! a tenant that has simply finished its campaigns stops accruing
//! windows instead of being scored on idleness — and its accumulated
//! history is dropped, so finished work cannot pin health afterwards.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde_json::{json, Value};

use crate::metrics::MetricKey;

use super::window::WindowDelta;

/// The measurable condition one SLO window-checks.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// Good when the window's quantile of histogram family `name` (at the
    /// evaluated stage) is at most `max` — e.g. p95 queue wait below a
    /// bound. A window with no observations is good (no waiting at all).
    QuantileBelow {
        /// Histogram family (must be opted into the window spec).
        name: String,
        /// Quantile in `[0, 1]` (0.95 = p95).
        q: f64,
        /// Ceiling the quantile must not exceed.
        max: f64,
    },
    /// Good when counter family `name` increased by at least
    /// `min_per_window` in the window — e.g. campaign-day throughput.
    RateAtLeast {
        /// Counter family.
        name: String,
        /// Minimum delta per window.
        min_per_window: f64,
    },
}

/// One declared SLO: an id, a per-window condition, and the target
/// fraction of windows that must satisfy it.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Stable id (appears in ops-log events and health reports).
    pub id: String,
    /// The per-window condition.
    pub kind: SloKind,
    /// Fraction of windows that must be good, in `(0, 1)`.
    pub target: f64,
}

/// One `(slo, stage)` evaluation for one window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloWindowResult {
    /// The SLO's id.
    pub slo: String,
    /// Stage evaluated (e.g. `tenant:<id>`).
    pub stage: String,
    /// Whether the window satisfied the condition.
    pub good: bool,
    /// The measured value (quantile seconds or counter delta).
    pub value: f64,
}

impl SloWindowResult {
    /// Durable JSON form (carried inside `window_roll` ops events).
    pub fn to_json(&self) -> Value {
        json!({
            "slo": self.slo,
            "stage": self.stage,
            "good": self.good,
            "value": self.value,
        })
    }

    /// Parse the durable form.
    pub fn from_json(v: &Value) -> Result<SloWindowResult, String> {
        Ok(SloWindowResult {
            slo: v["slo"]
                .as_str()
                .ok_or("slo result missing slo")?
                .to_string(),
            stage: v["stage"]
                .as_str()
                .ok_or("slo result missing stage")?
                .to_string(),
            good: v["good"].as_bool().ok_or("slo result missing good")?,
            value: v["value"].as_f64().unwrap_or(0.0),
        })
    }
}

/// Rolled-up state of one `(slo, stage)` pair over the lookback.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The SLO's id.
    pub slo: String,
    /// Stage the status describes.
    pub stage: String,
    /// Windows in the lookback.
    pub windows: usize,
    /// Bad windows in the lookback.
    pub bad: usize,
    /// Error-budget burn rate (`bad_fraction / (1 - target)`).
    pub burn: f64,
}

impl SloStatus {
    /// JSON form for health reports.
    pub fn to_json(&self) -> Value {
        json!({
            "slo": self.slo,
            "stage": self.stage,
            "windows": self.windows,
            "bad": self.bad,
            "burn": self.burn,
        })
    }

    /// Parse the JSON form.
    pub fn from_json(v: &Value) -> Result<SloStatus, String> {
        Ok(SloStatus {
            slo: v["slo"]
                .as_str()
                .ok_or("slo status missing slo")?
                .to_string(),
            stage: v["stage"]
                .as_str()
                .ok_or("slo status missing stage")?
                .to_string(),
            windows: v["windows"].as_u64().ok_or("slo status missing windows")? as usize,
            bad: v["bad"].as_u64().ok_or("slo status missing bad")? as usize,
            burn: v["burn"].as_f64().unwrap_or(0.0),
        })
    }
}

/// Evaluates declared SLOs per window and tracks burn per `(slo, stage)`.
#[derive(Debug)]
pub struct SloTracker {
    specs: Vec<SloSpec>,
    lookback: usize,
    /// Good/bad history per `(slo id, stage)`, newest at the back.
    state: BTreeMap<(String, String), VecDeque<bool>>,
}

impl SloTracker {
    /// Tracker over `specs` with a `lookback`-window history per pair.
    pub fn new(specs: Vec<SloSpec>, lookback: usize) -> SloTracker {
        SloTracker {
            specs,
            lookback: lookback.max(1),
            state: BTreeMap::new(),
        }
    }

    /// The declared specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Evaluate every spec against every active stage for one rolled
    /// window, updating the histories. Returns the per-pair results.
    ///
    /// Stages absent from `active_stages` are dropped from the tracked
    /// state: burn describes *outstanding* work, and a tenant whose
    /// campaigns all finished must not pin health on stale history.
    pub fn observe_window(
        &mut self,
        window: &WindowDelta,
        active_stages: &BTreeSet<String>,
    ) -> Vec<SloWindowResult> {
        self.state
            .retain(|(_, stage), _| active_stages.contains(stage));
        let mut results = Vec::new();
        for spec in &self.specs {
            for stage in active_stages {
                let (good, value) = evaluate(&spec.kind, window, stage);
                results.push(SloWindowResult {
                    slo: spec.id.clone(),
                    stage: stage.clone(),
                    good,
                    value,
                });
            }
        }
        for r in &results {
            self.record(&r.slo, &r.stage, r.good);
        }
        results
    }

    /// Append one recovered result to a pair's history (ops-log
    /// rehydration path; [`SloTracker::observe_window`] uses it too).
    pub fn record(&mut self, slo: &str, stage: &str, good: bool) {
        let hist = self
            .state
            .entry((slo.to_string(), stage.to_string()))
            .or_default();
        hist.push_back(good);
        while hist.len() > self.lookback {
            hist.pop_front();
        }
    }

    /// Current burn per `(slo, stage)` pair, sorted by key. Pairs whose
    /// spec is no longer declared still report (their history came from a
    /// previous configuration via the ops log) with target 0.5.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.state
            .iter()
            .map(|((slo, stage), hist)| {
                let windows = hist.len();
                let bad = hist.iter().filter(|g| !**g).count();
                let target = self
                    .specs
                    .iter()
                    .find(|s| s.id == *slo)
                    .map(|s| s.target)
                    .unwrap_or(0.5);
                let budget = (1.0 - target).max(1e-9);
                SloStatus {
                    slo: slo.clone(),
                    stage: stage.clone(),
                    windows,
                    bad,
                    burn: if windows == 0 {
                        0.0
                    } else {
                        (bad as f64 / windows as f64) / budget
                    },
                }
            })
            .collect()
    }

    /// The highest burn across all pairs, if any history exists.
    pub fn max_burn(&self) -> Option<f64> {
        self.statuses()
            .into_iter()
            .map(|s| s.burn)
            .fold(None, |acc, b| Some(acc.map_or(b, |a: f64| a.max(b))))
    }
}

/// Evaluate one condition against one window and stage.
fn evaluate(kind: &SloKind, window: &WindowDelta, stage: &str) -> (bool, f64) {
    match kind {
        SloKind::QuantileBelow { name, q, max } => {
            match window.histograms.get(&MetricKey::new(name, stage)) {
                Some(h) if h.count() > 0 => {
                    let v = h.quantile(*q);
                    (v <= *max, v)
                }
                _ => (true, 0.0), // nothing waited: vacuously good
            }
        }
        SloKind::RateAtLeast {
            name,
            min_per_window,
        } => {
            let delta = window.counter(name, stage) as f64;
            (delta >= *min_per_window, delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::ops::window::{WindowSpec, WindowedMetrics};

    fn active(stages: &[&str]) -> BTreeSet<String> {
        stages.iter().map(|s| s.to_string()).collect()
    }

    fn throughput_slo() -> SloSpec {
        SloSpec {
            id: "tenant-throughput".to_string(),
            kind: SloKind::RateAtLeast {
                name: "granules".to_string(),
                min_per_window: 1.0,
            },
            target: 0.5,
        }
    }

    #[test]
    fn burn_rises_on_bad_windows_and_dilutes_on_good_ones() {
        let reg = MetricsRegistry::default();
        let mut win = WindowedMetrics::new(WindowSpec {
            window_s: 0.0,
            ring: 16,
            histogram_names: Vec::new(),
        });
        let mut slo = SloTracker::new(vec![throughput_slo()], 8);
        let stages = active(&["tenant:whale"]);

        // Two idle windows: the whale is active but produced nothing.
        for _ in 0..2 {
            let w = win.advance(1.0, &reg).unwrap();
            let results = slo.observe_window(&w, &stages);
            assert_eq!(results.len(), 1);
            assert!(!results[0].good);
        }
        // bad_frac 1.0 over budget 0.5 => burn 2.0.
        let s = &slo.statuses()[0];
        assert_eq!((s.windows, s.bad), (2, 2));
        assert!((s.burn - 2.0).abs() < 1e-9);
        assert_eq!(slo.max_burn(), Some(s.burn));

        // Six productive windows dilute the history below burn 1.0.
        for _ in 0..6 {
            reg.counter_add("granules", "tenant:whale", 3);
            let w = win.advance(1.0, &reg).unwrap();
            let results = slo.observe_window(&w, &stages);
            assert!(results[0].good);
        }
        let s = &slo.statuses()[0];
        assert_eq!((s.windows, s.bad), (8, 2));
        assert!((s.burn - 0.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_slo_reads_the_window_histogram_and_is_vacuous_when_empty() {
        let reg = MetricsRegistry::default();
        let mut win = WindowedMetrics::new(WindowSpec {
            window_s: 0.0,
            ring: 8,
            histogram_names: vec!["lease_wait_seconds".to_string()],
        });
        let spec = SloSpec {
            id: "queue-wait".to_string(),
            kind: SloKind::QuantileBelow {
                name: "lease_wait_seconds".to_string(),
                q: 0.95,
                max: 2.0,
            },
            target: 0.9,
        };
        let mut slo = SloTracker::new(vec![spec], 8);
        let stages = active(&["tenant:a"]);

        // Empty window: vacuously good.
        let w = win.advance(1.0, &reg).unwrap();
        assert!(slo.observe_window(&w, &stages)[0].good);

        // Fast waits: good with a real measured value.
        for _ in 0..10 {
            reg.observe("lease_wait_seconds", "tenant:a", 0.1);
        }
        let w = win.advance(1.0, &reg).unwrap();
        let r = &slo.observe_window(&w, &stages)[0];
        assert!(r.good);
        assert!(r.value > 0.0 && r.value <= 2.0);

        // A window of gross waits breaches the ceiling.
        for _ in 0..10 {
            reg.observe("lease_wait_seconds", "tenant:a", 50.0);
        }
        let w = win.advance(1.0, &reg).unwrap();
        let r = &slo.observe_window(&w, &stages)[0];
        assert!(!r.good);
        assert!(r.value > 2.0);
    }

    #[test]
    fn inactive_stages_are_not_scored_and_results_round_trip() {
        let reg = MetricsRegistry::default();
        let mut win = WindowedMetrics::new(WindowSpec {
            window_s: 0.0,
            ring: 8,
            histogram_names: Vec::new(),
        });
        let mut slo = SloTracker::new(vec![throughput_slo()], 4);
        let w = win.advance(1.0, &reg).unwrap();
        assert!(slo.observe_window(&w, &active(&[])).is_empty());
        assert!(slo.statuses().is_empty());

        let results = slo.observe_window(&w, &active(&["tenant:a"]));
        let back = SloWindowResult::from_json(&results[0].to_json()).unwrap();
        assert_eq!(back, results[0]);
        let status = &slo.statuses()[0];
        assert_eq!(SloStatus::from_json(&status.to_json()).unwrap(), *status);

        // Once tenant:a goes inactive its history is dropped — stale
        // burn must not survive the tenant's work.
        let w = win.advance(1.0, &reg).unwrap();
        slo.observe_window(&w, &active(&["tenant:b"]));
        let statuses = slo.statuses();
        let stages: Vec<&str> = statuses.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(stages, vec!["tenant:b"]);
    }
}

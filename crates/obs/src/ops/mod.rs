//! Continuous ops plane: rolling windows, SLO burn, scheduler audit,
//! health verdicts, and a durable ops event log.
//!
//! Everything in PRs 2–4 was batch-shaped — spans and metrics accumulate
//! and are analyzed once at end-of-run. A long-lived campaign service
//! needs the live counterparts: *what is the throughput right now*,
//! *which tenant is burning its error budget*, *is the scheduler still
//! fair*, and *is the service healthy* — answerable mid-run and across
//! restarts. The [`OpsPlane`] composes the four pieces:
//!
//! - [`window::WindowedMetrics`] — registry snapshots diffed into a ring
//!   of per-window deltas (rates per stage / tenant).
//! - [`slo::SloTracker`] — declarative [`slo::SloSpec`]s evaluated per
//!   window per active stage, with error-budget burn.
//! - [`audit::AuditRing`] — WRR admissions and budget leases, live
//!   Jain's fairness index.
//! - [`oplog::OpsLog`] — size-rotated JSONL wide-event log written next
//!   to the ledger root; a restarted service appends to the same history
//!   and the plane **rehydrates** its windows, SLO state, and audit
//!   tallies from it.
//!
//! [`health::evaluate`] folds alerts + SLO burn + fairness + recovery
//! state into one [`health::HealthReport`]; because it is pure and every
//! input is logged, replaying the ops log reproduces the same verdict —
//! the property the service soak test asserts.

pub mod audit;
pub mod health;
pub mod oplog;
pub mod slo;
pub mod window;

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::{Arc, Mutex};

use serde_json::{Map, Value};

use crate::alert::{Alert, AlertRule, AlertTransition, AlertTransitionKind, ProgressSink};
use crate::metrics::MetricsRegistry;
use crate::Obs;

use audit::{AuditRecord, AuditRing};
use health::{FacilityStatus, HealthPolicy, HealthReport, HealthState};
use oplog::{OpsEvent, OpsLog};
use slo::{SloSpec, SloStatus, SloTracker};
use window::{WindowDelta, WindowSpec, WindowedMetrics};

/// Configuration for an [`OpsPlane`].
#[derive(Debug, Clone)]
pub struct OpsConfig {
    /// Window length in ops-clock (sim) seconds; `0` rolls every tick.
    pub window_s: f64,
    /// Windows retained in the in-memory ring.
    pub ring: usize,
    /// Histogram families diffed per window (quantile SLO inputs).
    pub histogram_names: Vec<String>,
    /// Windows of good/bad history per `(slo, stage)`.
    pub slo_lookback: usize,
    /// Declared SLOs.
    pub slos: Vec<SloSpec>,
    /// Ops-log segment size before rotation.
    pub oplog_max_bytes: u64,
    /// Rotated ops-log segments retained.
    pub oplog_keep: usize,
    /// Audit-ring capacity (recent records; tallies are cumulative).
    pub audit_ring: usize,
    /// Health thresholds.
    pub policy: HealthPolicy,
    /// Alert rules attached to the hub via [`OpsPlane::attach_alerts`].
    pub alert_rules: Vec<AlertRule>,
}

impl OpsConfig {
    /// Small defaults matching `ServiceConfig::small()`: hourly windows,
    /// no SLOs or alert rules (tests declare their own), lease-wait and
    /// quantum-makespan histograms opted in.
    pub fn small() -> OpsConfig {
        OpsConfig {
            window_s: 3600.0,
            ring: 64,
            histogram_names: vec![
                "lease_wait_seconds".to_string(),
                "quantum_makespan_s".to_string(),
            ],
            slo_lookback: 16,
            slos: Vec::new(),
            oplog_max_bytes: 1 << 20,
            oplog_keep: 4,
            audit_ring: 256,
            policy: HealthPolicy::default(),
            alert_rules: Vec::new(),
        }
    }
}

impl Default for OpsConfig {
    fn default() -> OpsConfig {
        OpsConfig::small()
    }
}

/// The live ops plane: owns the window ring, SLO tracker, audit ring,
/// and ops log, and produces [`HealthReport`]s.
///
/// Not internally synchronised — the owner (the campaign service) wraps
/// it in its own mutex.
#[derive(Debug)]
pub struct OpsPlane {
    config: OpsConfig,
    windows: WindowedMetrics,
    slos: SloTracker,
    audit: AuditRing,
    log: OpsLog,
    /// Latest per-destination-facility ingest signals, keyed by facility.
    facilities: BTreeMap<String, FacilityStatus>,
    /// Running count of files abandoned after retry exhaustion — the
    /// download pool's terminal give-up signal, fed into health.
    downloads_abandoned: u64,
    last_health_state: Option<HealthState>,
    recovering: bool,
    alerts: Option<Arc<Mutex<Vec<Alert>>>>,
    transitions: Option<Arc<Mutex<Vec<AlertTransition>>>>,
}

impl OpsPlane {
    /// Open the plane over `dir`, rehydrating window history, SLO state,
    /// and audit tallies from any ops log already there — a restarted
    /// service continues the same operational history.
    pub fn open(dir: &Path, config: OpsConfig) -> std::io::Result<OpsPlane> {
        let log = OpsLog::open(dir, config.oplog_max_bytes, config.oplog_keep)?;
        let mut windows = WindowedMetrics::new(WindowSpec {
            window_s: config.window_s,
            ring: config.ring,
            histogram_names: config.histogram_names.clone(),
        });
        let mut slos = SloTracker::new(config.slos.clone(), config.slo_lookback);
        let mut audit = AuditRing::new(config.audit_ring);
        let mut facilities = BTreeMap::new();
        let mut downloads_abandoned = 0u64;
        for event in oplog::read_all(dir) {
            match event.kind.as_str() {
                "window_roll" => {
                    if let Ok(delta) = WindowDelta::from_json(&event.data) {
                        windows.seed(delta);
                    }
                    if let Some(results) = event.data["slos"].as_array() {
                        for r in results {
                            if let Ok(r) = slo::SloWindowResult::from_json(r) {
                                slos.record(&r.slo, &r.stage, r.good);
                            }
                        }
                    }
                }
                "admission" | "lease_acquired" | "lease_released" => {
                    if let Ok(record) = AuditRecord::from_json(&event.data) {
                        audit.record(record);
                    }
                }
                "facility" => {
                    if let Ok(status) = FacilityStatus::from_json(&event.data) {
                        facilities.insert(status.facility.clone(), status);
                    }
                }
                "downloads_abandoned" => {
                    downloads_abandoned += event.data["count"].as_u64().unwrap_or(0);
                }
                _ => {}
            }
        }
        Ok(OpsPlane {
            config,
            windows,
            slos,
            audit,
            log,
            facilities,
            downloads_abandoned,
            // Left `None` so the first `health()` after open always logs
            // a baseline verdict, even when the state did not change
            // across the restart.
            last_health_state: None,
            recovering: false,
            alerts: None,
            transitions: None,
        })
    }

    /// Build a [`ProgressSink`] from the configured alert rules, attach
    /// it to `obs`, and keep the alert/transition handles. Idempotent
    /// per plane (later calls replace the handles).
    pub fn attach_alerts(&mut self, obs: &Obs) {
        let mut sink = ProgressSink::new();
        for rule in &self.config.alert_rules {
            sink = sink.with_rule(rule.clone());
        }
        self.alerts = Some(sink.alerts());
        self.transitions = Some(sink.transitions());
        obs.add_sink(Box::new(sink));
    }

    /// Mark whether the service is replaying journal-recovered work;
    /// surfaced as a `Degraded` reason until cleared.
    pub fn set_recovering(&mut self, recovering: bool) {
        self.recovering = recovering;
    }

    /// Whether the plane currently reports recovery in progress.
    pub fn recovering(&self) -> bool {
        self.recovering
    }

    /// The ops-clock position, seconds.
    pub fn now_s(&self) -> f64 {
        self.windows.now_s()
    }

    /// The window ring.
    pub fn windows(&self) -> &WindowedMetrics {
        &self.windows
    }

    /// The audit ring.
    pub fn audit(&self) -> &AuditRing {
        &self.audit
    }

    /// Live Jain's fairness index over weighted admissions.
    pub fn fairness(&self) -> Option<f64> {
        self.audit.fairness_jain()
    }

    /// Current per-`(slo, stage)` burn statuses.
    pub fn slo_statuses(&self) -> Vec<SloStatus> {
        self.slos.statuses()
    }

    /// Record (or refresh) one destination facility's ingest signals —
    /// lag and verification outcomes become SLO-able health inputs. The
    /// update is logged as a `facility` event so a restarted plane
    /// rehydrates the same per-facility picture.
    pub fn record_facility(&mut self, status: FacilityStatus) {
        let data = status.to_json();
        self.facilities.insert(status.facility.clone(), status);
        let at = self.windows.now_s();
        let _ = self.log.append("facility", at, data);
    }

    /// Latest per-facility signals, in facility order.
    pub fn facilities(&self) -> Vec<&FacilityStatus> {
        self.facilities.values().collect()
    }

    /// Record `count` files abandoned by the download pool after retry
    /// exhaustion. The increment is logged as a `downloads_abandoned`
    /// event so a restarted plane carries the same lost-file tally, and
    /// the running total degrades health past the policy allowance.
    pub fn record_abandoned(&mut self, count: u64) {
        if count == 0 {
            return;
        }
        self.downloads_abandoned += count;
        let at = self.windows.now_s();
        let _ = self.log.append(
            "downloads_abandoned",
            at,
            serde_json::json!({ "count": count, "total": self.downloads_abandoned }),
        );
    }

    /// Running count of abandoned downloads (rehydrated across restarts).
    pub fn downloads_abandoned(&self) -> u64 {
        self.downloads_abandoned
    }

    /// Alerts currently in the firing state.
    pub fn alerts_active(&self) -> usize {
        self.alerts
            .as_ref()
            .map(|a| {
                a.lock()
                    .expect("alert list poisoned")
                    .iter()
                    .filter(|al| al.is_active())
                    .count()
            })
            .unwrap_or(0)
    }

    /// Append one lifecycle event (`submit`, `pause`, …) at the current
    /// ops-clock time. Write errors are swallowed: the log is advisory
    /// and must never fail the data path.
    pub fn event(&mut self, kind: &str, data: Value) {
        let at = self.windows.now_s();
        let _ = self.log.append(kind, at, data);
    }

    /// Log a pointer to a recorded [`crate::archive::RunArchive`]: an
    /// `archive_recorded` event carrying the archive path and the
    /// manifest identity (schema version, config digest, sim seed,
    /// label). Operators replaying the ops log can then locate the
    /// frozen artifacts of any historical run and `eoml-obsctl diff`
    /// them offline.
    pub fn record_archive(&mut self, path: &str, meta: &crate::archive::RunMeta) {
        let mut data = Map::new();
        data.insert("path".to_string(), Value::from(path));
        data.insert(
            "schema_version".to_string(),
            Value::from(meta.schema_version as f64),
        );
        data.insert(
            "config_digest".to_string(),
            Value::from(meta.config_digest.as_str()),
        );
        data.insert("sim_seed".to_string(), Value::from(meta.sim_seed as f64));
        data.insert("label".to_string(), Value::from(meta.label.as_str()));
        self.event("archive_recorded", Value::Object(data));
    }

    /// Record one scheduler action into the audit ring and the ops log.
    pub fn record_audit(&mut self, record: AuditRecord) {
        let kind = match &record {
            AuditRecord::Admission { .. } => "admission",
            AuditRecord::LeaseAcquired { .. } => "lease_acquired",
            AuditRecord::LeaseReleased { .. } => "lease_released",
        };
        let data = record.to_json();
        self.audit.record(record);
        let at = self.windows.now_s();
        let _ = self.log.append(kind, at, data);
    }

    /// Move alert edges accumulated by the attached sink into the ops
    /// log as `alert_fired` / `alert_cleared` events.
    pub fn drain_alert_transitions(&mut self) {
        let Some(handle) = self.transitions.as_ref() else {
            return;
        };
        let drained: Vec<AlertTransition> = {
            let mut t = handle.lock().expect("transition list poisoned");
            std::mem::take(&mut *t)
        };
        for tr in drained {
            let kind = match tr.kind {
                AlertTransitionKind::Fired => "alert_fired",
                AlertTransitionKind::Cleared => "alert_cleared",
            };
            let _ = self.log.append(
                kind,
                tr.at_s,
                serde_json::json!({
                    "rule": tr.rule,
                    "stage": tr.stage,
                    "message": tr.message,
                }),
            );
        }
    }

    /// Advance the ops clock by `dt_s` and roll a window if due. On a
    /// roll the SLOs are evaluated against `active_stages` and the
    /// window (with its SLO results) is logged as a `window_roll` event.
    pub fn tick(
        &mut self,
        dt_s: f64,
        registry: &MetricsRegistry,
        active_stages: &BTreeSet<String>,
    ) -> Option<WindowDelta> {
        let delta = self.windows.advance(dt_s, registry)?;
        self.finish_roll(delta, active_stages)
    }

    /// Roll whatever has accumulated since the last boundary (drain /
    /// idle path), evaluating SLOs as in [`OpsPlane::tick`].
    pub fn force_roll(
        &mut self,
        registry: &MetricsRegistry,
        active_stages: &BTreeSet<String>,
    ) -> Option<WindowDelta> {
        let delta = self.windows.force_roll(registry)?;
        self.finish_roll(delta, active_stages)
    }

    fn finish_roll(
        &mut self,
        delta: WindowDelta,
        active_stages: &BTreeSet<String>,
    ) -> Option<WindowDelta> {
        self.drain_alert_transitions();
        let results = self.slos.observe_window(&delta, active_stages);
        let mut data = delta.to_json();
        if let Some(map) = data.as_object_mut() {
            map.insert(
                "slos".to_string(),
                Value::Array(results.iter().map(|r| r.to_json()).collect()),
            );
        }
        let at = delta.end_s;
        let _ = self.log.append("window_roll", at, data);
        Some(delta)
    }

    /// Evaluate health now. Logs a `health` event when the state differs
    /// from the last logged one (or on the first call after open), so
    /// the log records transitions, not heartbeats.
    pub fn health(&mut self) -> HealthReport {
        self.drain_alert_transitions();
        let report = health::evaluate(
            &self.config.policy,
            self.windows.now_s(),
            self.windows.windows_rolled(),
            self.audit.fairness_jain(),
            self.audit.total_admissions(),
            self.slos.statuses(),
            self.alerts_active(),
            self.recovering,
            self.downloads_abandoned,
            self.facilities.values().cloned().collect(),
        );
        let changed = self.last_health_state.as_ref() != Some(&report.state);
        if changed {
            let at = report.at_s;
            let _ = self.log.append("health", at, report.to_json());
            self.last_health_state = Some(report.state.clone());
        }
        report
    }

    /// The full recorded event history (rotations oldest-first).
    pub fn events(&self) -> Vec<OpsEvent> {
        oplog::read_all(self.log.dir())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    fn tempdir(tag: &str) -> PathBuf {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("eoml-opsplane-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config() -> OpsConfig {
        OpsConfig {
            window_s: 0.0,
            slo_lookback: 8,
            slos: vec![SloSpec {
                id: "throughput".to_string(),
                kind: slo::SloKind::RateAtLeast {
                    name: "granules".to_string(),
                    min_per_window: 1.0,
                },
                target: 0.5,
            }],
            ..OpsConfig::small()
        }
    }

    #[test]
    fn plane_rolls_windows_logs_events_and_transitions_health() {
        let dir = tempdir("live");
        let reg = MetricsRegistry::default();
        let mut plane = OpsPlane::open(&dir, config()).unwrap();
        let active: BTreeSet<String> = ["tenant:a".to_string()].into();

        // Two idle windows: burn 2.0 >= degraded threshold.
        plane.event("service_open", serde_json::json!({}));
        assert!(plane.tick(1.0, &reg, &active).is_some());
        assert!(plane.tick(1.0, &reg, &active).is_some());
        let degraded = plane.health();
        assert_eq!(degraded.state.label(), "degraded");

        // Six productive windows dilute burn to 0.5: healthy again.
        for _ in 0..6 {
            reg.counter_add("granules", "tenant:a", 2);
            plane.tick(1.0, &reg, &active).unwrap();
        }
        let healthy = plane.health();
        assert_eq!(healthy.state, HealthState::Healthy);
        assert_eq!(healthy.windows, 8);

        // The log recorded the transition pair, and replaying it lands
        // on the same final verdict.
        let events = plane.events();
        let states: Vec<String> = events
            .iter()
            .filter(|e| e.kind == "health")
            .map(|e| e.data["state"].as_str().unwrap().to_string())
            .collect();
        assert_eq!(states, vec!["degraded", "healthy"]);
        let replayed = oplog::replay_final_health(&events).unwrap();
        assert_eq!(replayed.state, healthy.state);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn archive_pointer_events_survive_the_log() {
        let dir = tempdir("archive-ptr");
        let mut plane = OpsPlane::open(&dir, config()).unwrap();
        let meta = crate::archive::RunMeta::new("campaign-42", "deadbeef00000000", 2022);
        plane.record_archive("/data/archives/campaign-42", &meta);
        drop(plane);
        // A fresh plane (or offline `read_ops_log`) sees the pointer.
        let plane = OpsPlane::open(&dir, config()).unwrap();
        let events = plane.events();
        let ptr = events
            .iter()
            .find(|e| e.kind == "archive_recorded")
            .expect("archive pointer logged");
        assert_eq!(
            ptr.data["path"].as_str(),
            Some("/data/archives/campaign-42")
        );
        assert_eq!(ptr.data["config_digest"].as_str(), Some("deadbeef00000000"));
        assert_eq!(ptr.data["sim_seed"].as_f64(), Some(2022.0));
        assert_eq!(
            ptr.data["schema_version"].as_f64(),
            Some(crate::archive::ARCHIVE_SCHEMA_VERSION as f64)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_plane_rehydrates_windows_slos_and_audit() {
        let dir = tempdir("rehydrate");
        let reg = MetricsRegistry::default();
        let admission = AuditRecord::Admission {
            tenant: "a".to_string(),
            campaign: "c".to_string(),
            day_index: 0,
            shard: 0,
            workers: 4,
            weight: 2,
        };
        {
            let mut plane = OpsPlane::open(&dir, config()).unwrap();
            let active: BTreeSet<String> = ["tenant:a".to_string()].into();
            plane.record_audit(admission.clone());
            reg.counter_add("granules", "tenant:a", 3);
            plane.tick(5.0, &reg, &active).unwrap();
            plane.tick(5.0, &reg, &active).unwrap(); // idle window
            let _ = plane.health();
        }
        // Fresh registry, fresh plane: state must come from the log.
        let mut plane = OpsPlane::open(&dir, config()).unwrap();
        assert_eq!(plane.windows().windows_rolled(), 2);
        assert_eq!(plane.now_s(), 10.0);
        assert_eq!(
            plane.windows().trailing_rate("granules", "tenant:a", 8),
            3.0 / 10.0
        );
        assert_eq!(plane.audit().tallies()["a"], (1, 2));
        let statuses = plane.slo_statuses();
        assert_eq!(statuses.len(), 1);
        assert_eq!((statuses[0].windows, statuses[0].bad), (2, 1));
        // Window indices continue, not restart.
        let reg2 = MetricsRegistry::default();
        let w = plane
            .tick(1.0, &reg2, &BTreeSet::new())
            .expect("window rolls");
        assert_eq!(w.index, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn facility_signals_roll_into_health_and_rehydrate() {
        let dir = tempdir("facility");
        {
            let mut plane = OpsPlane::open(&dir, config()).unwrap();
            assert_eq!(plane.health().state, HealthState::Healthy);
            // A failing destination surfaces as Degraded, not silence.
            plane.record_facility(FacilityStatus {
                facility: "frontier-orion".to_string(),
                ingest_lag_s: 12.0,
                verified: 9,
                verify_failures: 1,
            });
            let report = plane.health();
            assert_eq!(report.state.label(), "degraded");
            assert!(report.state.reasons()[0].contains("frontier-orion"));
            assert_eq!(report.facilities.len(), 1);
            // A later clean refresh of the same facility recovers.
            plane.record_facility(FacilityStatus {
                facility: "frontier-orion".to_string(),
                ingest_lag_s: 3.0,
                verified: 10,
                verify_failures: 0,
            });
            assert_eq!(plane.health().state, HealthState::Healthy);
        }
        // Reopen: the last-written facility status survives the restart.
        let mut plane = OpsPlane::open(&dir, config()).unwrap();
        let facs = plane.facilities();
        assert_eq!(facs.len(), 1);
        assert_eq!(facs[0].verified, 10);
        assert_eq!(facs[0].verify_failures, 0);
        assert_eq!(plane.health().state, HealthState::Healthy);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attached_alert_edges_land_in_the_ops_log() {
        let dir = tempdir("alerts");
        let mut cfg = config();
        cfg.alert_rules = vec![AlertRule::StageStalled {
            stage: "preprocess".to_string(),
            idle_s: 60.0,
        }];
        let mut plane = OpsPlane::open(&dir, cfg).unwrap();
        let obs = Obs::new();
        plane.attach_alerts(&obs);
        assert_eq!(plane.alerts_active(), 0);

        obs.record_sim_span(
            "preprocess",
            "work",
            eoml_simtime::SimTime::ZERO,
            eoml_simtime::SimTime::from_secs_f64(10.0),
        );
        obs.record_sim_span(
            "download",
            "work",
            eoml_simtime::SimTime::from_secs_f64(10.0),
            eoml_simtime::SimTime::from_secs_f64(120.0),
        );
        assert_eq!(plane.alerts_active(), 1);
        let report = plane.health();
        assert_eq!(report.alerts_active, 1);
        assert_eq!(report.state.label(), "degraded");

        obs.record_sim_span(
            "preprocess",
            "work",
            eoml_simtime::SimTime::from_secs_f64(120.0),
            eoml_simtime::SimTime::from_secs_f64(125.0),
        );
        assert_eq!(plane.alerts_active(), 0);
        assert_eq!(plane.health().state, HealthState::Healthy);
        let kinds: Vec<String> = plane.events().into_iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"alert_fired".to_string()));
        assert!(kinds.contains(&"alert_cleared".to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

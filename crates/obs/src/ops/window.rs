//! Rolling-window metric aggregation.
//!
//! A [`WindowedMetrics`] periodically diffs the cumulative
//! [`MetricsRegistry`] against the baseline taken at the previous roll,
//! producing a ring of [`WindowDelta`]s: what happened *in* each window,
//! not since process start. Windows are bounded to the configured ring
//! size, so a service that runs for months holds a constant amount of
//! window state — the continuous counterpart to the batch-shaped
//! snapshot exporters.
//!
//! The clock is **sim time**: the driver advances it by each scheduler
//! quantum's makespan, and a window rolls at the first quantum boundary
//! on or after `window_s` elapsed. One roll covers the whole elapsed
//! interval (windows are variable-length, never empty-by-construction),
//! so trailing rates divide real deltas by real durations.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use serde_json::{json, Value};

use crate::metrics::{stage_matches_prefix, LogHistogram, MetricKey, MetricsRegistry};

/// Shape of the rolling-window aggregator.
#[derive(Debug, Clone)]
pub struct WindowSpec {
    /// Minimum window length, sim seconds. `0.0` rolls a window on every
    /// tick that advanced the clock (one window per scheduler quantum).
    pub window_s: f64,
    /// Windows retained in the in-memory ring.
    pub ring: usize,
    /// Histogram families diffed per window (quantile SLOs read these);
    /// counters and gauges are always captured.
    pub histogram_names: Vec<String>,
}

impl Default for WindowSpec {
    fn default() -> WindowSpec {
        WindowSpec {
            window_s: 3600.0,
            ring: 64,
            histogram_names: Vec::new(),
        }
    }
}

/// What one rolled window observed: sparse counter deltas, end-of-window
/// gauge values, and per-family histogram deltas.
#[derive(Debug, Clone, Default)]
pub struct WindowDelta {
    /// Monotone window index (strictly increasing across restarts).
    pub index: u64,
    /// Window start, sim seconds.
    pub start_s: f64,
    /// Window end, sim seconds (`end_s > start_s` always).
    pub end_s: f64,
    /// Counter increments inside the window (zero deltas omitted).
    pub counters: BTreeMap<MetricKey, u64>,
    /// Gauge values at the window's end.
    pub gauges: BTreeMap<MetricKey, f64>,
    /// Histogram-of-the-window for the opted-in families.
    pub histograms: BTreeMap<MetricKey, LogHistogram>,
}

impl WindowDelta {
    /// Window length, seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// One counter's delta in this window.
    pub fn counter(&self, name: &str, stage: &str) -> u64 {
        self.counters
            .get(&MetricKey::new(name, stage))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of one counter family's deltas over every stage matching
    /// `prefix` (delimiter-aware; see
    /// [`crate::metrics::stage_matches_prefix`]).
    pub fn counter_prefix(&self, name: &str, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name && stage_matches_prefix(&k.stage, prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// The durable JSON form carried by the ops log's `window_roll`
    /// events: index, bounds, and the sparse counter deltas. Gauges and
    /// histograms are point-in-time/derived state and are not persisted.
    pub fn to_json(&self) -> Value {
        let counters: Vec<Value> = self
            .counters
            .iter()
            .map(|(k, v)| json!({ "name": k.name, "stage": k.stage, "delta": v }))
            .collect();
        json!({
            "index": self.index,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "counters": counters,
        })
    }

    /// Parse the durable form; `Err` names the missing field.
    pub fn from_json(v: &Value) -> Result<WindowDelta, String> {
        let mut counters = BTreeMap::new();
        if let Some(items) = v["counters"].as_array() {
            for item in items {
                let name = item["name"].as_str().ok_or("window counter missing name")?;
                let stage = item["stage"]
                    .as_str()
                    .ok_or("window counter missing stage")?;
                let delta = item["delta"]
                    .as_u64()
                    .ok_or("window counter missing delta")?;
                counters.insert(MetricKey::new(name, stage), delta);
            }
        }
        Ok(WindowDelta {
            index: v["index"].as_u64().ok_or("window missing index")?,
            start_s: v["start_s"].as_f64().ok_or("window missing start_s")?,
            end_s: v["end_s"].as_f64().ok_or("window missing end_s")?,
            counters,
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        })
    }
}

/// The rolling-window aggregator: a sim-time clock, cumulative baselines
/// from the last roll, and the bounded ring of rolled windows.
#[derive(Debug)]
pub struct WindowedMetrics {
    spec: WindowSpec,
    now_s: f64,
    window_start_s: f64,
    next_index: u64,
    counter_base: BTreeMap<MetricKey, u64>,
    hist_base: BTreeMap<MetricKey, LogHistogram>,
    ring: VecDeque<WindowDelta>,
}

impl WindowedMetrics {
    /// Fresh aggregator: clock at zero, empty baselines (a fresh process
    /// has a fresh registry, so the first window measures from zero).
    pub fn new(spec: WindowSpec) -> WindowedMetrics {
        WindowedMetrics {
            spec,
            now_s: 0.0,
            window_start_s: 0.0,
            next_index: 0,
            counter_base: BTreeMap::new(),
            hist_base: BTreeMap::new(),
            ring: VecDeque::new(),
        }
    }

    /// Current sim-time clock, seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Windows rolled so far (lifetime, including seeded history).
    pub fn windows_rolled(&self) -> u64 {
        self.next_index
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &WindowDelta> {
        self.ring.iter()
    }

    /// Re-adopt a window recovered from the ops log, in index order. The
    /// clock fast-forwards to the window's end and later live windows
    /// continue the index sequence, so trailing rates span the restart.
    pub fn seed(&mut self, delta: WindowDelta) {
        self.next_index = self.next_index.max(delta.index + 1);
        self.now_s = self.now_s.max(delta.end_s);
        self.window_start_s = self.now_s;
        self.push(delta);
    }

    /// Advance the clock by `dt_s` (one scheduler quantum's makespan) and
    /// roll a window if at least `window_s` has elapsed since the last
    /// roll. Returns the rolled window.
    pub fn advance(&mut self, dt_s: f64, registry: &MetricsRegistry) -> Option<WindowDelta> {
        if dt_s.is_finite() && dt_s > 0.0 {
            self.now_s += dt_s;
        }
        let elapsed = self.now_s - self.window_start_s;
        if elapsed > 0.0 && elapsed >= self.spec.window_s {
            return Some(self.roll(registry));
        }
        None
    }

    /// Roll whatever has elapsed since the last window, regardless of
    /// `window_s` — the end-of-drain flush, so a final partial window is
    /// never silently dropped. No-op when the clock has not advanced.
    pub fn force_roll(&mut self, registry: &MetricsRegistry) -> Option<WindowDelta> {
        if self.now_s > self.window_start_s {
            return Some(self.roll(registry));
        }
        None
    }

    fn roll(&mut self, registry: &MetricsRegistry) -> WindowDelta {
        let snap = registry.snapshot_lean(&self.spec.histogram_names);
        let mut delta = WindowDelta {
            index: self.next_index,
            start_s: self.window_start_s,
            end_s: self.now_s,
            ..WindowDelta::default()
        };
        let mut counter_base = BTreeMap::new();
        for (key, total) in snap.counters {
            let base = self.counter_base.get(&key).copied().unwrap_or(0);
            let d = total.saturating_sub(base);
            if d > 0 {
                delta.counters.insert(key.clone(), d);
            }
            counter_base.insert(key, total);
        }
        self.counter_base = counter_base;
        for (key, value) in snap.gauges {
            delta.gauges.insert(key, value);
        }
        let mut hist_base = BTreeMap::new();
        for (key, hist) in snap.histograms {
            let windowed = match self.hist_base.get(&key) {
                Some(base) => hist.saturating_diff(base),
                None => hist.clone(),
            };
            if windowed.count() > 0 {
                delta.histograms.insert(key.clone(), windowed);
            }
            hist_base.insert(key, hist);
        }
        self.hist_base = hist_base;

        self.window_start_s = self.now_s;
        self.next_index += 1;
        self.push(delta.clone());
        delta
    }

    fn push(&mut self, delta: WindowDelta) {
        self.ring.push_back(delta);
        while self.ring.len() > self.spec.ring.max(1) {
            self.ring.pop_front();
        }
    }

    /// Rate of one counter over the trailing `n` windows: total delta
    /// divided by the windows' combined duration, per second. Zero when
    /// nothing has rolled yet.
    pub fn trailing_rate(&self, name: &str, stage: &str, n: usize) -> f64 {
        self.trailing(n, |w| w.counter(name, stage))
    }

    /// [`WindowedMetrics::trailing_rate`] summed over every stage
    /// matching `prefix` — the per-tenant throughput view.
    pub fn trailing_prefix_rate(&self, name: &str, prefix: &str, n: usize) -> f64 {
        self.trailing(n, |w| w.counter_prefix(name, prefix))
    }

    fn trailing(&self, n: usize, count: impl Fn(&WindowDelta) -> u64) -> f64 {
        let take = n.max(1).min(self.ring.len());
        if take == 0 {
            return 0.0;
        }
        let windows = self.ring.iter().rev().take(take);
        let mut total = 0u64;
        let mut seconds = 0.0;
        for w in windows {
            total += count(w);
            seconds += w.duration_s();
        }
        if seconds > 0.0 {
            total as f64 / seconds
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(window_s: f64, ring: usize) -> WindowSpec {
        WindowSpec {
            window_s,
            ring,
            histogram_names: vec!["lease_wait_seconds".to_string()],
        }
    }

    #[test]
    fn windows_roll_on_quantum_boundaries_and_carry_deltas() {
        let reg = MetricsRegistry::default();
        let mut w = WindowedMetrics::new(spec(10.0, 8));
        reg.counter_add("granules", "tenant:a", 3);
        // 4s elapsed: below the window length, nothing rolls.
        assert!(w.advance(4.0, &reg).is_none());
        reg.counter_add("granules", "tenant:a", 2);
        // The quantum that crosses the boundary rolls one window covering
        // the whole elapsed interval.
        let first = w.advance(8.0, &reg).expect("rolls at 12s");
        assert_eq!(first.index, 0);
        assert_eq!(first.start_s, 0.0);
        assert_eq!(first.end_s, 12.0);
        assert_eq!(first.counter("granules", "tenant:a"), 5);
        // The next window measures only what happened after the roll.
        reg.counter_add("granules", "tenant:a", 7);
        let second = w.advance(11.0, &reg).expect("rolls at 23s");
        assert_eq!(second.index, 1);
        assert_eq!(second.counter("granules", "tenant:a"), 7);
        assert_eq!(w.windows_rolled(), 2);
    }

    #[test]
    fn zero_window_rolls_every_tick_but_never_an_empty_interval() {
        let reg = MetricsRegistry::default();
        let mut w = WindowedMetrics::new(spec(0.0, 8));
        assert!(w.advance(0.0, &reg).is_none(), "no time, no window");
        assert!(w.advance(1.5, &reg).is_some());
        assert!(w.advance(2.5, &reg).is_some());
        assert!(w.force_roll(&reg).is_none(), "nothing pending after roll");
        assert_eq!(w.windows_rolled(), 2);
    }

    #[test]
    fn trailing_rates_use_prefix_boundaries() {
        let reg = MetricsRegistry::default();
        let mut w = WindowedMetrics::new(spec(0.0, 8));
        reg.counter_add("granules", "tenant:t1", 4);
        reg.counter_add("granules", "tenant:t10", 400);
        w.advance(2.0, &reg);
        reg.counter_add("granules", "tenant:t1", 2);
        w.advance(1.0, &reg);
        // 6 granules over 3 seconds; t10's 400 never leak into t1.
        assert!((w.trailing_prefix_rate("granules", "tenant:t1", 8) - 2.0).abs() < 1e-9);
        assert!((w.trailing_rate("granules", "tenant:t1", 1) - 2.0).abs() < 1e-9);
        assert!(w.trailing_prefix_rate("granules", "tenant:t10", 8) > 100.0);
    }

    #[test]
    fn histogram_families_are_diffed_per_window() {
        let reg = MetricsRegistry::default();
        let mut w = WindowedMetrics::new(spec(0.0, 4));
        reg.observe("lease_wait_seconds", "tenant:a", 1.0);
        reg.observe("file_seconds", "download", 9.0); // not opted in
        let first = w.advance(1.0, &reg).unwrap();
        assert_eq!(first.histograms.len(), 1);
        reg.observe("lease_wait_seconds", "tenant:a", 3.0);
        reg.observe("lease_wait_seconds", "tenant:a", 5.0);
        let second = w.advance(1.0, &reg).unwrap();
        let h = &second.histograms[&MetricKey::new("lease_wait_seconds", "tenant:a")];
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn ring_is_bounded_and_seed_resumes_the_sequence() {
        let reg = MetricsRegistry::default();
        let mut w = WindowedMetrics::new(spec(0.0, 3));
        for _ in 0..5 {
            reg.counter_add("granules", "tenant:a", 1);
            w.advance(1.0, &reg);
        }
        assert_eq!(w.windows().count(), 3);
        assert_eq!(w.windows_rolled(), 5);

        // Restart: a fresh aggregator re-adopts the persisted windows.
        let mut resumed = WindowedMetrics::new(spec(0.0, 3));
        for win in w.windows() {
            let json = win.to_json();
            resumed.seed(WindowDelta::from_json(&json).unwrap());
        }
        assert_eq!(resumed.windows_rolled(), 5);
        assert_eq!(resumed.now_s(), w.now_s());
        // The next live window continues the index sequence.
        let reg2 = MetricsRegistry::default();
        reg2.counter_add("granules", "tenant:a", 2);
        let next = resumed.advance(1.0, &reg2).unwrap();
        assert_eq!(next.index, 5);
        assert_eq!(next.counter("granules", "tenant:a"), 2);
    }
}

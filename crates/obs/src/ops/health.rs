//! Health verdicts: alerts + SLO burn + fairness + recovery state rolled
//! into one machine-readable report.
//!
//! [`evaluate`] is a pure function from observed signals to a
//! [`HealthReport`], so the same code path produces the live verdict and
//! the replayed-from-ops-log verdict the soak test compares against.

use serde_json::{json, Value};

use super::slo::SloStatus;

/// The service's health state, worst-signal-wins.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthState {
    /// All signals within policy.
    Healthy,
    /// Service is working but a signal is out of band.
    Degraded {
        /// Human-readable reasons, stable across replay.
        reasons: Vec<String>,
    },
    /// Error budget is burning fast enough to need intervention.
    Unhealthy {
        /// Human-readable reasons, stable across replay.
        reasons: Vec<String>,
    },
}

impl HealthState {
    /// Short label (`healthy` / `degraded` / `unhealthy`).
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded { .. } => "degraded",
            HealthState::Unhealthy { .. } => "unhealthy",
        }
    }

    /// The reasons, empty when healthy.
    pub fn reasons(&self) -> &[String] {
        match self {
            HealthState::Healthy => &[],
            HealthState::Degraded { reasons } | HealthState::Unhealthy { reasons } => reasons,
        }
    }
}

/// Thresholds that map signals to a [`HealthState`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthPolicy {
    /// Burn at or above this degrades the service.
    pub degraded_burn: f64,
    /// Burn at or above this marks the service unhealthy.
    pub unhealthy_burn: f64,
    /// Jain's index below this (once admissions are meaningful) degrades.
    pub min_fairness: f64,
    /// Fairness is only judged after this many total admissions.
    pub fairness_min_admissions: u64,
    /// A facility whose ingest lag exceeds this many seconds degrades.
    pub max_ingest_lag_s: f64,
    /// A facility whose verification-failure rate reaches this fraction
    /// is unhealthy (any failure at all already degrades).
    pub unhealthy_verify_failure_rate: f64,
    /// Downloads abandoned after retry exhaustion beyond this count
    /// degrade the service (0 = any abandoned file degrades).
    pub max_abandoned_files: u64,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            degraded_burn: 1.0,
            unhealthy_burn: 4.0,
            min_fairness: 0.5,
            fairness_min_admissions: 8,
            max_ingest_lag_s: 900.0,
            unhealthy_verify_failure_rate: 0.5,
            max_abandoned_files: 0,
        }
    }
}

/// One destination facility's ingest signals, as fed to [`evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct FacilityStatus {
    /// Facility name (e.g. `"frontier-orion"`).
    pub facility: String,
    /// Seconds between shipment completion at the source and the latest
    /// ingest acknowledgement at this facility.
    pub ingest_lag_s: f64,
    /// Artifacts that verified clean.
    pub verified: u64,
    /// Verification failures (missing / corrupt / unexpected artifacts).
    pub verify_failures: u64,
}

impl FacilityStatus {
    /// Fraction of verification outcomes that failed (0 when idle).
    pub fn failure_rate(&self) -> f64 {
        let total = self.verified + self.verify_failures;
        if total == 0 {
            0.0
        } else {
            self.verify_failures as f64 / total as f64
        }
    }

    /// JSON form.
    pub fn to_json(&self) -> Value {
        json!({
            "facility": self.facility,
            "ingest_lag_s": self.ingest_lag_s,
            "verified": self.verified,
            "verify_failures": self.verify_failures,
        })
    }

    /// Parse the JSON form.
    pub fn from_json(v: &Value) -> Result<FacilityStatus, String> {
        Ok(FacilityStatus {
            facility: v["facility"]
                .as_str()
                .ok_or("facility status: missing 'facility'")?
                .to_string(),
            ingest_lag_s: v["ingest_lag_s"].as_f64().unwrap_or(0.0),
            verified: v["verified"].as_u64().unwrap_or(0),
            verify_failures: v["verify_failures"].as_u64().unwrap_or(0),
        })
    }
}

/// One health verdict with the signals that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// The verdict.
    pub state: HealthState,
    /// Ops-clock timestamp (sim seconds) of the evaluation.
    pub at_s: f64,
    /// Windows rolled so far.
    pub windows: u64,
    /// Jain's fairness index, if any admissions were recorded.
    pub fairness: Option<f64>,
    /// Per `(slo, stage)` burn statuses at evaluation time.
    pub slos: Vec<SloStatus>,
    /// Alerts currently in the firing state.
    pub alerts_active: usize,
    /// Whether the service is still re-running work recovered from the
    /// journal after a restart.
    pub recovering: bool,
    /// Files the download stage abandoned after exhausting their retry
    /// budget (the `files_abandoned{stage="download"}` counter).
    pub downloads_abandoned: u64,
    /// Per-destination-facility ingest signals the verdict folded in.
    pub facilities: Vec<FacilityStatus>,
}

impl HealthReport {
    /// JSON form (`EOML_HEALTH` export and `health` ops-log events).
    pub fn to_json(&self) -> Value {
        json!({
            "state": self.state.label(),
            "reasons": self.state.reasons().to_vec(),
            "at_s": self.at_s,
            "windows": self.windows,
            "fairness": match self.fairness {
                Some(f) => json!(f),
                None => Value::Null,
            },
            "slos": self.slos.iter().map(|s| s.to_json()).collect::<Vec<_>>(),
            "alerts_active": self.alerts_active as u64,
            "recovering": self.recovering,
            "downloads_abandoned": self.downloads_abandoned,
            "facilities": self.facilities.iter().map(|f| f.to_json()).collect::<Vec<_>>(),
        })
    }

    /// Parse the JSON form.
    pub fn from_json(v: &Value) -> Result<HealthReport, String> {
        let reasons: Vec<String> = v["reasons"]
            .as_array()
            .map(|a| {
                a.iter()
                    .filter_map(|r| r.as_str().map(|s| s.to_string()))
                    .collect()
            })
            .unwrap_or_default();
        let state = match v["state"].as_str() {
            Some("healthy") => HealthState::Healthy,
            Some("degraded") => HealthState::Degraded { reasons },
            Some("unhealthy") => HealthState::Unhealthy { reasons },
            other => return Err(format!("unknown health state {other:?}")),
        };
        let slos = match v["slos"].as_array() {
            Some(a) => a
                .iter()
                .map(SloStatus::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        // Reports logged before the facility dimension existed parse to
        // an empty facility list.
        let facilities = match v["facilities"].as_array() {
            Some(a) => a
                .iter()
                .map(FacilityStatus::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        Ok(HealthReport {
            state,
            at_s: v["at_s"].as_f64().unwrap_or(0.0),
            windows: v["windows"].as_u64().unwrap_or(0),
            fairness: v["fairness"].as_f64(),
            slos,
            alerts_active: v["alerts_active"].as_u64().unwrap_or(0) as usize,
            recovering: v["recovering"].as_bool().unwrap_or(false),
            // Reports logged before the abandonment signal existed parse
            // to zero.
            downloads_abandoned: v["downloads_abandoned"].as_u64().unwrap_or(0),
            facilities,
        })
    }
}

/// Evaluate the current signals into a report. Pure: same inputs, same
/// verdict — replaying logged signals reproduces the live report.
#[allow(clippy::too_many_arguments)] // one positional slot per signal, deliberately
pub fn evaluate(
    policy: &HealthPolicy,
    at_s: f64,
    windows: u64,
    fairness: Option<f64>,
    total_admissions: u64,
    slos: Vec<SloStatus>,
    alerts_active: usize,
    recovering: bool,
    downloads_abandoned: u64,
    facilities: Vec<FacilityStatus>,
) -> HealthReport {
    let mut degraded: Vec<String> = Vec::new();
    let mut unhealthy: Vec<String> = Vec::new();

    for s in &slos {
        if s.burn >= policy.unhealthy_burn {
            unhealthy.push(format!(
                "slo {} burn {:.2} >= {:.2} for {}",
                s.slo, s.burn, policy.unhealthy_burn, s.stage
            ));
        } else if s.burn >= policy.degraded_burn {
            degraded.push(format!(
                "slo {} burn {:.2} >= {:.2} for {}",
                s.slo, s.burn, policy.degraded_burn, s.stage
            ));
        }
    }
    if let Some(j) = fairness {
        if total_admissions >= policy.fairness_min_admissions && j < policy.min_fairness {
            degraded.push(format!(
                "fairness {:.3} below floor {:.3}",
                j, policy.min_fairness
            ));
        }
    }
    if alerts_active > 0 {
        degraded.push(format!("{alerts_active} alert(s) firing"));
    }
    if recovering {
        degraded.push("recovery in progress".to_string());
    }
    if downloads_abandoned > policy.max_abandoned_files {
        degraded.push(format!(
            "{downloads_abandoned} download(s) abandoned after retry exhaustion (policy allows {})",
            policy.max_abandoned_files
        ));
    }
    // A silent or failing destination must surface here, not vanish past
    // the shipment stage: any verification failure degrades, a failure
    // rate at/over the policy threshold is unhealthy, and ingest lag
    // beyond the bound degrades even with clean verifications.
    for f in &facilities {
        let rate = f.failure_rate();
        if f.verify_failures > 0 && rate >= policy.unhealthy_verify_failure_rate {
            unhealthy.push(format!(
                "facility {} verify-failure rate {:.2} >= {:.2} ({} failure(s))",
                f.facility, rate, policy.unhealthy_verify_failure_rate, f.verify_failures
            ));
        } else if f.verify_failures > 0 {
            degraded.push(format!(
                "facility {} has {} verification failure(s)",
                f.facility, f.verify_failures
            ));
        }
        if f.ingest_lag_s > policy.max_ingest_lag_s {
            degraded.push(format!(
                "facility {} ingest lag {:.1}s exceeds {:.1}s",
                f.facility, f.ingest_lag_s, policy.max_ingest_lag_s
            ));
        }
    }

    let state = if !unhealthy.is_empty() {
        unhealthy.extend(degraded);
        HealthState::Unhealthy { reasons: unhealthy }
    } else if !degraded.is_empty() {
        HealthState::Degraded { reasons: degraded }
    } else {
        HealthState::Healthy
    };
    HealthReport {
        state,
        at_s,
        windows,
        fairness,
        slos,
        alerts_active,
        recovering,
        downloads_abandoned,
        facilities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo(burn: f64) -> SloStatus {
        SloStatus {
            slo: "throughput".to_string(),
            stage: "tenant:a".to_string(),
            windows: 4,
            bad: 2,
            burn,
        }
    }

    fn facility(lag: f64, verified: u64, failures: u64) -> FacilityStatus {
        FacilityStatus {
            facility: "frontier-orion".to_string(),
            ingest_lag_s: lag,
            verified,
            verify_failures: failures,
        }
    }

    #[test]
    fn worst_signal_wins_and_reasons_accumulate() {
        let p = HealthPolicy::default();
        let healthy = evaluate(
            &p,
            10.0,
            3,
            Some(0.99),
            20,
            vec![slo(0.2)],
            0,
            false,
            0,
            Vec::new(),
        );
        assert_eq!(healthy.state, HealthState::Healthy);

        let degraded = evaluate(
            &p,
            10.0,
            3,
            Some(0.3),
            20,
            vec![slo(1.5)],
            1,
            true,
            0,
            Vec::new(),
        );
        match &degraded.state {
            HealthState::Degraded { reasons } => assert_eq!(reasons.len(), 4),
            other => panic!("expected degraded, got {other:?}"),
        }

        let unhealthy = evaluate(
            &p,
            10.0,
            3,
            Some(0.99),
            20,
            vec![slo(5.0)],
            1,
            false,
            0,
            Vec::new(),
        );
        match &unhealthy.state {
            HealthState::Unhealthy { reasons } => {
                assert!(reasons[0].contains("burn 5.00"));
                assert_eq!(reasons.len(), 2); // burn + firing alert
            }
            other => panic!("expected unhealthy, got {other:?}"),
        }
    }

    #[test]
    fn fairness_is_not_judged_before_enough_admissions() {
        let p = HealthPolicy::default();
        let early = evaluate(
            &p,
            0.0,
            0,
            Some(0.1),
            2,
            Vec::new(),
            0,
            false,
            0,
            Vec::new(),
        );
        assert_eq!(early.state, HealthState::Healthy);
        let later = evaluate(
            &p,
            0.0,
            0,
            Some(0.1),
            100,
            Vec::new(),
            0,
            false,
            0,
            Vec::new(),
        );
        assert_eq!(later.state.label(), "degraded");
    }

    #[test]
    fn abandoned_downloads_degrade_past_the_policy_allowance() {
        let p = HealthPolicy::default();
        let ok = evaluate(&p, 0.0, 0, None, 0, Vec::new(), 0, false, 0, Vec::new());
        assert_eq!(ok.state, HealthState::Healthy);
        // Default policy tolerates zero abandonments: a single file given up
        // on after retry exhaustion is lost science, and must be visible.
        let bad = evaluate(&p, 0.0, 0, None, 0, Vec::new(), 0, false, 2, Vec::new());
        assert_eq!(bad.state.label(), "degraded");
        assert!(bad.state.reasons()[0].contains("abandoned"));
        assert_eq!(bad.downloads_abandoned, 2);
        // A lenient policy can grant a small abandonment budget.
        let lenient = HealthPolicy {
            max_abandoned_files: 5,
            ..HealthPolicy::default()
        };
        let tolerated = evaluate(
            &lenient,
            0.0,
            0,
            None,
            0,
            Vec::new(),
            0,
            false,
            5,
            Vec::new(),
        );
        assert_eq!(tolerated.state, HealthState::Healthy);
    }

    #[test]
    fn facility_verdicts_fold_into_the_overall_state() {
        let p = HealthPolicy::default();
        // A clean, prompt destination stays healthy.
        let ok = evaluate(
            &p,
            0.0,
            0,
            None,
            0,
            Vec::new(),
            0,
            false,
            0,
            vec![facility(30.0, 10, 0)],
        );
        assert_eq!(ok.state, HealthState::Healthy);
        // One verification failure out of many degrades — loudly, with
        // the facility named.
        let degraded = evaluate(
            &p,
            0.0,
            0,
            None,
            0,
            Vec::new(),
            0,
            false,
            0,
            vec![facility(30.0, 10, 1)],
        );
        assert_eq!(degraded.state.label(), "degraded");
        assert!(degraded.state.reasons()[0].contains("frontier-orion"));
        // Majority-failing verification is unhealthy.
        let unhealthy = evaluate(
            &p,
            0.0,
            0,
            None,
            0,
            Vec::new(),
            0,
            false,
            0,
            vec![facility(30.0, 1, 3)],
        );
        assert_eq!(unhealthy.state.label(), "unhealthy");
        // Stale ingest degrades even with clean verifications.
        let laggy = evaluate(
            &p,
            0.0,
            0,
            None,
            0,
            Vec::new(),
            0,
            false,
            0,
            vec![facility(2000.0, 10, 0)],
        );
        assert_eq!(laggy.state.label(), "degraded");
        assert!(laggy.state.reasons()[0].contains("ingest lag"));
        // An idle facility (no outcomes yet) carries no verdict.
        assert_eq!(facility(0.0, 0, 0).failure_rate(), 0.0);
    }

    #[test]
    fn reports_round_trip_through_json() {
        let p = HealthPolicy::default();
        for report in [
            evaluate(
                &p,
                7.5,
                4,
                Some(0.93),
                12,
                vec![slo(0.5)],
                0,
                false,
                0,
                Vec::new(),
            ),
            evaluate(&p, 7.5, 4, None, 0, vec![slo(2.0)], 2, true, 3, Vec::new()),
            evaluate(
                &p,
                7.5,
                4,
                Some(0.2),
                50,
                vec![slo(9.0)],
                0,
                false,
                0,
                vec![facility(12.0, 8, 2)],
            ),
        ] {
            let back = HealthReport::from_json(&report.to_json()).unwrap();
            assert_eq!(back, report);
        }
        // Pre-facility reports (no "facilities" key) still parse.
        let legacy = json!({ "state": "healthy", "at_s": 1.0 });
        let parsed = HealthReport::from_json(&legacy).unwrap();
        assert!(parsed.facilities.is_empty());
    }
}

//! Scheduler audit ring and live fairness index.
//!
//! Every WRR admission and budget lease the service performs is recorded
//! as an [`AuditRecord`]. The ring itself is bounded (recent forensics);
//! the per-tenant tallies are cumulative and drive a live Jain's
//! fairness index over *weighted* admissions: with `x_i = admissions_i /
//! weight_i`, `J = (Σx)² / (n · Σx²)` — 1.0 when every tenant gets
//! service exactly proportional to its weight, approaching `1/n` when a
//! single tenant monopolises the scheduler.

use std::collections::{BTreeMap, VecDeque};

use serde_json::{json, Value};

/// One audited scheduler action.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditRecord {
    /// The WRR picker admitted one campaign-day quantum for a tenant.
    Admission {
        /// Tenant id.
        tenant: String,
        /// Campaign id.
        campaign: String,
        /// Day index within the campaign (0-based).
        day_index: usize,
        /// Shard the admission came from.
        shard: usize,
        /// Workers requested from the budget pool.
        workers: usize,
        /// The tenant's WRR weight at admission time.
        weight: u64,
    },
    /// A budget lease was granted after `wait_s` of queueing.
    LeaseAcquired {
        /// Tenant id.
        tenant: String,
        /// Campaign id.
        campaign: String,
        /// Workers leased.
        workers: usize,
        /// Wall-clock seconds spent waiting for capacity.
        wait_s: f64,
        /// Pool workers in use after the grant.
        in_use: usize,
    },
    /// A budget lease was returned to the pool.
    LeaseReleased {
        /// Tenant id.
        tenant: String,
        /// Campaign id.
        campaign: String,
        /// Workers returned.
        workers: usize,
    },
}

impl AuditRecord {
    /// The tenant this record concerns.
    pub fn tenant(&self) -> &str {
        match self {
            AuditRecord::Admission { tenant, .. }
            | AuditRecord::LeaseAcquired { tenant, .. }
            | AuditRecord::LeaseReleased { tenant, .. } => tenant,
        }
    }

    /// Durable JSON form (this is also the ops-log event payload).
    pub fn to_json(&self) -> Value {
        match self {
            AuditRecord::Admission {
                tenant,
                campaign,
                day_index,
                shard,
                workers,
                weight,
            } => json!({
                "kind": "admission",
                "tenant": tenant,
                "campaign": campaign,
                "day_index": *day_index as u64,
                "shard": *shard as u64,
                "workers": *workers as u64,
                "weight": *weight,
            }),
            AuditRecord::LeaseAcquired {
                tenant,
                campaign,
                workers,
                wait_s,
                in_use,
            } => json!({
                "kind": "lease_acquired",
                "tenant": tenant,
                "campaign": campaign,
                "workers": *workers as u64,
                "wait_s": *wait_s,
                "in_use": *in_use as u64,
            }),
            AuditRecord::LeaseReleased {
                tenant,
                campaign,
                workers,
            } => json!({
                "kind": "lease_released",
                "tenant": tenant,
                "campaign": campaign,
                "workers": *workers as u64,
            }),
        }
    }

    /// Parse the durable form.
    pub fn from_json(v: &Value) -> Result<AuditRecord, String> {
        let tenant = v["tenant"]
            .as_str()
            .ok_or("audit record missing tenant")?
            .to_string();
        let campaign = v["campaign"]
            .as_str()
            .ok_or("audit record missing campaign")?
            .to_string();
        match v["kind"].as_str() {
            Some("admission") => Ok(AuditRecord::Admission {
                tenant,
                campaign,
                day_index: v["day_index"].as_u64().unwrap_or(0) as usize,
                shard: v["shard"].as_u64().unwrap_or(0) as usize,
                workers: v["workers"].as_u64().unwrap_or(0) as usize,
                weight: v["weight"].as_u64().unwrap_or(1),
            }),
            Some("lease_acquired") => Ok(AuditRecord::LeaseAcquired {
                tenant,
                campaign,
                workers: v["workers"].as_u64().unwrap_or(0) as usize,
                wait_s: v["wait_s"].as_f64().unwrap_or(0.0),
                in_use: v["in_use"].as_u64().unwrap_or(0) as usize,
            }),
            Some("lease_released") => Ok(AuditRecord::LeaseReleased {
                tenant,
                campaign,
                workers: v["workers"].as_u64().unwrap_or(0) as usize,
            }),
            other => Err(format!("unknown audit record kind {other:?}")),
        }
    }
}

/// Bounded ring of recent scheduler actions plus cumulative per-tenant
/// admission tallies for the fairness index.
#[derive(Debug)]
pub struct AuditRing {
    cap: usize,
    ring: VecDeque<AuditRecord>,
    /// Per tenant: (admissions, last observed weight).
    tallies: BTreeMap<String, (u64, u64)>,
}

impl AuditRing {
    /// Ring keeping the most recent `cap` records.
    pub fn new(cap: usize) -> AuditRing {
        AuditRing {
            cap: cap.max(1),
            ring: VecDeque::new(),
            tallies: BTreeMap::new(),
        }
    }

    /// Record one action; admissions update the fairness tallies even
    /// after the record itself ages out of the ring.
    pub fn record(&mut self, record: AuditRecord) {
        if let AuditRecord::Admission { tenant, weight, .. } = &record {
            let entry = self.tallies.entry(tenant.clone()).or_insert((0, *weight));
            entry.0 += 1;
            entry.1 = (*weight).max(1);
        }
        self.ring.push_back(record);
        while self.ring.len() > self.cap {
            self.ring.pop_front();
        }
    }

    /// Recent records, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &AuditRecord> {
        self.ring.iter()
    }

    /// Cumulative admissions per tenant (tenant → (admissions, weight)).
    pub fn tallies(&self) -> &BTreeMap<String, (u64, u64)> {
        &self.tallies
    }

    /// Total admissions recorded across all tenants.
    pub fn total_admissions(&self) -> u64 {
        self.tallies.values().map(|(n, _)| *n).sum()
    }

    /// Jain's fairness index over weight-normalised admissions, or `None`
    /// until at least one tenant has been admitted.
    pub fn fairness_jain(&self) -> Option<f64> {
        let xs: Vec<f64> = self
            .tallies
            .values()
            .filter(|(n, _)| *n > 0)
            .map(|(n, w)| *n as f64 / (*w).max(1) as f64)
            .collect();
        if xs.is_empty() {
            return None;
        }
        let sum: f64 = xs.iter().sum();
        let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
        if sum_sq <= 0.0 {
            return None;
        }
        Some((sum * sum) / (xs.len() as f64 * sum_sq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admission(tenant: &str, weight: u64) -> AuditRecord {
        AuditRecord::Admission {
            tenant: tenant.to_string(),
            campaign: format!("{tenant}-c"),
            day_index: 0,
            shard: 0,
            workers: 4,
            weight,
        }
    }

    #[test]
    fn jain_index_is_one_for_weight_proportional_service() {
        let mut ring = AuditRing::new(8);
        assert_eq!(ring.fairness_jain(), None);
        // Weight 1 gets 2 admissions, weight 2 gets 4: x = 2 for both.
        for _ in 0..2 {
            ring.record(admission("a", 1));
        }
        for _ in 0..4 {
            ring.record(admission("b", 2));
        }
        let j = ring.fairness_jain().unwrap();
        assert!((j - 1.0).abs() < 1e-9, "J = {j}");
        assert_eq!(ring.total_admissions(), 6);
    }

    #[test]
    fn monopoly_drags_the_index_toward_one_over_n() {
        let mut ring = AuditRing::new(64);
        ring.record(admission("starved", 1));
        for _ in 0..50 {
            ring.record(admission("hog", 1));
        }
        let j = ring.fairness_jain().unwrap();
        assert!(j < 0.6, "J = {j}");
        // Tallies survive the ring aging records out (cap 64 > 51 here,
        // so shrink the cap instead to prove it).
        let mut tiny = AuditRing::new(2);
        for _ in 0..10 {
            tiny.record(admission("a", 1));
        }
        assert_eq!(tiny.recent().count(), 2);
        assert_eq!(tiny.tallies()["a"].0, 10);
    }

    #[test]
    fn records_round_trip_through_json() {
        let records = vec![
            admission("t-1", 3),
            AuditRecord::LeaseAcquired {
                tenant: "t-1".to_string(),
                campaign: "c".to_string(),
                workers: 8,
                wait_s: 0.25,
                in_use: 12,
            },
            AuditRecord::LeaseReleased {
                tenant: "t-1".to_string(),
                campaign: "c".to_string(),
                workers: 8,
            },
        ];
        for r in records {
            assert_eq!(AuditRecord::from_json(&r.to_json()).unwrap(), r);
            assert_eq!(r.tenant(), "t-1");
        }
        assert!(AuditRecord::from_json(&json!({"kind": "bogus"})).is_err());
    }
}

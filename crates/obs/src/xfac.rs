//! Cross-facility trace stitching.
//!
//! Each facility runs its own [`crate::Obs`] hub; a shipped granule's
//! spans therefore live in two span stores — the source's pipeline spans
//! (download → … → shipment) and the destination's ingest/verify spans.
//! [`XfacAnalysis::stitch`] joins the stores on **trace id** (the granule
//! display form both sides stamp) into one timeline per granule, tagging
//! every span with a `facility` attribute so exports can tell the lanes
//! apart.
//!
//! The stitched critical path ([`crate::analysis::GranuleTrace`])
//! attributes the WAN hop explicitly: [`XfacAnalysis::wan_breakdown`]
//! splits it into *queue* (waiting for shipment or ingest to start),
//! *wire* (`shipment`-stage service — bytes in flight), and *verify*
//! (`ingest`-stage service at the destination).
//!
//! [`XfacAnalysis::chrome_trace`] renders the stitched store with one
//! Chrome/Perfetto **process lane per facility** (`ph:"M"`
//! `process_name` metadata + per-facility pids), so both sides of the
//! WAN sit in a single trace file.

use std::collections::BTreeMap;

use crate::analysis::{SegmentKind, TraceAnalysis};
use crate::export::chrome;
use crate::span::SpanRecord;
use crate::Obs;

/// The facility attribute key stamped onto every stitched span.
pub const FACILITY_ATTR: &str = "facility";

/// One facility's span store, labeled.
#[derive(Debug, Clone)]
pub struct FacilitySpans {
    /// Facility name (becomes the Chrome process lane name).
    pub facility: String,
    /// The facility's spans (typically `obs.spans()`).
    pub spans: Vec<SpanRecord>,
}

impl FacilitySpans {
    /// Capture a hub's current spans under a facility name.
    pub fn capture(facility: &str, obs: &Obs) -> FacilitySpans {
        FacilitySpans {
            facility: facility.to_string(),
            spans: obs.spans(),
        }
    }
}

/// Stamp `facility` onto every span that does not already carry the
/// attribute (spans recorded through [`crate::ingest`]-style paths often
/// self-tag; everything else inherits the lane's name).
pub fn tag_facility(mut spans: Vec<SpanRecord>, facility: &str) -> Vec<SpanRecord> {
    for s in &mut spans {
        if s.attr(FACILITY_ATTR).is_none() {
            s.attrs
                .push((FACILITY_ATTR.to_string(), facility.to_string()));
        }
    }
    spans
}

/// The WAN hop of one granule's stitched critical path, attributed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WanBreakdown {
    /// Critical-path seconds waiting for shipment or ingest to start.
    pub queue_s: f64,
    /// Critical-path seconds of `shipment`-stage service (wire time).
    pub wire_s: f64,
    /// Critical-path seconds of `ingest`-stage service (destination
    /// verification).
    pub verify_s: f64,
}

impl WanBreakdown {
    /// Total WAN-attributed seconds on the critical path.
    pub fn total_s(&self) -> f64 {
        self.queue_s + self.wire_s + self.verify_s
    }
}

/// Source and destination span stores joined on trace id.
#[derive(Debug)]
pub struct XfacAnalysis {
    facilities: Vec<String>,
    spans: Vec<SpanRecord>,
    analysis: TraceAnalysis,
}

impl XfacAnalysis {
    /// Stitch facility span stores into one cross-facility timeline.
    /// Every span is facility-tagged; traces sharing an id across lanes
    /// merge into a single [`crate::analysis::GranuleTrace`].
    pub fn stitch(lanes: &[FacilitySpans]) -> XfacAnalysis {
        let mut spans = Vec::new();
        let mut facilities = Vec::new();
        for lane in lanes {
            facilities.push(lane.facility.clone());
            spans.extend(tag_facility(lane.spans.clone(), &lane.facility));
        }
        let analysis = TraceAnalysis::from_spans(&spans);
        XfacAnalysis {
            facilities,
            spans,
            analysis,
        }
    }

    /// Facility lane names, in stitch order.
    pub fn facilities(&self) -> &[String] {
        &self.facilities
    }

    /// The merged, facility-tagged span store.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Per-granule analysis over the stitched store.
    pub fn analysis(&self) -> &TraceAnalysis {
        &self.analysis
    }

    /// Trace ids whose spans appear in **more than one** facility — the
    /// granules that actually crossed the WAN.
    pub fn stitched_trace_ids(&self) -> Vec<&str> {
        let mut seen: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for s in &self.spans {
            let (Some(id), Some(fac)) = (s.trace_id.as_deref(), s.attr(FACILITY_ATTR)) else {
                continue;
            };
            let facs = seen.entry(id).or_default();
            if !facs.contains(&fac) {
                facs.push(fac);
            }
        }
        seen.into_iter()
            .filter(|(_, facs)| facs.len() > 1)
            .map(|(id, _)| id)
            .collect()
    }

    /// Trace ids that were **shipped but never ingested**: a
    /// `shipment`-stage span exists but the trace's spans sit in a single
    /// facility — the destination never recorded the granule. These are
    /// exactly the granules a WAN audit must flag; they still have a
    /// [`XfacAnalysis::wan_breakdown`] (wire + source-side queue, zero
    /// verify) rather than silently vanishing from the stitched view.
    pub fn orphaned_shipments(&self) -> Vec<&str> {
        let mut facs: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut shipped: BTreeMap<&str, bool> = BTreeMap::new();
        for s in &self.spans {
            let Some(id) = s.trace_id.as_deref() else {
                continue;
            };
            if s.stage == "shipment" {
                shipped.insert(id, true);
            }
            if let Some(fac) = s.attr(FACILITY_ATTR) {
                let lanes = facs.entry(id).or_default();
                if !lanes.contains(&fac) {
                    lanes.push(fac);
                }
            }
        }
        shipped
            .into_iter()
            .filter(|(id, _)| facs.get(id).map(Vec::len).unwrap_or(0) <= 1)
            .map(|(id, _)| id)
            .collect()
    }

    /// WAN attribution for one granule's stitched critical path: queue
    /// (waiting on `shipment`/`ingest`), wire (`shipment` service),
    /// verify (`ingest` service). `None` when the trace is unknown.
    pub fn wan_breakdown(&self, trace_id: &str) -> Option<WanBreakdown> {
        let trace = self.analysis.trace(trace_id)?;
        let mut out = WanBreakdown::default();
        for seg in trace.critical_path() {
            match (seg.kind, seg.stage.as_str()) {
                (SegmentKind::Service, "shipment") => out.wire_s += seg.seconds(),
                (SegmentKind::Service, "ingest") => out.verify_s += seg.seconds(),
                (SegmentKind::Queue, "shipment") | (SegmentKind::Queue, "ingest") => {
                    out.queue_s += seg.seconds()
                }
                _ => {}
            }
        }
        Some(out)
    }

    /// Render the stitched store as a single Chrome trace with one
    /// process lane per facility. Lanes are sorted (and deduplicated) by
    /// facility name before pid assignment, so the rendered document is
    /// byte-stable regardless of stitch order — CI artifact diffs of two
    /// stitched traces compare content, not capture order.
    pub fn chrome_trace(&self) -> String {
        let mut ordered: Vec<&str> = self.facilities.iter().map(String::as_str).collect();
        ordered.sort_unstable();
        ordered.dedup();
        let lanes: Vec<(&str, Vec<&SpanRecord>)> = ordered
            .into_iter()
            .map(|f| {
                (
                    f,
                    self.spans
                        .iter()
                        .filter(|s| s.attr(FACILITY_ATTR) == Some(f))
                        .collect(),
                )
            })
            .collect();
        chrome::render_processes(&lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceContext;
    use eoml_simtime::SimTime;

    fn span(obs: &Obs, stage: &str, name: &str, start: f64, end: f64, trace: &str) {
        obs.record_sim_span_traced(
            stage,
            name,
            SimTime::from_secs_f64(start),
            SimTime::from_secs_f64(end),
            Some(&TraceContext::new(trace)),
            &[],
        );
    }

    /// Source runs download→shipment, destination verifies after a gap.
    fn two_facility_fixture() -> XfacAnalysis {
        let src = Obs::new();
        span(&src, "download", "file", 0.0, 10.0, "g1");
        span(&src, "inference", "infer", 10.0, 20.0, "g1");
        span(&src, "shipment", "file", 22.0, 30.0, "g1");
        let dst = Obs::new();
        span(&dst, "ingest", "verify", 33.0, 35.0, "g1");
        XfacAnalysis::stitch(&[
            FacilitySpans {
                facility: "ace-defiant".into(),
                spans: src.spans(),
            },
            FacilitySpans {
                facility: "frontier-orion".into(),
                spans: dst.spans(),
            },
        ])
    }

    #[test]
    fn stitch_joins_facilities_on_trace_id() {
        let x = two_facility_fixture();
        assert_eq!(x.facilities(), ["ace-defiant", "frontier-orion"]);
        assert_eq!(x.stitched_trace_ids(), vec!["g1"]);
        let trace = x.analysis().trace("g1").unwrap();
        assert_eq!(trace.spans.len(), 4);
        // End-to-end now spans both facilities: 0 → 35.
        assert!((trace.e2e_seconds() - 35.0).abs() < 1e-9);
        // Every stitched span knows its facility.
        for s in x.spans() {
            assert!(s.attr(FACILITY_ATTR).is_some());
        }
    }

    #[test]
    fn wan_breakdown_attributes_queue_wire_and_verify() {
        let x = two_facility_fixture();
        let wan = x.wan_breakdown("g1").unwrap();
        assert!((wan.wire_s - 8.0).abs() < 1e-9, "shipment 22..30");
        assert!((wan.verify_s - 2.0).abs() < 1e-9, "ingest 33..35");
        // queue: 20..22 waiting on shipment + 30..33 waiting on ingest.
        assert!((wan.queue_s - 5.0).abs() < 1e-9);
        assert!((wan.total_s() - 15.0).abs() < 1e-9);
        assert!(x.wan_breakdown("nope").is_none());
    }

    #[test]
    fn shipped_but_never_ingested_granule_is_reported_as_orphan() {
        // g1 completes the WAN hop; g2 ships but the destination never
        // records an ingest span — a lost/failed transfer.
        let src = Obs::new();
        span(&src, "download", "file", 0.0, 10.0, "g1");
        span(&src, "shipment", "file", 12.0, 20.0, "g1");
        span(&src, "download", "file", 0.0, 11.0, "g2");
        span(&src, "shipment", "file", 13.0, 21.0, "g2");
        let dst = Obs::new();
        span(&dst, "ingest", "verify", 23.0, 25.0, "g1");
        let x = XfacAnalysis::stitch(&[
            FacilitySpans {
                facility: "ace-defiant".into(),
                spans: src.spans(),
            },
            FacilitySpans {
                facility: "frontier-orion".into(),
                spans: dst.spans(),
            },
        ]);
        // The orphan is reported, not dropped.
        assert_eq!(x.orphaned_shipments(), vec!["g2"]);
        assert_eq!(x.stitched_trace_ids(), vec!["g1"]);
        // And its WAN breakdown still attributes the source side: wire
        // 13..21, queue 11..13, verify necessarily zero.
        let wan = x.wan_breakdown("g2").expect("orphan keeps a breakdown");
        assert!((wan.wire_s - 8.0).abs() < 1e-9);
        assert!((wan.queue_s - 2.0).abs() < 1e-9);
        assert_eq!(wan.verify_s, 0.0);
        // A fully-stitched store reports no orphans.
        assert!(two_facility_fixture().orphaned_shipments().is_empty());
    }

    #[test]
    fn chrome_trace_is_byte_stable_across_stitch_order() {
        let src = Obs::new();
        span(&src, "download", "file", 0.0, 10.0, "g1");
        span(&src, "shipment", "file", 12.0, 20.0, "g1");
        let dst = Obs::new();
        span(&dst, "ingest", "verify", 23.0, 25.0, "g1");
        let fwd = XfacAnalysis::stitch(&[
            FacilitySpans {
                facility: "ace-defiant".into(),
                spans: src.spans(),
            },
            FacilitySpans {
                facility: "frontier-orion".into(),
                spans: dst.spans(),
            },
        ]);
        let rev = XfacAnalysis::stitch(&[
            FacilitySpans {
                facility: "frontier-orion".into(),
                spans: dst.spans(),
            },
            FacilitySpans {
                facility: "ace-defiant".into(),
                spans: src.spans(),
            },
        ]);
        // Same document bytes either way: lanes sort by facility name
        // before pid assignment.
        assert_eq!(fwd.chrome_trace(), rev.chrome_trace());
        let v: serde_json::Value = serde_json::from_str(&rev.chrome_trace()).unwrap();
        let lane = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .find(|e| {
                e["ph"].as_str() == Some("M") && e["args"]["name"].as_str() == Some("ace-defiant")
            })
            .expect("lane metadata");
        assert_eq!(lane["pid"].as_f64(), Some(1.0), "alphabetical pid");
    }

    #[test]
    fn single_facility_traces_are_not_stitched() {
        let src = Obs::new();
        span(&src, "download", "file", 0.0, 1.0, "solo");
        let x = XfacAnalysis::stitch(&[FacilitySpans {
            facility: "ace-defiant".into(),
            spans: src.spans(),
        }]);
        assert!(x.stitched_trace_ids().is_empty());
        assert!(x.analysis().trace("solo").is_some(), "still analysable");
    }

    #[test]
    fn chrome_trace_renders_one_lane_per_facility() {
        let x = two_facility_fixture();
        let doc = x.chrome_trace();
        let v: serde_json::Value = serde_json::from_str(&doc).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        // Process-name metadata for both lanes.
        let lanes: Vec<(&str, f64)> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("M"))
            .map(|e| {
                (
                    e["args"]["name"].as_str().unwrap(),
                    e["pid"].as_f64().unwrap(),
                )
            })
            .collect();
        assert_eq!(lanes.len(), 2);
        assert!(lanes.contains(&("ace-defiant", 1.0)));
        assert!(lanes.contains(&("frontier-orion", 2.0)));
        // Span events land on their facility's pid, and the shipment and
        // ingest events share the granule trace id.
        let pid_of = |stage: &str| {
            events
                .iter()
                .find(|e| e["ph"].as_str() == Some("X") && e["cat"].as_str() == Some(stage))
                .map(|e| e["pid"].as_f64().unwrap())
                .unwrap()
        };
        assert_eq!(pid_of("shipment"), 1.0);
        assert_eq!(pid_of("ingest"), 2.0);
        for stage in ["shipment", "ingest"] {
            let ev = events
                .iter()
                .find(|e| e["cat"].as_str() == Some(stage))
                .unwrap();
            assert_eq!(ev["args"]["trace_id"].as_str(), Some("g1"));
        }
    }
}

//! `eoml-obs` — unified tracing, metrics, and export layer for the
//! multi-facility pipeline.
//!
//! The paper's whole evaluation is observability: Fig. 6 is per-stage
//! active-worker timelines, Fig. 7 is a component latency breakdown, and
//! §V-A calls for "telemetry tools for real-time workflow insights".
//! This crate is the substrate those reproductions (and every later perf
//! PR) report against:
//!
//! - **Spans** ([`SpanRecord`], [`SpanGuard`]) — hierarchical, labelled
//!   `(stage, name)`, carrying both sim-time and wall-clock bounds, and
//!   recorded through a lock-sharded collector so concurrent pools can
//!   trace without contending.
//! - **Metrics** ([`MetricsRegistry`]) — counters, gauges, and
//!   log-bucketed histograms (p50/p90/p99/max) keyed by `(name, stage)`.
//! - **Sinks** ([`EventSink`]) — live subscription to the event stream
//!   for progress snapshots and stage health, not just post-hoc dumps.
//! - **Exporters** — Chrome `trace_event` JSON (open in Perfetto or
//!   `chrome://tracing`), Prometheus text exposition, and JSON-lines.
//!
//! One [`Obs`] instance (usually behind an `Arc`) observes a whole
//! campaign; every pipeline crate takes an optional handle and records
//! into it. The legacy `eoml-core` `Telemetry` struct stays as a thin
//! adapter over this collector.
//!
//! ```
//! use eoml_obs::Obs;
//! use eoml_simtime::SimTime;
//!
//! let obs = Obs::new();
//! {
//!     let mut outer = obs.span("preprocess", "batch");
//!     outer.attr("granules", 4);
//!     let _inner = obs.span("preprocess", "tile_creation");
//! } // guards record on drop, innermost first
//! obs.record_sim_span(
//!     "download",
//!     "transfer",
//!     SimTime::ZERO,
//!     SimTime::from_secs_f64(12.5),
//! );
//! obs.metrics().counter_add("files", "download", 1);
//! let trace = obs.chrome_trace_json(); // paste into Perfetto
//! assert!(trace.contains("traceEvents"));
//! ```

#![warn(missing_docs)]

pub mod alert;
pub mod analysis;
pub mod archive;
pub mod baseline;
mod collector;
pub mod diff;
pub mod export;
pub mod metrics;
pub mod ops;
pub mod profile;
pub mod report;
pub mod resource;
pub mod sink;
pub mod span;
pub mod table;
pub mod trace;
pub mod xfac;

pub use alert::{Alert, AlertRule, AlertTransition, AlertTransitionKind, ProgressSink};
pub use analysis::{
    GranuleTrace, PathSegment, SegmentKind, StageAttribution, StageTimeline, Straggler,
    StragglerConfig, TraceAnalysis,
};
pub use archive::{config_digest, RunArchive, RunMeta, ARCHIVE_SCHEMA_VERSION};
pub use baseline::{
    Baseline, BaselineStore, CellDelta, RunComparison, TableVerdict, Tolerance, Verdict,
};
pub use diff::{
    diff_archives, flame_diff, AllocDelta, AttributionEntry, AttributionReport, CompositionRow,
    HeadlineDelta, SelfTimeDelta, DEFAULT_DIFF_TOLERANCE,
};
pub use metrics::{
    stage_matches_prefix, LogHistogram, MergeError, MetricKey, MetricsRegistry, MetricsSnapshot,
};
pub use ops::audit::{AuditRecord, AuditRing};
pub use ops::health::{FacilityStatus, HealthPolicy, HealthReport, HealthState};
pub use ops::oplog::{read_all as read_ops_log, replay_final_health, OpsEvent, OpsLog};
pub use ops::slo::{SloKind, SloSpec, SloStatus, SloTracker, SloWindowResult};
pub use ops::window::{WindowDelta, WindowSpec, WindowedMetrics};
pub use ops::{OpsConfig, OpsPlane};
pub use profile::{parse_folded, HotPathEntry, SpanProfile};
pub use report::ObsReport;
pub use resource::{AllocSnapshot, CountingAlloc, ResourceGuard, ResourceReport};
pub use sink::{EventSink, MemorySink, ObsEvent, StageHealth};
pub use span::{SpanGuard, SpanRecord};
pub use table::{Cell, Table};
pub use trace::TraceContext;
pub use xfac::{tag_facility, FacilitySpans, WanBreakdown, XfacAnalysis, FACILITY_ATTR};

use collector::Collector;
use eoml_simtime::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process-wide dense thread ids (Chrome-trace `tid`s): the first thread
/// that records gets 0, the next 1, and so on.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Stack of open spans on this thread: `(obs identity, span id)`.
    /// Tagging with the Obs pointer keeps two instances on one thread
    /// from cross-linking parents.
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// One subscribed sink plus its liveness flag: a sink that panics is
/// disabled in place rather than removed, so slot indices stay stable.
struct SinkSlot {
    sink: Box<dyn EventSink>,
    dead: bool,
}

/// The observability hub: span collector + metrics registry + sink list.
///
/// Thread-safe; shared as `Arc<Obs>` across the pipeline. All recording
/// paths are cheap (an atomic id, one sharded lock push); exporting
/// ([`Obs::chrome_trace_json`], [`Obs::prometheus_text`]) is the slow
/// path and snapshots under the locks.
pub struct Obs {
    epoch: Instant,
    next_span_id: AtomicU64,
    collector: Collector,
    metrics: MetricsRegistry,
    sinks: Mutex<Vec<SinkSlot>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("spans", &self.collector.len())
            .finish_non_exhaustive()
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::new()
    }
}

impl Obs {
    /// Fresh hub; the wall-clock epoch (timestamp zero) is now.
    pub fn new() -> Obs {
        Obs {
            epoch: Instant::now(),
            next_span_id: AtomicU64::new(1),
            collector: Collector::new(),
            metrics: MetricsRegistry::default(),
            sinks: Mutex::new(Vec::new()),
        }
    }

    /// Convenience: a fresh hub already wrapped for sharing.
    pub fn shared() -> Arc<Obs> {
        Arc::new(Obs::new())
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn obs_key(&self) -> usize {
        self as *const Obs as usize
    }

    fn alloc_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    fn current_parent(&self) -> Option<u64> {
        let key = self.obs_key();
        SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|&&(k, _)| k == key)
                .map(|&(_, id)| id)
        })
    }

    /// Open a wall-clock span; it records when the returned guard drops.
    /// The innermost guard open on this thread becomes the parent.
    pub fn span(&self, stage: &str, name: &str) -> SpanGuard<'_> {
        let id = self.alloc_id();
        let parent = self.current_parent();
        SPAN_STACK.with(|s| s.borrow_mut().push((self.obs_key(), id)));
        SpanGuard {
            obs: self,
            id,
            parent,
            stage: stage.to_string(),
            name: name.to_string(),
            wall_start_ns: self.now_ns(),
            sim_start: None,
            sim_end: None,
            trace_id: None,
            attrs: Vec::new(),
        }
    }

    pub(crate) fn finish_guard(&self, guard: &mut SpanGuard<'_>) {
        let key = self.obs_key();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(k, id)| k == key && id == guard.id)
            {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: guard.id,
            parent: guard.parent,
            stage: std::mem::take(&mut guard.stage),
            name: std::mem::take(&mut guard.name),
            tid: current_tid(),
            sim_start: guard.sim_start,
            sim_end: guard.sim_end,
            wall_start_ns: guard.wall_start_ns,
            wall_end_ns: self.now_ns(),
            trace_id: guard.trace_id.take(),
            attrs: std::mem::take(&mut guard.attrs),
        };
        self.commit(record);
    }

    /// Record a span whose interval is known in simulation time (the
    /// virtual-time campaigns). Wall-clock bounds collapse to "now".
    /// Returns the span id.
    pub fn record_sim_span(&self, stage: &str, name: &str, start: SimTime, end: SimTime) -> u64 {
        self.record_sim_span_with(stage, name, start, end, &[])
    }

    /// [`Obs::record_sim_span`] for callers that track virtual time as
    /// plain f64 seconds (the flow runner's clock).
    pub fn record_sim_span_secs(&self, stage: &str, name: &str, start_s: f64, end_s: f64) -> u64 {
        self.record_sim_span(
            stage,
            name,
            SimTime::from_secs_f64(start_s.max(0.0)),
            SimTime::from_secs_f64(end_s.max(0.0)),
        )
    }

    /// [`Obs::record_sim_span`] with attributes.
    pub fn record_sim_span_with(
        &self,
        stage: &str,
        name: &str,
        start: SimTime,
        end: SimTime,
        attrs: &[(&str, &str)],
    ) -> u64 {
        self.record_sim_span_traced(stage, name, start, end, None, attrs)
    }

    /// [`Obs::record_sim_span_with`] tagged with the pipeline item
    /// (granule) the work belonged to. The per-granule trace analysis
    /// ([`analysis::TraceAnalysis`]) groups spans by this id.
    pub fn record_sim_span_traced(
        &self,
        stage: &str,
        name: &str,
        start: SimTime,
        end: SimTime,
        trace: Option<&TraceContext>,
        attrs: &[(&str, &str)],
    ) -> u64 {
        let id = self.alloc_id();
        let now = self.now_ns();
        let record = SpanRecord {
            id,
            parent: self.current_parent(),
            stage: stage.to_string(),
            name: name.to_string(),
            tid: current_tid(),
            sim_start: Some(start),
            sim_end: Some(end),
            wall_start_ns: now,
            wall_end_ns: now,
            trace_id: trace.map(|t| t.id().to_string()),
            attrs: attrs
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        };
        self.commit(record);
        id
    }

    /// [`Obs::record_sim_span_traced`] for f64-seconds virtual clocks
    /// (the flow runner).
    pub fn record_sim_span_traced_secs(
        &self,
        stage: &str,
        name: &str,
        start_s: f64,
        end_s: f64,
        trace: Option<&TraceContext>,
    ) -> u64 {
        self.record_sim_span_traced(
            stage,
            name,
            SimTime::from_secs_f64(start_s.max(0.0)),
            SimTime::from_secs_f64(end_s.max(0.0)),
            trace,
            &[],
        )
    }

    /// Every span lands here: collector push, duration histogram, stage
    /// accounting, sink fan-out.
    fn commit(&self, record: SpanRecord) {
        self.metrics
            .observe(&record.name, &record.stage, record.duration_seconds());
        self.metrics.counter_add("spans_closed", &record.stage, 1);
        self.collector.push(record.clone());
        self.emit(&ObsEvent::SpanClosed(record));
    }

    /// Increment a counter (also fans out to sinks).
    pub fn counter_add(&self, name: &str, stage: &str, delta: u64) {
        let total = self.metrics.counter_add(name, stage, delta);
        self.emit(&ObsEvent::Counter {
            name: name.to_string(),
            stage: stage.to_string(),
            delta,
            total,
        });
    }

    /// Set a gauge (also fans out to sinks).
    pub fn gauge_set(&self, name: &str, stage: &str, value: f64) {
        self.metrics.gauge_set(name, stage, value);
        self.emit(&ObsEvent::Gauge {
            name: name.to_string(),
            stage: stage.to_string(),
            value,
        });
    }

    /// Record a histogram observation.
    pub fn observe(&self, name: &str, stage: &str, value: f64) {
        self.metrics.observe(name, stage, value);
    }

    /// Subscribe a sink to the live event stream.
    pub fn add_sink(&self, sink: Box<dyn EventSink>) {
        self.sinks
            .lock()
            .expect("sink list poisoned")
            .push(SinkSlot { sink, dead: false });
    }

    /// Sinks still receiving events (subscribed minus panicked).
    pub fn live_sink_count(&self) -> usize {
        self.sinks
            .lock()
            .expect("sink list poisoned")
            .iter()
            .filter(|s| !s.dead)
            .count()
    }

    /// Fan an event out to every live sink. A panicking sink must not
    /// poison the lock or abort the recording thread: each dispatch is
    /// wrapped in `catch_unwind`, the offending sink is disabled, and the
    /// `(sink_panics, obs)` counter records it.
    fn emit(&self, event: &ObsEvent) {
        let mut panicked = 0u64;
        {
            let mut sinks = self.sinks.lock().expect("sink list poisoned");
            for slot in sinks.iter_mut() {
                if slot.dead {
                    continue;
                }
                let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    slot.sink.on_event(event)
                }));
                if hit.is_err() {
                    slot.dead = true;
                    panicked += 1;
                }
            }
        }
        if panicked > 0 {
            // Straight into the registry: Obs::counter_add would re-emit
            // to the sinks we still hold disabled state for.
            self.metrics.counter_add("sink_panics", "obs", panicked);
        }
    }

    /// Snapshot of every recorded span, in open order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.collector.snapshot()
    }

    /// Number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.collector.len()
    }

    /// The metrics registry (counters/gauges/histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Per-stage health snapshot derived from the standard
    /// instrumentation: `active_workers` gauges, `spans_closed` counters,
    /// and accumulated span seconds.
    pub fn stage_health(&self) -> Vec<StageHealth> {
        let snap = self.metrics.snapshot();
        let mut stages: BTreeMap<String, StageHealth> = BTreeMap::new();
        let entry = |m: &mut BTreeMap<String, StageHealth>, stage: &str| {
            m.entry(stage.to_string()).or_insert_with(|| StageHealth {
                stage: stage.to_string(),
                active_workers: None,
                spans_closed: 0,
                busy_seconds: 0.0,
            });
        };
        for (key, value) in &snap.counters {
            if key.name == "spans_closed" {
                entry(&mut stages, &key.stage);
                stages.get_mut(&key.stage).unwrap().spans_closed = *value;
            }
        }
        for (key, value) in &snap.gauges {
            if key.name == "active_workers" {
                entry(&mut stages, &key.stage);
                stages.get_mut(&key.stage).unwrap().active_workers = Some(*value);
            }
        }
        for (key, hist) in &snap.histograms {
            entry(&mut stages, &key.stage);
            stages.get_mut(&key.stage).unwrap().busy_seconds += hist.sum();
        }
        stages.into_values().collect()
    }

    /// Chrome `trace_event` JSON for the whole run — load it in
    /// Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        export::chrome::render(&self.spans())
    }

    /// Prometheus text exposition of every metric.
    pub fn prometheus_text(&self) -> String {
        export::prometheus::render(&self.metrics.snapshot())
    }

    /// JSON-lines dump: one line per span, then one per metric.
    pub fn jsonl(&self) -> String {
        export::jsonl::render(&self.spans(), &self.metrics.snapshot())
    }

    /// Self-time profile of everything recorded so far.
    pub fn profile(&self) -> SpanProfile {
        SpanProfile::from_obs(self)
    }

    /// Collapsed-stack (`folded`) rendering of the self-time profile —
    /// pipe into `inferno-flamegraph` / `flamegraph.pl` for a flamegraph.
    pub fn folded(&self) -> String {
        self.profile().folded()
    }

    /// Write the collapsed-stack profile to `path`.
    pub fn write_folded(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.folded())
    }

    /// Write the Chrome trace to `path`.
    pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }

    /// Write the Prometheus text dump to `path`.
    pub fn write_prometheus(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.prometheus_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_nest_and_record_on_drop() {
        let obs = Obs::new();
        let outer_id;
        {
            let mut outer = obs.span("preprocess", "batch");
            outer.attr("granules", 4);
            outer_id = outer.id();
            {
                let inner = obs.span("preprocess", "tile_creation");
                assert_ne!(inner.id(), outer_id);
            }
        }
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        // Inner closed first but ids preserve open order after sort.
        let outer = spans.iter().find(|s| s.id == outer_id).unwrap();
        let inner = spans.iter().find(|s| s.id != outer_id).unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer_id));
        assert_eq!(outer.attr("granules"), Some("4"));
        assert!(outer.wall_end_ns >= inner.wall_end_ns);
    }

    #[test]
    fn sim_spans_carry_both_clocks() {
        let obs = Obs::new();
        obs.record_sim_span(
            "download",
            "transfer",
            SimTime::from_secs_f64(10.0),
            SimTime::from_secs_f64(22.5),
        );
        let spans = obs.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].sim_seconds(), Some(12.5));
        assert_eq!(spans[0].duration_seconds(), 12.5);
        // Span durations feed the (name, stage) histogram automatically.
        let h = obs.metrics().histogram("transfer", "download").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 12.5);
        assert_eq!(
            obs.metrics().counter_value("spans_closed", "download"),
            Some(1)
        );
    }

    #[test]
    fn sinks_see_live_events() {
        let obs = Obs::new();
        let sink = MemorySink::new();
        let events = sink.handle();
        obs.add_sink(Box::new(sink));
        obs.counter_add("files", "download", 2);
        obs.gauge_set("active_workers", "download", 3.0);
        obs.record_sim_span(
            "download",
            "transfer",
            SimTime::ZERO,
            SimTime::from_secs_f64(1.0),
        );
        let seen = events.lock().unwrap();
        assert_eq!(seen.len(), 3);
        assert!(matches!(
            seen[0],
            ObsEvent::Counter {
                delta: 2,
                total: 2,
                ..
            }
        ));
        assert!(matches!(seen[1], ObsEvent::Gauge { value, .. } if value == 3.0));
        assert!(matches!(seen[2], ObsEvent::SpanClosed(_)));
    }

    #[test]
    fn panicking_sink_is_disabled_without_poisoning() {
        struct PanicSink;
        impl EventSink for PanicSink {
            fn on_event(&mut self, _event: &ObsEvent) {
                panic!("sink blew up");
            }
        }
        let obs = Obs::new();
        let healthy = MemorySink::new();
        let seen = healthy.handle();
        obs.add_sink(Box::new(PanicSink));
        obs.add_sink(Box::new(healthy));
        assert_eq!(obs.live_sink_count(), 2);

        obs.counter_add("files", "download", 1);
        // The panicking sink is disabled; later events still flow.
        assert_eq!(obs.live_sink_count(), 1);
        obs.counter_add("files", "download", 1);
        obs.gauge_set("active_workers", "download", 1.0);
        assert_eq!(seen.lock().unwrap().len(), 3);
        assert_eq!(obs.metrics().counter_value("sink_panics", "obs"), Some(1));
    }

    #[test]
    fn traced_sim_spans_carry_the_trace_id() {
        let obs = Obs::new();
        let trace = TraceContext::new("MOD.A2022001.0610");
        obs.record_sim_span_traced(
            "download",
            "file",
            SimTime::ZERO,
            SimTime::from_secs_f64(3.0),
            Some(&trace),
            &[("file", "MOD021KM.A2022001.0610.hdf")],
        );
        let mut guard = obs.span("inference", "flow");
        guard.set_trace(&trace);
        drop(guard);
        obs.record_sim_span("monitor", "poll", SimTime::ZERO, SimTime::ZERO);
        let spans = obs.spans();
        assert_eq!(spans.len(), 3);
        let traced: Vec<_> = spans
            .iter()
            .filter(|s| s.trace_id.as_deref() == Some("MOD.A2022001.0610"))
            .collect();
        assert_eq!(traced.len(), 2);
        assert!(spans
            .iter()
            .any(|s| s.name == "poll" && s.trace_id.is_none()));
    }

    #[test]
    fn stage_health_reflects_instrumentation() {
        let obs = Obs::new();
        obs.gauge_set("active_workers", "download", 6.0);
        obs.record_sim_span(
            "download",
            "transfer",
            SimTime::ZERO,
            SimTime::from_secs_f64(2.0),
        );
        obs.record_sim_span(
            "inference",
            "flow_action",
            SimTime::ZERO,
            SimTime::from_secs_f64(1.0),
        );
        let health = obs.stage_health();
        let dl = health.iter().find(|h| h.stage == "download").unwrap();
        assert_eq!(dl.active_workers, Some(6.0));
        assert_eq!(dl.spans_closed, 1);
        assert!((dl.busy_seconds - 2.0).abs() < 1e-9);
        assert!(health.iter().any(|h| h.stage == "inference"));
    }
}

//! Run archives: one recorded run bundled as a self-describing,
//! offline-diffable directory.
//!
//! A [`RunArchive`] freezes everything a run's [`crate::Obs`] hub and
//! bench harness produced — the span-store JSONL dump, the folded
//! self-time profile, every `BENCH_*.json` table, and an optional ops-log
//! slice — under a manifest ([`RunMeta`]) carrying the archive schema
//! version, a digest of the run configuration, the simulation seed, and
//! the host core count. Two archives are therefore comparable without any
//! live process: [`crate::diff::diff_archives`] loads both and attributes
//! the delta.
//!
//! Layout (all paths relative to the archive directory):
//!
//! ```text
//! archive.json      manifest: RunMeta + per-file content digests
//! spans.jsonl       span store + counters/gauges (export::jsonl)
//! profile.folded    collapsed-stack self-time profile
//! tables/BENCH_*.json   every table the run emitted
//! ops.jsonl         ops-log slice (present only when events were given)
//! ```
//!
//! The manifest digests every payload file (FNV-1a 64), so [`RunArchive::open`]
//! detects truncated or hand-edited archives instead of silently diffing
//! garbage.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use serde_json::{Map, Value};

use crate::export::jsonl::{self, ParsedJsonl};
use crate::metrics::MetricsSnapshot;
use crate::ops::oplog::OpsEvent;
use crate::profile::SpanProfile;
use crate::resource::memory_table;
use crate::span::SpanRecord;
use crate::table::Table;
use crate::Obs;

/// Archive format version written into every manifest. Readers refuse
/// archives from a *newer* schema; older versions are upgraded on read
/// (none exist yet).
pub const ARCHIVE_SCHEMA_VERSION: u32 = 1;

/// Manifest file name inside an archive directory.
pub const MANIFEST_FILE: &str = "archive.json";

/// Span-store dump file name.
pub const SPANS_FILE: &str = "spans.jsonl";

/// Folded self-time profile file name.
pub const FOLDED_FILE: &str = "profile.folded";

/// Ops-log slice file name (optional member).
pub const OPS_FILE: &str = "ops.jsonl";

/// Subdirectory holding the run's `BENCH_*.json` tables.
pub const TABLES_DIR: &str = "tables";

/// FNV-1a 64-bit digest of a byte string, rendered as 16 hex digits —
/// the archive's file-integrity and config-digest primitive.
pub fn content_digest(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Digest of a run-configuration description string. Callers render the
/// parameters that *define* the run (seed, worker counts, file counts,
/// …) into a stable string; two archives with equal digests claim to be
/// the same experiment.
pub fn config_digest(description: &str) -> String {
    content_digest(description.as_bytes())
}

/// Best-effort `git describe --always --dirty` of the working tree, or
/// `"unknown"` outside a repository / without git.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The manifest half of an archive: what produced this run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Archive format version ([`ARCHIVE_SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Human label for the run (`"baseline"`, `"nodes8"`, …).
    pub label: String,
    /// [`config_digest`] of the run's parameter description.
    pub config_digest: String,
    /// Simulation seed the run used.
    pub sim_seed: u64,
    /// Logical cores on the recording host.
    pub host_cores: u64,
    /// `git describe` of the tree that produced the run.
    pub git_describe: String,
}

impl RunMeta {
    /// Meta for a run recorded *here and now*: host cores and git
    /// describe are detected, the schema version is the current one.
    pub fn new(label: &str, config_digest: &str, sim_seed: u64) -> RunMeta {
        RunMeta {
            schema_version: ARCHIVE_SCHEMA_VERSION,
            label: label.to_string(),
            config_digest: config_digest.to_string(),
            sim_seed,
            host_cores: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            git_describe: git_describe(),
        }
    }

    /// JSON form (the `meta` object of the manifest, and the `meta`
    /// block `BENCH_*.json` emitters attach).
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert(
            "schema_version".to_string(),
            Value::from(self.schema_version as f64),
        );
        obj.insert("label".to_string(), Value::from(self.label.as_str()));
        obj.insert(
            "config_digest".to_string(),
            Value::from(self.config_digest.as_str()),
        );
        obj.insert("sim_seed".to_string(), Value::from(self.sim_seed as f64));
        obj.insert(
            "host_cores".to_string(),
            Value::from(self.host_cores as f64),
        );
        obj.insert(
            "git_describe".to_string(),
            Value::from(self.git_describe.as_str()),
        );
        Value::Object(obj)
    }

    /// Parse the manifest `meta` object.
    pub fn from_json(value: &Value) -> Result<RunMeta, String> {
        let obj = value.as_object().ok_or("meta is not an object")?;
        let s = |key: &str| {
            obj.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("meta missing '{key}'"))
        };
        let n = |key: &str| {
            obj.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("meta missing '{key}'"))
        };
        Ok(RunMeta {
            schema_version: n("schema_version")? as u32,
            label: s("label")?,
            config_digest: s("config_digest")?,
            sim_seed: n("sim_seed")? as u64,
            host_cores: n("host_cores")? as u64,
            git_describe: s("git_describe")?,
        })
    }
}

/// One run's frozen artifacts, loaded back into memory.
#[derive(Debug, Clone)]
pub struct RunArchive {
    /// The archive directory.
    pub dir: PathBuf,
    /// The manifest meta block.
    pub meta: RunMeta,
    /// The span store, dump order.
    pub spans: Vec<SpanRecord>,
    /// Counter values the run's registry held.
    pub counters: Vec<(crate::metrics::MetricKey, u64)>,
    /// Gauge values the run's registry held.
    pub gauges: Vec<(crate::metrics::MetricKey, f64)>,
    /// The folded self-time profile, verbatim.
    pub folded: String,
    /// Every `BENCH_*.json` table, sorted by name.
    pub tables: Vec<Table>,
    /// The ops-log slice shipped with the run (may be empty).
    pub ops_events: Vec<OpsEvent>,
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl RunArchive {
    /// Record an archive under `dir` (created if absent, members
    /// overwritten) and reopen it from disk — what you get back is
    /// exactly what a later [`RunArchive::open`] will see.
    pub fn record(
        dir: impl AsRef<Path>,
        meta: &RunMeta,
        spans: &[SpanRecord],
        snapshot: &MetricsSnapshot,
        tables: &[Table],
        ops_events: &[OpsEvent],
    ) -> io::Result<RunArchive> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut files: BTreeMap<String, String> = BTreeMap::new();
        let mut write = |rel: &str, body: &str| -> io::Result<()> {
            std::fs::write(dir.join(rel), body)?;
            files.insert(rel.to_string(), content_digest(body.as_bytes()));
            Ok(())
        };
        write(SPANS_FILE, &jsonl::render(spans, snapshot))?;
        write(FOLDED_FILE, &SpanProfile::from_spans(spans).folded())?;
        if !ops_events.is_empty() {
            let mut body = String::new();
            for ev in ops_events {
                body.push_str(&serde_json::to_string(&ev.to_json()).expect("infallible"));
                body.push('\n');
            }
            write(OPS_FILE, &body)?;
        }
        std::fs::create_dir_all(dir.join(TABLES_DIR))?;
        for table in tables {
            let body = serde_json::to_string(&table.to_json()).expect("infallible");
            let rel = format!("{TABLES_DIR}/BENCH_{}.json", table.name);
            std::fs::write(dir.join(&rel), &body)?;
            files.insert(rel, content_digest(body.as_bytes()));
        }

        let mut manifest = Map::new();
        manifest.insert("meta".to_string(), meta.to_json());
        let mut file_map = Map::new();
        for (rel, digest) in &files {
            file_map.insert(rel.clone(), Value::from(digest.as_str()));
        }
        manifest.insert("files".to_string(), Value::Object(file_map));
        std::fs::write(
            dir.join(MANIFEST_FILE),
            serde_json::to_string(&Value::Object(manifest)).expect("infallible"),
        )?;
        RunArchive::open(dir)
    }

    /// [`RunArchive::record`] straight off a live [`Obs`] hub.
    pub fn record_obs(
        dir: impl AsRef<Path>,
        meta: &RunMeta,
        obs: &Obs,
        tables: &[Table],
        ops_events: &[OpsEvent],
    ) -> io::Result<RunArchive> {
        RunArchive::record(
            dir,
            meta,
            &obs.spans(),
            &obs.metrics().snapshot(),
            tables,
            ops_events,
        )
    }

    /// Load an archive directory: parse the manifest, verify every
    /// member's content digest, and reload spans/metrics/tables/ops.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<RunArchive> {
        let dir = dir.as_ref();
        let manifest_body = std::fs::read_to_string(dir.join(MANIFEST_FILE))?;
        let manifest: Value = serde_json::from_str(&manifest_body)
            .map_err(|e| invalid(format!("{}: bad manifest: {e:?}", dir.display())))?;
        let meta = RunMeta::from_json(
            manifest
                .get("meta")
                .ok_or_else(|| invalid("manifest missing 'meta'"))?,
        )
        .map_err(invalid)?;
        if meta.schema_version > ARCHIVE_SCHEMA_VERSION {
            return Err(invalid(format!(
                "archive schema v{} is newer than supported v{ARCHIVE_SCHEMA_VERSION}",
                meta.schema_version
            )));
        }
        let files = manifest
            .get("files")
            .and_then(Value::as_object)
            .ok_or_else(|| invalid("manifest missing 'files'"))?;
        let mut bodies: BTreeMap<String, String> = BTreeMap::new();
        for (rel, digest) in files.iter() {
            let body = std::fs::read_to_string(dir.join(rel))?;
            let actual = content_digest(body.as_bytes());
            match digest.as_str() {
                Some(expected) if expected == actual => {}
                Some(expected) => {
                    return Err(invalid(format!(
                        "{rel}: content digest mismatch (manifest {expected}, file {actual}) — archive corrupted or edited"
                    )))
                }
                None => return Err(invalid(format!("{rel}: non-string digest in manifest"))),
            }
            bodies.insert(rel.clone(), body);
        }
        let parsed: ParsedJsonl = bodies
            .get(SPANS_FILE)
            .map(|body| jsonl::parse(body))
            .transpose()
            .map_err(|e| invalid(format!("{SPANS_FILE}: {e}")))?
            .unwrap_or_default();
        let folded = bodies.get(FOLDED_FILE).cloned().unwrap_or_default();
        let mut tables = Vec::new();
        for (rel, body) in &bodies {
            if !rel.starts_with(TABLES_DIR) {
                continue;
            }
            let value: Value =
                serde_json::from_str(body).map_err(|e| invalid(format!("{rel}: {e:?}")))?;
            tables.push(Table::from_json(&value).map_err(|e| invalid(format!("{rel}: {e}")))?);
        }
        tables.sort_by(|a, b| a.name.cmp(&b.name));
        let mut ops_events = Vec::new();
        if let Some(body) = bodies.get(OPS_FILE) {
            for (idx, line) in body.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let v: Value = serde_json::from_str(line)
                    .map_err(|e| invalid(format!("{OPS_FILE} line {}: {e:?}", idx + 1)))?;
                ops_events.push(
                    OpsEvent::from_json(&v)
                        .map_err(|e| invalid(format!("{OPS_FILE} line {}: {e}", idx + 1)))?,
                );
            }
        }
        Ok(RunArchive {
            dir: dir.to_path_buf(),
            meta,
            spans: parsed.spans,
            counters: parsed.counters,
            gauges: parsed.gauges,
            folded,
            tables,
            ops_events,
        })
    }

    /// The archive's registry snapshot rebuilt from its counter/gauge
    /// lines (histograms are not archived).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: Vec::new(),
        }
    }

    /// Self-time profile recomputed from the archived span store.
    pub fn profile(&self) -> SpanProfile {
        SpanProfile::from_spans(&self.spans)
    }

    /// The per-stage memory table rebuilt from the archived alloc
    /// counters (empty when the run had no counting allocator).
    pub fn memory_table(&self) -> Table {
        memory_table(&self.metrics_snapshot())
    }

    /// Look up an archived table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;
    use crate::TraceContext;
    use eoml_simtime::SimTime;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eoml_archive_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample_obs() -> Obs {
        let obs = Obs::new();
        let t = TraceContext::new("g1");
        for (stage, name, a, b) in [
            ("download", "file", 0.0, 10.0),
            ("preprocess", "granule", 12.0, 30.0),
            ("inference", "infer", 32.0, 40.0),
        ] {
            obs.record_sim_span_traced(
                stage,
                name,
                SimTime::from_secs_f64(a),
                SimTime::from_secs_f64(b),
                Some(&t),
                &[],
            );
        }
        obs.counter_add("alloc_bytes", "preprocess", 1 << 20);
        obs.counter_add("allocs", "preprocess", 42);
        obs.gauge_set("alloc_peak_bytes", "preprocess", 65536.0);
        obs
    }

    fn sample_table() -> Table {
        let mut t = Table::new("run_summary", &["metric", "value"]);
        t.row(vec![Cell::str("tiles_per_s"), Cell::num(272.7, 1)]);
        t
    }

    #[test]
    fn record_and_open_round_trip() {
        let dir = tmpdir("roundtrip");
        let obs = sample_obs();
        let meta = RunMeta::new("baseline", &config_digest("seed=2022 nodes=4"), 2022);
        let archive =
            RunArchive::record_obs(&dir, &meta, &obs, &[sample_table()], &[]).expect("record");
        assert_eq!(archive.meta, meta);
        assert_eq!(archive.meta.schema_version, ARCHIVE_SCHEMA_VERSION);
        assert_eq!(archive.spans.len(), 3);
        assert_eq!(archive.tables.len(), 1);
        assert!(archive.ops_events.is_empty());
        assert!(!archive.folded.is_empty());
        // Sim durations survive the disk round trip exactly.
        let reopened = RunArchive::open(&dir).expect("open");
        for (a, b) in obs.spans().iter().zip(&reopened.spans) {
            assert_eq!(a.sim_seconds(), b.sim_seconds());
            assert_eq!(a.trace_id, b.trace_id);
        }
        // The profile recomputed from the archive matches the live one.
        assert_eq!(reopened.profile().folded(), obs.profile().folded());
        // Memory accounting rides along via counters/gauges.
        let mem = reopened.memory_table();
        assert_eq!(mem.rows.len(), 1);
        assert_eq!(mem.rows[0][0], Cell::str("preprocess"));
        assert!(reopened.table("run_summary").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ops_slice_is_archived_when_present() {
        let dir = tmpdir("ops");
        let obs = Obs::new();
        let meta = RunMeta::new("with-ops", "cfg", 1);
        let ops = vec![OpsEvent {
            seq: 7,
            kind: "archive_recorded".to_string(),
            at_s: 1.5,
            data: serde_json::json!({"path": "x"}),
        }];
        let archive = RunArchive::record_obs(&dir, &meta, &obs, &[], &ops).expect("record");
        assert_eq!(archive.ops_events.len(), 1);
        assert_eq!(archive.ops_events[0].kind, "archive_recorded");
        assert_eq!(archive.ops_events[0].seq, 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_members_are_rejected_on_open() {
        let dir = tmpdir("tamper");
        let obs = sample_obs();
        let meta = RunMeta::new("t", "cfg", 1);
        RunArchive::record_obs(&dir, &meta, &obs, &[sample_table()], &[]).expect("record");
        // Flip a byte in the span dump: open must refuse, naming the file.
        let spans_path = dir.join(SPANS_FILE);
        let mut body = std::fs::read_to_string(&spans_path).unwrap();
        body.push_str("{\"type\":\"counter\",\"name\":\"x\",\"stage\":\"y\",\"value\":1}\n");
        std::fs::write(&spans_path, body).unwrap();
        let err = RunArchive::open(&dir).unwrap_err();
        assert!(err.to_string().contains("digest mismatch"), "{err}");
        assert!(err.to_string().contains(SPANS_FILE), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newer_schema_versions_are_refused() {
        let dir = tmpdir("schema");
        let obs = Obs::new();
        let mut meta = RunMeta::new("future", "cfg", 1);
        meta.schema_version = ARCHIVE_SCHEMA_VERSION + 1;
        // record() itself writes whatever meta says; open() refuses it.
        let err = RunArchive::record_obs(&dir, &meta, &obs, &[], &[]).unwrap_err();
        assert!(err.to_string().contains("newer than supported"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digests_are_stable_and_hex() {
        assert_eq!(content_digest(b""), "cbf29ce484222325");
        assert_eq!(config_digest("a"), config_digest("a"));
        assert_ne!(config_digest("a"), config_digest("b"));
        assert_eq!(config_digest("nodes=4").len(), 16);
    }
}

//! Live monitoring: a [`ProgressSink`] that watches the event stream and
//! fires [`Alert`]s from rolling-window [`AlertRule`]s — the "real-time
//! workflow insights" the paper's §V-A calls for, without waiting for a
//! post-hoc export.
//!
//! The sink's clock is the **event stream itself**: it advances to the
//! latest span end (sim seconds for virtual campaigns, wall seconds for
//! real runs) seen on *any* stage. A stalled stage emits nothing, so the
//! other stages' events are what move time forward past its `idle_s`
//! threshold. Drivers with their own clock (or fully quiesced pipelines)
//! can pump [`ProgressSink::check_at`] explicitly.
//!
//! Alerts have **edge semantics**: a rule transitions to firing when its
//! condition first holds and back to cleared when it stops holding — it
//! never re-fires while already active, so identical `(rule, stage)`
//! breaches are deduplicated into one [`Alert`] whose `cleared_at` is
//! stamped on the falling edge. Consumers that want the raw transition
//! stream (the ops log does) read [`ProgressSink::transitions`].

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use eoml_util::stats::Summary;

use crate::analysis::span_bounds;
use crate::sink::{EventSink, ObsEvent};

/// A live-monitoring rule evaluated over the event stream.
#[derive(Debug, Clone)]
pub enum AlertRule {
    /// Fire when a stage that has produced at least one span goes silent
    /// for more than `idle_s` seconds while other stages keep running.
    StageStalled {
        /// Stage to watch.
        stage: String,
        /// Max tolerated silence, seconds.
        idle_s: f64,
    },
    /// Fire when, over the last `window` spans of a stage, more than
    /// `max_fraction` of them exceed `multiple ×` the window median.
    StragglerRate {
        /// Stage to watch.
        stage: String,
        /// Rolling window length, in spans.
        window: usize,
        /// Straggler threshold as a multiple of the window median.
        multiple: f64,
        /// Max tolerated straggler fraction in the window.
        max_fraction: f64,
        /// Spans required in the window before evaluating.
        min_samples: usize,
    },
    /// Fire when a counter's rate over the last `window_s` seconds drops
    /// below `(1 - drop_fraction) ×` its rate over the window before
    /// that.
    ThroughputDrop {
        /// Counter name to watch (e.g. `files`).
        counter: String,
        /// Stage label of the counter.
        stage: String,
        /// Comparison window, seconds.
        window_s: f64,
        /// Fractional drop that triggers the alert (0.5 = halved).
        drop_fraction: f64,
    },
}

impl AlertRule {
    fn kind(&self) -> &'static str {
        match self {
            AlertRule::StageStalled { .. } => "stage_stalled",
            AlertRule::StragglerRate { .. } => "straggler_rate",
            AlertRule::ThroughputDrop { .. } => "throughput_drop",
        }
    }

    fn stage(&self) -> &str {
        match self {
            AlertRule::StageStalled { stage, .. }
            | AlertRule::StragglerRate { stage, .. }
            | AlertRule::ThroughputDrop { stage, .. } => stage,
        }
    }
}

/// One fired alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Rule kind (`stage_stalled`, `straggler_rate`, `throughput_drop`).
    pub rule: String,
    /// Stage the rule watched.
    pub stage: String,
    /// Stream time when the rule fired, seconds.
    pub at_s: f64,
    /// Human-readable description with the numbers that tripped it.
    pub message: String,
    /// Stream time the condition stopped holding; `None` while firing.
    pub cleared_at: Option<f64>,
}

impl Alert {
    /// Whether the alert is still in the firing state.
    pub fn is_active(&self) -> bool {
        self.cleared_at.is_none()
    }
}

/// Direction of an alert edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertTransitionKind {
    /// The rule's condition started holding.
    Fired,
    /// The rule's condition stopped holding.
    Cleared,
}

/// One edge in the alert stream — what the ops log records instead of
/// per-check spam.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Edge direction.
    pub kind: AlertTransitionKind,
    /// Rule kind (`stage_stalled`, …).
    pub rule: String,
    /// Stage the rule watched.
    pub stage: String,
    /// Stream time of the edge, seconds.
    pub at_s: f64,
    /// The firing message (empty on clears).
    pub message: String,
}

struct RuleState {
    rule: AlertRule,
    /// Whether the condition currently holds (we are between edges).
    active: bool,
    /// Index into the shared alert list of the alert opened by the most
    /// recent rising edge, so the falling edge can stamp `cleared_at`.
    last_alert_idx: Option<usize>,
    /// StragglerRate: rolling span durations.
    durations: VecDeque<f64>,
}

/// Per-stage progress digest maintained live.
#[derive(Debug, Clone, PartialEq)]
pub struct StageProgress {
    /// Stage label.
    pub stage: String,
    /// Spans closed so far.
    pub spans_closed: u64,
    /// Stream time of the stage's latest span end.
    pub last_event_s: f64,
}

/// Live event subscriber: progress digest plus alert evaluation.
/// Register with [`crate::Obs::add_sink`]; read alerts through the
/// handle returned by [`ProgressSink::alerts`].
pub struct ProgressSink {
    rules: Vec<RuleState>,
    alerts: Arc<Mutex<Vec<Alert>>>,
    transitions: Arc<Mutex<Vec<AlertTransition>>>,
    /// Stream clock: latest span end seen anywhere.
    now_s: f64,
    /// Per-stage (spans closed, last span end).
    stages: BTreeMap<String, (u64, f64)>,
    /// Per-(counter, stage) history of (stream time, total).
    counters: BTreeMap<(String, String), Vec<(f64, u64)>>,
}

impl ProgressSink {
    /// Empty sink; add rules with [`ProgressSink::with_rule`].
    #[allow(clippy::new_without_default)]
    pub fn new() -> ProgressSink {
        ProgressSink {
            rules: Vec::new(),
            alerts: Arc::new(Mutex::new(Vec::new())),
            transitions: Arc::new(Mutex::new(Vec::new())),
            now_s: 0.0,
            stages: BTreeMap::new(),
            counters: BTreeMap::new(),
        }
    }

    /// Builder-style rule registration.
    pub fn with_rule(mut self, rule: AlertRule) -> ProgressSink {
        self.rules.push(RuleState {
            rule,
            active: false,
            last_alert_idx: None,
            durations: VecDeque::new(),
        });
        self
    }

    /// Shared handle to the fired alerts (clone before `add_sink`).
    pub fn alerts(&self) -> Arc<Mutex<Vec<Alert>>> {
        Arc::clone(&self.alerts)
    }

    /// Shared handle to the edge stream (clone before `add_sink`).
    /// Consumers may drain the vector; indices are not meaningful.
    pub fn transitions(&self) -> Arc<Mutex<Vec<AlertTransition>>> {
        Arc::clone(&self.transitions)
    }

    /// Per-stage progress digest at the current stream time.
    pub fn progress(&self) -> Vec<StageProgress> {
        self.stages
            .iter()
            .map(|(stage, &(spans_closed, last_event_s))| StageProgress {
                stage: stage.clone(),
                spans_closed,
                last_event_s,
            })
            .collect()
    }

    /// Advance the stream clock to `now_s` and re-evaluate time-driven
    /// rules (stalls, throughput). Use when the driver has a clock of
    /// its own, e.g. at virtual-campaign poll points.
    pub fn check_at(&mut self, now_s: f64) {
        if now_s > self.now_s {
            self.now_s = now_s;
        }
        self.evaluate();
    }

    /// Counter total at stream time `t` (step interpolation).
    fn counter_at(history: &[(f64, u64)], t: f64) -> u64 {
        match history.partition_point(|&(ht, _)| ht <= t) {
            0 => 0,
            idx => history[idx - 1].1,
        }
    }

    /// Whether a rule's condition currently holds; `Some(message)` while
    /// breached. Pure with respect to the rule state.
    fn breach(
        rule: &AlertRule,
        durations: &VecDeque<f64>,
        stages: &BTreeMap<String, (u64, f64)>,
        counters: &BTreeMap<(String, String), Vec<(f64, u64)>>,
        now: f64,
    ) -> Option<String> {
        match rule {
            AlertRule::StageStalled { stage, idle_s } => {
                let &(spans, last) = stages.get(stage)?;
                let idle = now - last;
                if spans > 0 && idle > *idle_s {
                    Some(format!(
                        "stage '{stage}' silent for {idle:.1}s \
                         (threshold {idle_s:.1}s, {spans} spans closed)"
                    ))
                } else {
                    None
                }
            }
            AlertRule::StragglerRate {
                stage,
                multiple,
                max_fraction,
                min_samples,
                ..
            } => {
                if durations.len() < (*min_samples).max(1) {
                    return None;
                }
                let samples: Vec<f64> = durations.iter().copied().collect();
                let median = Summary::from_samples(samples.clone()).median();
                if median <= 0.0 {
                    return None;
                }
                let over = samples.iter().filter(|&&d| d > multiple * median).count();
                let fraction = over as f64 / samples.len() as f64;
                if fraction > *max_fraction {
                    Some(format!(
                        "stage '{stage}': {over}/{} spans beyond \
                         {multiple:.1}x median {median:.2}s \
                         (fraction {fraction:.2} > {max_fraction:.2})",
                        samples.len()
                    ))
                } else {
                    None
                }
            }
            AlertRule::ThroughputDrop {
                counter,
                stage,
                window_s,
                drop_fraction,
            } => {
                if now < 2.0 * window_s {
                    return None;
                }
                let history = counters.get(&(counter.clone(), stage.clone()))?;
                let at_now = Self::counter_at(history, now);
                let at_mid = Self::counter_at(history, now - window_s);
                let at_old = Self::counter_at(history, now - 2.0 * window_s);
                let recent = (at_now - at_mid) as f64;
                let previous = (at_mid - at_old) as f64;
                if previous > 0.0 && recent < (1.0 - drop_fraction) * previous {
                    Some(format!(
                        "counter '{counter}' in stage '{stage}' dropped: \
                         {recent:.0} vs {previous:.0} per {window_s:.0}s window"
                    ))
                } else {
                    None
                }
            }
        }
    }

    fn evaluate(&mut self) {
        let now = self.now_s;
        for state in &mut self.rules {
            let breach = Self::breach(
                &state.rule,
                &state.durations,
                &self.stages,
                &self.counters,
                now,
            );
            match (state.active, breach) {
                // Rising edge: open an alert, record the transition.
                (false, Some(message)) => {
                    state.active = true;
                    let mut alerts = self.alerts.lock().expect("alert list poisoned");
                    state.last_alert_idx = Some(alerts.len());
                    alerts.push(Alert {
                        rule: state.rule.kind().to_string(),
                        stage: state.rule.stage().to_string(),
                        at_s: now,
                        message: message.clone(),
                        cleared_at: None,
                    });
                    self.transitions
                        .lock()
                        .expect("transition list poisoned")
                        .push(AlertTransition {
                            kind: AlertTransitionKind::Fired,
                            rule: state.rule.kind().to_string(),
                            stage: state.rule.stage().to_string(),
                            at_s: now,
                            message,
                        });
                }
                // Falling edge: stamp `cleared_at`, record the transition.
                (true, None) => {
                    state.active = false;
                    if let Some(idx) = state.last_alert_idx.take() {
                        let mut alerts = self.alerts.lock().expect("alert list poisoned");
                        if let Some(alert) = alerts.get_mut(idx) {
                            alert.cleared_at = Some(now);
                        }
                    }
                    self.transitions
                        .lock()
                        .expect("transition list poisoned")
                        .push(AlertTransition {
                            kind: AlertTransitionKind::Cleared,
                            rule: state.rule.kind().to_string(),
                            stage: state.rule.stage().to_string(),
                            at_s: now,
                            message: String::new(),
                        });
                }
                // Steady state in either direction: no spam.
                _ => {}
            }
        }
    }
}

impl EventSink for ProgressSink {
    fn on_event(&mut self, event: &ObsEvent) {
        match event {
            ObsEvent::SpanClosed(span) => {
                let (start, end) = span_bounds(span);
                if end > self.now_s {
                    self.now_s = end;
                }
                let slot = self.stages.entry(span.stage.clone()).or_insert((0, end));
                slot.0 += 1;
                if end > slot.1 {
                    slot.1 = end;
                }
                for state in &mut self.rules {
                    if let AlertRule::StragglerRate { stage, window, .. } = &state.rule {
                        if stage == &span.stage {
                            state.durations.push_back(end - start);
                            while state.durations.len() > (*window).max(1) {
                                state.durations.pop_front();
                            }
                        }
                    }
                }
            }
            ObsEvent::Counter {
                name, stage, total, ..
            } => {
                let now = self.now_s;
                self.counters
                    .entry((name.clone(), stage.clone()))
                    .or_default()
                    .push((now, *total));
            }
            ObsEvent::Gauge { .. } => {}
        }
        self.evaluate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Obs, TraceContext};
    use eoml_simtime::SimTime;

    fn record(obs: &Obs, stage: &str, start: f64, end: f64) {
        obs.record_sim_span_traced(
            stage,
            "work",
            SimTime::from_secs_f64(start),
            SimTime::from_secs_f64(end),
            Some(&TraceContext::new("g")),
            &[],
        );
    }

    #[test]
    fn stalled_stage_alert_fires_while_other_stages_advance() {
        let sink = ProgressSink::new().with_rule(AlertRule::StageStalled {
            stage: "preprocess".to_string(),
            idle_s: 60.0,
        });
        let alerts = sink.alerts();
        let obs = Obs::new();
        obs.add_sink(Box::new(sink));

        record(&obs, "preprocess", 0.0, 10.0);
        // Downloads keep flowing; preprocess goes silent — simulating an
        // artificially stalled stage.
        record(&obs, "download", 10.0, 30.0);
        assert!(alerts.lock().unwrap().is_empty());
        record(&obs, "download", 30.0, 120.0);
        let fired = alerts.lock().unwrap();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "stage_stalled");
        assert_eq!(fired[0].stage, "preprocess");
        assert!(fired[0].at_s >= 120.0 - 1e-9);
    }

    #[test]
    fn stalled_alert_fires_once_even_as_silence_grows() {
        let sink = ProgressSink::new().with_rule(AlertRule::StageStalled {
            stage: "preprocess".to_string(),
            idle_s: 60.0,
        });
        let alerts = sink.alerts();
        let obs = Obs::new();
        obs.add_sink(Box::new(sink));
        record(&obs, "preprocess", 0.0, 10.0);
        record(&obs, "download", 10.0, 120.0);
        record(&obs, "download", 120.0, 500.0);
        assert_eq!(alerts.lock().unwrap().len(), 1);
    }

    #[test]
    fn straggler_rate_alert_fires_on_slow_window() {
        let sink = ProgressSink::new().with_rule(AlertRule::StragglerRate {
            stage: "download".to_string(),
            window: 8,
            multiple: 2.0,
            max_fraction: 0.2,
            min_samples: 6,
        });
        let alerts = sink.alerts();
        let obs = Obs::new();
        let mut t = 0.0;
        obs.add_sink(Box::new(sink));
        for _ in 0..5 {
            record(&obs, "download", t, t + 10.0);
            t += 10.0;
        }
        assert!(alerts.lock().unwrap().is_empty());
        // Two gross outliers out of 7-8 in-window spans: fraction > 0.2.
        record(&obs, "download", t, t + 100.0);
        record(&obs, "download", t + 100.0, t + 250.0);
        let fired = alerts.lock().unwrap();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "straggler_rate");
    }

    #[test]
    fn throughput_drop_alert_fires_when_rate_halves() {
        let sink = ProgressSink::new().with_rule(AlertRule::ThroughputDrop {
            counter: "files".to_string(),
            stage: "download".to_string(),
            window_s: 100.0,
            drop_fraction: 0.5,
        });
        let alerts = sink.alerts();
        let obs = Obs::new();
        obs.add_sink(Box::new(sink));
        // 10 files in the first 100 s window, 1 in the second.
        for i in 0..10 {
            record(&obs, "download", i as f64 * 10.0, (i + 1) as f64 * 10.0);
            obs.counter_add("files", "download", 1);
        }
        record(&obs, "download", 100.0, 199.0);
        obs.counter_add("files", "download", 1);
        assert!(alerts.lock().unwrap().is_empty());
        // The clock reaching 200 s completes the comparison window.
        record(&obs, "monitor", 199.0, 205.0);
        let fired = alerts.lock().unwrap();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].rule, "throughput_drop");
        assert!(fired[0].message.contains("files"));
    }

    #[test]
    fn alerts_clear_on_recovery_and_refire_as_distinct_edges() {
        let sink = ProgressSink::new().with_rule(AlertRule::StageStalled {
            stage: "preprocess".to_string(),
            idle_s: 60.0,
        });
        let alerts = sink.alerts();
        let transitions = sink.transitions();
        let obs = Obs::new();
        obs.add_sink(Box::new(sink));

        // Stall: preprocess silent while downloads advance the clock.
        record(&obs, "preprocess", 0.0, 10.0);
        record(&obs, "download", 10.0, 120.0);
        assert_eq!(alerts.lock().unwrap().len(), 1);
        assert!(alerts.lock().unwrap()[0].is_active());

        // Recovery: preprocess produces again — the alert clears in
        // place instead of a new one being appended.
        record(&obs, "preprocess", 120.0, 125.0);
        {
            let fired = alerts.lock().unwrap();
            assert_eq!(fired.len(), 1);
            assert_eq!(fired[0].cleared_at, Some(125.0));
            assert!(!fired[0].is_active());
        }

        // A second stall is a fresh alert, not a duplicate of the first.
        record(&obs, "download", 125.0, 300.0);
        {
            let fired = alerts.lock().unwrap();
            assert_eq!(fired.len(), 2);
            assert!(fired[1].is_active());
        }
        let kinds: Vec<AlertTransitionKind> =
            transitions.lock().unwrap().iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AlertTransitionKind::Fired,
                AlertTransitionKind::Cleared,
                AlertTransitionKind::Fired,
            ]
        );
    }

    #[test]
    fn check_at_drives_time_rules_without_events() {
        let mut sink = ProgressSink::new().with_rule(AlertRule::StageStalled {
            stage: "shipment".to_string(),
            idle_s: 30.0,
        });
        let alerts = sink.alerts();
        let span = crate::SpanRecord {
            id: 1,
            parent: None,
            stage: "shipment".to_string(),
            name: "ship".to_string(),
            tid: 0,
            sim_start: Some(SimTime::ZERO),
            sim_end: Some(SimTime::from_secs_f64(5.0)),
            wall_start_ns: 0,
            wall_end_ns: 0,
            trace_id: None,
            attrs: Vec::new(),
        };
        sink.on_event(&ObsEvent::SpanClosed(span));
        sink.check_at(20.0);
        assert!(alerts.lock().unwrap().is_empty());
        sink.check_at(50.0);
        assert_eq!(alerts.lock().unwrap().len(), 1);
        assert_eq!(sink.progress()[0].stage, "shipment");
        assert_eq!(sink.progress()[0].spans_closed, 1);
    }
}

//! Live event streaming: the subscriber trait and the events it sees.
//!
//! Post-hoc exporters (Chrome trace, Prometheus text) read the collector
//! after the run; a sink sees each event as it happens, which is what a
//! long campaign's progress display or an alerting hook needs. Sinks run
//! inline on the recording thread under the sink-list lock, so they
//! should be cheap — buffer and hand off, don't block.

use crate::span::SpanRecord;
use std::sync::{Arc, Mutex};

/// One observability event, delivered to sinks as it is recorded.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A span closed (guard dropped or sim span recorded).
    SpanClosed(SpanRecord),
    /// A counter was incremented; `total` is the post-increment value.
    Counter {
        /// Metric name.
        name: String,
        /// Stage label.
        stage: String,
        /// Increment applied.
        delta: u64,
        /// Counter value after the increment.
        total: u64,
    },
    /// A gauge was set.
    Gauge {
        /// Metric name.
        name: String,
        /// Stage label.
        stage: String,
        /// New gauge value.
        value: f64,
    },
}

/// Subscriber to the live event stream. Registered via
/// [`crate::Obs::add_sink`]; called synchronously on the recording thread.
pub trait EventSink: Send {
    /// Observe one event.
    fn on_event(&mut self, event: &ObsEvent);
}

/// Sink that buffers every event in memory behind a shared handle —
/// the building block for progress displays and tests.
pub struct MemorySink {
    events: Arc<Mutex<Vec<ObsEvent>>>,
}

impl MemorySink {
    /// New sink plus the shared buffer handle to read from.
    #[allow(clippy::new_without_default)]
    pub fn new() -> MemorySink {
        MemorySink {
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Handle to the buffer (clone before passing the sink to `add_sink`).
    pub fn handle(&self) -> Arc<Mutex<Vec<ObsEvent>>> {
        Arc::clone(&self.events)
    }
}

impl EventSink for MemorySink {
    fn on_event(&mut self, event: &ObsEvent) {
        self.events
            .lock()
            .expect("sink buffer poisoned")
            .push(event.clone());
    }
}

/// Point-in-time health summary for one stage, derived from the standard
/// instrumentation (`active_workers` gauge, `spans_closed` counter).
#[derive(Debug, Clone, PartialEq)]
pub struct StageHealth {
    /// Stage label.
    pub stage: String,
    /// Workers currently active (latest `active_workers` gauge), if known.
    pub active_workers: Option<f64>,
    /// Spans closed in this stage so far.
    pub spans_closed: u64,
    /// Seconds of span time accumulated in this stage so far.
    pub busy_seconds: f64,
}

//! Noise-aware differencing of two [`RunArchive`]s: turn a "Regressed"
//! verdict into an attributed answer.
//!
//! [`diff_archives`] joins two archives on every axis the telemetry
//! supports and emits a ranked [`AttributionReport`]:
//!
//! - **self time** — per-`(stage, name)` exclusive seconds from each
//!   archive's [`crate::profile::SpanProfile`]. Self time is already
//!   overlap-clamped (children can only shrink a parent, never drive it
//!   negative), so the deltas attribute without double counting.
//! - **queue wait** — per-stage queueing seconds summed over every
//!   granule's critical path ([`crate::analysis::GranuleTrace::critical_path`]);
//!   a stage whose *service* time is flat but whose *queue* exploded
//!   shows up here, not in self time.
//! - **allocation** — per-stage `alloc_bytes` / `allocs` / `alloc_peak_bytes`
//!   deltas from the archived counters and gauges.
//! - **headline** — the `tiles_per_s` row of the archived summary table,
//!   when both archives carry one.
//!
//! Every axis is gated by a [`Tolerance`] so same-seed/same-config runs
//! diff to *zero attributed deltas* rather than a page of float dust.
//! Ranked entries carry a `share_pct` over the total attributed shift,
//! yielding reports like: "headline tiles/s −18%: 71% preprocess
//! queue-wait, 22% download self-time, alloc_peak +34 MiB in preprocess".
//!
//! [`flame_diff`] additionally renders the two folded profiles as a
//! differential collapsed-stack document (`stack base_µs cur_µs`) that
//! flamegraph difffolded tooling consumes directly.

use std::collections::{BTreeMap, BTreeSet};

use serde_json::{Map, Value};

use crate::analysis::{SegmentKind, TraceAnalysis};
use crate::archive::RunArchive;
use crate::baseline::Tolerance;
use crate::profile::parse_folded;
use crate::resource::{ALLOC_BYTES_COUNTER, ALLOC_COUNT_COUNTER, ALLOC_PEAK_GAUGE};
use crate::table::{Cell, Table};

/// Default gate for time-valued deltas: 1 % relative *and* 10 ms
/// absolute must both be exceeded. Much tighter than the baseline
/// store's default — archives from the same seed and config are
/// bit-identical in sim time, so the gate exists only to eat float dust
/// and wall-clock jitter in unstamped spans.
pub const DEFAULT_DIFF_TOLERANCE: Tolerance = Tolerance {
    rel: 0.01,
    abs: 0.01,
};

/// Default gate for byte-valued deltas: 2 % relative and 1 MiB absolute.
pub const DEFAULT_ALLOC_TOLERANCE: Tolerance = Tolerance {
    rel: 0.02,
    abs: 1_048_576.0,
};

/// Report JSON schema version (`schema_version` in [`AttributionReport::to_json`]).
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// One `(stage, name)` exclusive-time delta that cleared the gate.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfTimeDelta {
    /// Pipeline stage label.
    pub stage: String,
    /// Component name within the stage.
    pub name: String,
    /// Baseline self seconds.
    pub base_s: f64,
    /// Current self seconds.
    pub cur_s: f64,
}

impl SelfTimeDelta {
    /// Signed shift, seconds (positive = current is slower).
    pub fn delta_s(&self) -> f64 {
        self.cur_s - self.base_s
    }
}

/// One per-stage allocation delta that cleared the byte gate.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocDelta {
    /// Pipeline stage label.
    pub stage: String,
    /// Baseline / current cumulative allocated bytes.
    pub base_bytes: u64,
    /// Current cumulative allocated bytes.
    pub cur_bytes: u64,
    /// Baseline allocation count.
    pub base_allocs: u64,
    /// Current allocation count.
    pub cur_allocs: u64,
    /// Baseline peak live bytes.
    pub base_peak: f64,
    /// Current peak live bytes.
    pub cur_peak: f64,
}

impl AllocDelta {
    /// Signed cumulative-bytes shift.
    pub fn delta_bytes(&self) -> i64 {
        self.cur_bytes as i64 - self.base_bytes as i64
    }

    /// Signed peak shift, bytes.
    pub fn delta_peak(&self) -> f64 {
        self.cur_peak - self.base_peak
    }
}

/// One per-`(stage, kind)` critical-path composition row — where the
/// granules' end-to-end time was spent, both runs side by side. All
/// rows are reported (this is the composition view); only queue rows
/// beyond tolerance become ranked [`AttributionEntry`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionRow {
    /// Pipeline stage label.
    pub stage: String,
    /// `"service"` or `"queue"`.
    pub kind: &'static str,
    /// Baseline seconds on the critical paths.
    pub base_s: f64,
    /// Current seconds on the critical paths.
    pub cur_s: f64,
}

impl CompositionRow {
    /// Signed shift, seconds.
    pub fn delta_s(&self) -> f64 {
        self.cur_s - self.base_s
    }
}

/// Headline-metric shift pulled from the archived summary table.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineDelta {
    /// Metric row name (`"tiles_per_s"`).
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub cur: f64,
}

impl HeadlineDelta {
    /// Percent change from baseline (negative = throughput regressed).
    pub fn pct_change(&self) -> f64 {
        if self.base == 0.0 {
            return 0.0;
        }
        (self.cur - self.base) / self.base * 100.0
    }
}

/// One ranked line of the attribution: a time-valued shift with its
/// share of the total attributed movement.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionEntry {
    /// 1-based rank (largest absolute shift first).
    pub rank: usize,
    /// `"self_time"` or `"queue_wait"`.
    pub kind: &'static str,
    /// Pipeline stage label.
    pub stage: String,
    /// Component name (`""` for queue-wait rows, which aggregate a stage).
    pub name: String,
    /// Baseline seconds.
    pub base_s: f64,
    /// Current seconds.
    pub cur_s: f64,
    /// Share of the summed absolute attributed shift, percent.
    pub share_pct: f64,
}

impl AttributionEntry {
    /// Signed shift, seconds.
    pub fn delta_s(&self) -> f64 {
        self.cur_s - self.base_s
    }
}

/// The ranked answer to "what changed between these two runs".
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// Baseline archive label.
    pub base_label: String,
    /// Current archive label.
    pub cur_label: String,
    /// Baseline archive config digest.
    pub base_config: String,
    /// Current archive config digest.
    pub cur_config: String,
    /// Baseline sim seed.
    pub base_seed: u64,
    /// Current sim seed.
    pub cur_seed: u64,
    /// Headline metric shift, when both archives carried a summary row.
    pub headline: Option<HeadlineDelta>,
    /// Ranked time-valued shifts (self time + queue wait), largest first.
    pub entries: Vec<AttributionEntry>,
    /// Per-stage allocation shifts beyond the byte gate, largest first.
    pub alloc: Vec<AllocDelta>,
    /// Full critical-path composition, both runs, all stages.
    pub composition: Vec<CompositionRow>,
    /// Time gate the diff ran with.
    pub tolerance: Tolerance,
}

impl AttributionReport {
    /// Attributed deltas across all gated axes.
    pub fn attributed_count(&self) -> usize {
        self.entries.len() + self.alloc.len()
    }

    /// No axis moved beyond tolerance — the runs are equivalent.
    pub fn is_clean(&self) -> bool {
        self.attributed_count() == 0
    }

    /// Whether the two archives claim the same experiment configuration.
    pub fn config_changed(&self) -> bool {
        self.base_config != self.cur_config
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "attribution: {} ({}, seed {}) -> {} ({}, seed {})\n",
            self.base_label,
            self.base_config,
            self.base_seed,
            self.cur_label,
            self.cur_config,
            self.cur_seed
        ));
        if self.config_changed() {
            out.push_str("note: config digests differ — this is a cross-configuration diff\n");
        }
        if let Some(h) = &self.headline {
            out.push_str(&format!(
                "headline {}: {:.2} -> {:.2} ({:+.1}%)\n",
                h.metric,
                h.base,
                h.cur,
                h.pct_change()
            ));
        }
        if self.is_clean() {
            out.push_str("clean: no attributed deltas beyond tolerance\n");
            return out;
        }
        for e in &self.entries {
            let label = if e.name.is_empty() {
                e.stage.clone()
            } else {
                format!("{}/{}", e.stage, e.name)
            };
            out.push_str(&format!(
                "  {:>2}. {:<10} {:<28} {:>10.3} s -> {:>10.3} s  ({:+.3} s, {:.1}% of shift)\n",
                e.rank,
                e.kind,
                label,
                e.base_s,
                e.cur_s,
                e.delta_s(),
                e.share_pct
            ));
        }
        if !self.alloc.is_empty() {
            out.push_str("alloc:\n");
            for a in &self.alloc {
                out.push_str(&format!(
                    "  {:<12} bytes {:+.1} MiB (allocs {:+}), peak {:+.1} MiB\n",
                    a.stage,
                    a.delta_bytes() as f64 / (1024.0 * 1024.0),
                    a.cur_allocs as i64 - a.base_allocs as i64,
                    a.delta_peak() / (1024.0 * 1024.0),
                ));
            }
        }
        if !self.composition.is_empty() {
            out.push_str("critical-path composition (base -> cur, per stage):\n");
            for row in &self.composition {
                out.push_str(&format!(
                    "  {:<12} {:<8} {:>10.3} s -> {:>10.3} s  ({:+.3} s)\n",
                    row.stage,
                    row.kind,
                    row.base_s,
                    row.cur_s,
                    row.delta_s()
                ));
            }
        }
        out
    }

    /// Machine-readable report (schema v[`REPORT_SCHEMA_VERSION`]).
    pub fn to_json(&self) -> Value {
        let side = |label: &str, config: &str, seed: u64| {
            let mut obj = Map::new();
            obj.insert("label".to_string(), Value::from(label));
            obj.insert("config_digest".to_string(), Value::from(config));
            obj.insert("sim_seed".to_string(), Value::from(seed as f64));
            Value::Object(obj)
        };
        let mut obj = Map::new();
        obj.insert(
            "schema_version".to_string(),
            Value::from(REPORT_SCHEMA_VERSION as f64),
        );
        obj.insert(
            "base".to_string(),
            side(&self.base_label, &self.base_config, self.base_seed),
        );
        obj.insert(
            "cur".to_string(),
            side(&self.cur_label, &self.cur_config, self.cur_seed),
        );
        obj.insert(
            "config_changed".to_string(),
            Value::Bool(self.config_changed()),
        );
        let mut tol = Map::new();
        tol.insert("rel".to_string(), Value::from(self.tolerance.rel));
        tol.insert("abs".to_string(), Value::from(self.tolerance.abs));
        obj.insert("tolerance".to_string(), Value::Object(tol));
        obj.insert(
            "headline".to_string(),
            match &self.headline {
                Some(h) => {
                    let mut o = Map::new();
                    o.insert("metric".to_string(), Value::from(h.metric.as_str()));
                    o.insert("base".to_string(), Value::from(h.base));
                    o.insert("cur".to_string(), Value::from(h.cur));
                    o.insert("pct_change".to_string(), Value::from(h.pct_change()));
                    Value::Object(o)
                }
                None => Value::Null,
            },
        );
        obj.insert(
            "attributed".to_string(),
            Value::from(self.attributed_count() as f64),
        );
        obj.insert(
            "entries".to_string(),
            Value::Array(
                self.entries
                    .iter()
                    .map(|e| {
                        let mut o = Map::new();
                        o.insert("rank".to_string(), Value::from(e.rank as f64));
                        o.insert("kind".to_string(), Value::from(e.kind));
                        o.insert("stage".to_string(), Value::from(e.stage.as_str()));
                        o.insert("name".to_string(), Value::from(e.name.as_str()));
                        o.insert("base_s".to_string(), Value::from(e.base_s));
                        o.insert("cur_s".to_string(), Value::from(e.cur_s));
                        o.insert("delta_s".to_string(), Value::from(e.delta_s()));
                        o.insert("share_pct".to_string(), Value::from(e.share_pct));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        obj.insert(
            "alloc".to_string(),
            Value::Array(
                self.alloc
                    .iter()
                    .map(|a| {
                        let mut o = Map::new();
                        o.insert("stage".to_string(), Value::from(a.stage.as_str()));
                        o.insert("base_bytes".to_string(), Value::from(a.base_bytes as f64));
                        o.insert("cur_bytes".to_string(), Value::from(a.cur_bytes as f64));
                        o.insert("base_allocs".to_string(), Value::from(a.base_allocs as f64));
                        o.insert("cur_allocs".to_string(), Value::from(a.cur_allocs as f64));
                        o.insert("base_peak_bytes".to_string(), Value::from(a.base_peak));
                        o.insert("cur_peak_bytes".to_string(), Value::from(a.cur_peak));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        obj.insert(
            "composition".to_string(),
            Value::Array(
                self.composition
                    .iter()
                    .map(|row| {
                        let mut o = Map::new();
                        o.insert("stage".to_string(), Value::from(row.stage.as_str()));
                        o.insert("kind".to_string(), Value::from(row.kind));
                        o.insert("base_s".to_string(), Value::from(row.base_s));
                        o.insert("cur_s".to_string(), Value::from(row.cur_s));
                        o.insert("delta_s".to_string(), Value::from(row.delta_s()));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        Value::Object(obj)
    }

    /// The ranked entries as a renderable [`Table`].
    pub fn entries_table(&self) -> Table {
        let mut table = Table::new(
            "attribution",
            &[
                "rank",
                "kind",
                "stage",
                "name",
                "base_s",
                "cur_s",
                "delta_s",
                "share_pct",
            ],
        );
        for e in &self.entries {
            table.row(vec![
                Cell::int(e.rank as i64),
                Cell::str(e.kind),
                Cell::str(&e.stage),
                Cell::str(&e.name),
                Cell::num(e.base_s, 3),
                Cell::num(e.cur_s, 3),
                Cell::num(e.delta_s(), 3),
                Cell::num(e.share_pct, 1),
            ]);
        }
        table
    }
}

fn self_time_by_key(archive: &RunArchive) -> BTreeMap<(String, String), f64> {
    archive
        .profile()
        .entries()
        .iter()
        .map(|e| ((e.stage.clone(), e.name.clone()), e.self_s))
        .collect()
}

fn composition_by_key(archive: &RunArchive) -> BTreeMap<(String, &'static str), f64> {
    let mut out: BTreeMap<(String, &'static str), f64> = BTreeMap::new();
    let analysis = TraceAnalysis::from_spans(&archive.spans);
    for trace in analysis.traces() {
        for seg in trace.critical_path() {
            let kind = match seg.kind {
                SegmentKind::Service => "service",
                SegmentKind::Queue => "queue",
            };
            *out.entry((seg.stage.clone(), kind)).or_insert(0.0) += seg.seconds();
        }
    }
    out
}

fn alloc_by_stage(archive: &RunArchive) -> BTreeMap<String, (u64, u64, f64)> {
    let mut out: BTreeMap<String, (u64, u64, f64)> = BTreeMap::new();
    for (key, value) in &archive.counters {
        let slot = out.entry(key.stage.clone()).or_insert((0, 0, 0.0));
        if key.name == ALLOC_BYTES_COUNTER {
            slot.0 += value;
        } else if key.name == ALLOC_COUNT_COUNTER {
            slot.1 += value;
        }
    }
    for (key, value) in &archive.gauges {
        if key.name == ALLOC_PEAK_GAUGE {
            out.entry(key.stage.clone()).or_insert((0, 0, 0.0)).2 = *value;
        }
    }
    out.retain(|_, (bytes, allocs, peak)| *bytes > 0 || *allocs > 0 || *peak > 0.0);
    out
}

/// Find the headline `tiles_per_s` row in either the bench `headline`
/// table or the obsctl `run_summary` table: first numeric cell after a
/// `"tiles_per_s"` string cell.
fn headline_value(archive: &RunArchive) -> Option<f64> {
    for name in ["run_summary", "headline"] {
        let Some(table) = archive.table(name) else {
            continue;
        };
        for row in &table.rows {
            let mut is_headline = false;
            for cell in row {
                match cell {
                    Cell::Str(s) if s == "tiles_per_s" => is_headline = true,
                    Cell::Int(v) if is_headline => return Some(*v as f64),
                    Cell::Num { value, .. } if is_headline => return Some(*value),
                    _ => {}
                }
            }
        }
    }
    None
}

/// Diff two archives into a ranked [`AttributionReport`].
///
/// `tolerance` gates every time-valued axis ([`DEFAULT_DIFF_TOLERANCE`]
/// when in doubt); allocation deltas are gated by
/// [`DEFAULT_ALLOC_TOLERANCE`]. The output is deterministic: equal
/// inputs produce an identical report, and ties rank by key order.
pub fn diff_archives(
    base: &RunArchive,
    cur: &RunArchive,
    tolerance: Tolerance,
) -> AttributionReport {
    // Per-(stage, name) self time.
    let base_self = self_time_by_key(base);
    let cur_self = self_time_by_key(cur);
    let mut self_deltas: Vec<SelfTimeDelta> = Vec::new();
    let keys: BTreeSet<_> = base_self.keys().chain(cur_self.keys()).collect();
    for key in keys {
        let b = base_self.get(key).copied().unwrap_or(0.0);
        let c = cur_self.get(key).copied().unwrap_or(0.0);
        if tolerance.exceeded(b, c) {
            self_deltas.push(SelfTimeDelta {
                stage: key.0.clone(),
                name: key.1.clone(),
                base_s: b,
                cur_s: c,
            });
        }
    }

    // Critical-path composition, all rows; queue rows feed the ranking.
    let base_comp = composition_by_key(base);
    let cur_comp = composition_by_key(cur);
    let comp_keys: BTreeSet<_> = base_comp.keys().chain(cur_comp.keys()).collect();
    let mut composition = Vec::new();
    let mut queue_shifts: Vec<CompositionRow> = Vec::new();
    for key in comp_keys {
        let row = CompositionRow {
            stage: key.0.clone(),
            kind: key.1,
            base_s: base_comp.get(key).copied().unwrap_or(0.0),
            cur_s: cur_comp.get(key).copied().unwrap_or(0.0),
        };
        if row.kind == "queue" && tolerance.exceeded(row.base_s, row.cur_s) {
            queue_shifts.push(row.clone());
        }
        composition.push(row);
    }

    // Allocation axes, gated in bytes.
    let base_alloc = alloc_by_stage(base);
    let cur_alloc = alloc_by_stage(cur);
    let alloc_keys: BTreeSet<_> = base_alloc.keys().chain(cur_alloc.keys()).collect();
    let mut alloc = Vec::new();
    for stage in alloc_keys {
        let b = base_alloc.get(stage).copied().unwrap_or((0, 0, 0.0));
        let c = cur_alloc.get(stage).copied().unwrap_or((0, 0, 0.0));
        let gate = DEFAULT_ALLOC_TOLERANCE;
        if gate.exceeded(b.0 as f64, c.0 as f64) || gate.exceeded(b.2, c.2) {
            alloc.push(AllocDelta {
                stage: stage.clone(),
                base_bytes: b.0,
                cur_bytes: c.0,
                base_allocs: b.1,
                cur_allocs: c.1,
                base_peak: b.2,
                cur_peak: c.2,
            });
        }
    }
    alloc.sort_by(|a, b| {
        b.delta_bytes()
            .abs()
            .cmp(&a.delta_bytes().abs())
            .then_with(|| a.stage.cmp(&b.stage))
    });

    // Ranked entries: self-time + queue-wait shifts, share over the
    // summed absolute attributed movement.
    let mut entries: Vec<AttributionEntry> = Vec::new();
    for d in &self_deltas {
        entries.push(AttributionEntry {
            rank: 0,
            kind: "self_time",
            stage: d.stage.clone(),
            name: d.name.clone(),
            base_s: d.base_s,
            cur_s: d.cur_s,
            share_pct: 0.0,
        });
    }
    for q in &queue_shifts {
        entries.push(AttributionEntry {
            rank: 0,
            kind: "queue_wait",
            stage: q.stage.clone(),
            name: String::new(),
            base_s: q.base_s,
            cur_s: q.cur_s,
            share_pct: 0.0,
        });
    }
    let total: f64 = entries.iter().map(|e| e.delta_s().abs()).sum();
    for e in &mut entries {
        e.share_pct = if total > 0.0 {
            e.delta_s().abs() / total * 100.0
        } else {
            0.0
        };
    }
    entries.sort_by(|a, b| {
        b.delta_s()
            .abs()
            .partial_cmp(&a.delta_s().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.kind.cmp(b.kind))
            .then_with(|| a.stage.cmp(&b.stage))
            .then_with(|| a.name.cmp(&b.name))
    });
    for (i, e) in entries.iter_mut().enumerate() {
        e.rank = i + 1;
    }

    let headline = match (headline_value(base), headline_value(cur)) {
        (Some(b), Some(c)) => Some(HeadlineDelta {
            metric: "tiles_per_s".to_string(),
            base: b,
            cur: c,
        }),
        _ => None,
    };

    AttributionReport {
        base_label: base.meta.label.clone(),
        cur_label: cur.meta.label.clone(),
        base_config: base.meta.config_digest.clone(),
        cur_config: cur.meta.config_digest.clone(),
        base_seed: base.meta.sim_seed,
        cur_seed: cur.meta.sim_seed,
        headline,
        entries,
        alloc,
        composition,
        tolerance,
    }
}

/// Render the two archives' folded profiles as a differential
/// collapsed-stack document: one line per stack, `stack base_µs cur_µs`,
/// stacks in lexicographic order. Stacks present in only one run carry a
/// zero on the other side, so downstream difffolded tooling annotates
/// them as pure grow/shrink.
pub fn flame_diff(base: &RunArchive, cur: &RunArchive) -> Result<String, String> {
    let mut stacks: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (frames, micros) in parse_folded(&base.folded)? {
        stacks.entry(frames.join(";")).or_insert((0, 0)).0 += micros;
    }
    for (frames, micros) in parse_folded(&cur.folded)? {
        stacks.entry(frames.join(";")).or_insert((0, 0)).1 += micros;
    }
    let mut out = String::new();
    for (stack, (b, c)) in &stacks {
        out.push_str(&format!("{stack} {b} {c}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{config_digest, RunMeta};
    use crate::{Obs, TraceContext};
    use eoml_simtime::SimTime;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eoml_diff_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// One granule through download → preprocess → inference, with an
    /// adjustable preprocess service time and queue gap before it.
    fn run_obs(preprocess_s: f64, queue_gap_s: f64) -> Obs {
        let obs = Obs::new();
        let t = TraceContext::new("g1");
        let span = |stage: &str, name: &str, a: f64, b: f64| {
            obs.record_sim_span_traced(
                stage,
                name,
                SimTime::from_secs_f64(a),
                SimTime::from_secs_f64(b),
                Some(&t),
                &[],
            );
        };
        span("download", "transfer", 0.0, 10.0);
        let p0 = 10.0 + queue_gap_s;
        span("preprocess", "decompose", p0, p0 + preprocess_s);
        span(
            "inference",
            "infer",
            p0 + preprocess_s,
            p0 + preprocess_s + 5.0,
        );
        obs
    }

    fn archive_of(tag: &str, obs: &Obs, seed: u64, cfg: &str) -> RunArchive {
        let dir = tmpdir(tag);
        let meta = RunMeta::new(tag, &config_digest(cfg), seed);
        RunArchive::record_obs(&dir, &meta, obs, &[], &[]).expect("record")
    }

    #[test]
    fn identical_runs_diff_clean() {
        let a = archive_of("clean_a", &run_obs(20.0, 0.0), 7, "cfg");
        let b = archive_of("clean_b", &run_obs(20.0, 0.0), 7, "cfg");
        let report = diff_archives(&a, &b, DEFAULT_DIFF_TOLERANCE);
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.attributed_count(), 0);
        assert!(!report.config_changed());
        assert!(report.render_text().contains("clean"));
        std::fs::remove_dir_all(&a.dir).ok();
        std::fs::remove_dir_all(&b.dir).ok();
    }

    #[test]
    fn self_time_regression_is_attributed_and_ranked() {
        let a = archive_of("self_a", &run_obs(20.0, 0.0), 7, "cfg");
        let b = archive_of("self_b", &run_obs(30.0, 0.0), 7, "cfg");
        let report = diff_archives(&a, &b, DEFAULT_DIFF_TOLERANCE);
        assert!(!report.is_clean());
        let top = &report.entries[0];
        assert_eq!(top.rank, 1);
        assert_eq!(top.kind, "self_time");
        assert_eq!(top.stage, "preprocess");
        assert_eq!(top.name, "decompose");
        assert!((top.delta_s() - 10.0).abs() < 1e-9);
        assert!(top.share_pct > 50.0);
        // Composition view carries the service-side shift too.
        let svc = report
            .composition
            .iter()
            .find(|r| r.stage == "preprocess" && r.kind == "service")
            .expect("composition row");
        assert!((svc.delta_s() - 10.0).abs() < 1e-9);
        std::fs::remove_dir_all(&a.dir).ok();
        std::fs::remove_dir_all(&b.dir).ok();
    }

    #[test]
    fn queue_growth_is_attributed_as_queue_wait() {
        let a = archive_of("queue_a", &run_obs(20.0, 0.5), 7, "cfg");
        let b = archive_of("queue_b", &run_obs(20.0, 40.0), 7, "cfg");
        let report = diff_archives(&a, &b, DEFAULT_DIFF_TOLERANCE);
        let top = &report.entries[0];
        assert_eq!(top.kind, "queue_wait");
        assert_eq!(top.stage, "preprocess");
        assert!((top.delta_s() - 39.5).abs() < 1e-9);
        std::fs::remove_dir_all(&a.dir).ok();
        std::fs::remove_dir_all(&b.dir).ok();
    }

    #[test]
    fn alloc_deltas_are_gated_in_bytes() {
        let small = Obs::new();
        small.counter_add(ALLOC_BYTES_COUNTER, "preprocess", 10 << 20);
        small.gauge_set(ALLOC_PEAK_GAUGE, "preprocess", (2 << 20) as f64);
        let big = Obs::new();
        big.counter_add(ALLOC_BYTES_COUNTER, "preprocess", 60 << 20);
        big.gauge_set(ALLOC_PEAK_GAUGE, "preprocess", (36 << 20) as f64);
        let a = archive_of("alloc_a", &small, 7, "cfg");
        let b = archive_of("alloc_b", &big, 7, "cfg");
        let report = diff_archives(&a, &b, DEFAULT_DIFF_TOLERANCE);
        assert_eq!(report.alloc.len(), 1);
        let d = &report.alloc[0];
        assert_eq!(d.stage, "preprocess");
        assert_eq!(d.delta_bytes(), 50 << 20);
        assert!((d.delta_peak() - (34 << 20) as f64).abs() < 1.0);
        assert!(report.render_text().contains("alloc:"));
        // Same stores diff clean despite nonzero absolute values.
        let clean = diff_archives(&a, &a, DEFAULT_DIFF_TOLERANCE);
        assert!(clean.is_clean());
        std::fs::remove_dir_all(&a.dir).ok();
        std::fs::remove_dir_all(&b.dir).ok();
    }

    #[test]
    fn report_json_is_schema_stable() {
        let a = archive_of("json_a", &run_obs(20.0, 0.0), 7, "cfg-a");
        let b = archive_of("json_b", &run_obs(30.0, 0.0), 7, "cfg-b");
        let report = diff_archives(&a, &b, DEFAULT_DIFF_TOLERANCE);
        let json = report.to_json();
        assert_eq!(
            json.get("schema_version").and_then(Value::as_f64),
            Some(REPORT_SCHEMA_VERSION as f64)
        );
        assert_eq!(
            json.get("config_changed").and_then(Value::as_bool),
            Some(true)
        );
        let entries = json.get("entries").and_then(Value::as_array).unwrap();
        assert!(!entries.is_empty());
        for key in [
            "rank",
            "kind",
            "stage",
            "name",
            "base_s",
            "cur_s",
            "delta_s",
            "share_pct",
        ] {
            assert!(entries[0].get(key).is_some(), "missing {key}");
        }
        // Determinism: diffing again yields the identical report.
        assert_eq!(report, diff_archives(&a, &b, DEFAULT_DIFF_TOLERANCE));
        std::fs::remove_dir_all(&a.dir).ok();
        std::fs::remove_dir_all(&b.dir).ok();
    }

    #[test]
    fn flame_diff_lists_both_sides_with_zero_fill() {
        let a = archive_of("flame_a", &run_obs(20.0, 0.0), 7, "cfg");
        let only_b = Obs::new();
        only_b.record_sim_span_traced(
            "labeling",
            "write",
            SimTime::from_secs_f64(0.0),
            SimTime::from_secs_f64(1.0),
            None,
            &[],
        );
        let b = archive_of("flame_b", &only_b, 7, "cfg");
        let doc = flame_diff(&a, &b).expect("flame diff");
        let labeling = doc
            .lines()
            .find(|l| l.starts_with("labeling:write"))
            .expect("grow stack present");
        assert!(labeling.ends_with(" 0 1000000"), "{labeling}");
        let download = doc
            .lines()
            .find(|l| l.starts_with("download:transfer"))
            .expect("shrink stack present");
        assert!(download.ends_with(" 10000000 0"), "{download}");
        std::fs::remove_dir_all(&a.dir).ok();
        std::fs::remove_dir_all(&b.dir).ok();
    }
}

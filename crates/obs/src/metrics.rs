//! Metrics registry: counters, gauges, and log-bucketed histograms keyed
//! by `(name, stage)` labels.
//!
//! Histograms use geometric buckets — four per octave starting at 1 µs —
//! so p50/p90/p99 queries are O(buckets) with ≤ 19 % relative error over
//! twelve decades of dynamic range, and the exact maximum is tracked on
//! the side. That resolution is what the paper's Fig. 7 latency table
//! needs (component latencies spread from milliseconds to hours).

use std::collections::BTreeMap;
use std::sync::Mutex;

use eoml_util::stats::Summary;

/// Label pair every metric is keyed by.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (`files`, `retries`, `span_seconds`, ...).
    pub name: String,
    /// Pipeline stage or subsystem label.
    pub stage: String,
}

impl MetricKey {
    /// Build a key from `name` and `stage` labels.
    pub fn new(name: &str, stage: &str) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            stage: stage.to_string(),
        }
    }
}

/// Buckets per factor-of-two of value.
const SUB_BUCKETS: usize = 4;
/// Lower edge of the first bucket (seconds): 1 µs.
const FIRST_BOUND: f64 = 1e-6;
/// Bucket count: 40 octaves × 4 ≈ values up to 2^40 µs ≈ 12 days.
const BUCKETS: usize = 160;
/// Raw samples kept per histogram for exact small-n percentiles. Beyond
/// this the histogram drops the sample buffer and quantiles fall back to
/// the ≤ 19 % log-bucket approximation.
const EXACT_SAMPLE_CAP: usize = 1024;

/// Error merging metrics whose histogram bucket layouts differ.
///
/// Every histogram built by this module shares the compile-time layout,
/// but snapshots can cross process or serialization boundaries (and the
/// layout constants have changed before); a mismatch means an exact
/// bucket-wise sum is impossible and resampling would silently skew
/// quantiles, so the merge is rejected instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError {
    /// Metric the mismatch was found under (empty for bare-histogram merges).
    pub key: Option<MetricKey>,
    /// Bucket count on the receiving side.
    pub ours: usize,
    /// Bucket count on the incoming side.
    pub theirs: usize,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.key {
            Some(key) => write!(
                f,
                "histogram '{}'/'{}' has {} buckets, incoming snapshot has {}: \
                 layouts must match exactly (refusing to resample)",
                key.name, key.stage, self.ours, self.theirs
            ),
            None => write!(
                f,
                "histogram has {} buckets, incoming has {}: layouts must match",
                self.ours, self.theirs
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Log-bucketed histogram with approximate quantiles and an exact max.
///
/// Up to [`EXACT_SAMPLE_CAP`] raw observations are retained on the side,
/// so small histograms answer [`LogHistogram::exact_summary`] with exact
/// order statistics; larger ones keep only the buckets.
///
/// **Bucket-alignment invariant:** every `LogHistogram` shares the same
/// compile-time bucket layout (`FIRST_BOUND`, `SUB_BUCKETS`, `BUCKETS`),
/// so [`LogHistogram::merge`] is an exact element-wise sum of bucket
/// counts. Histograms from a foreign layout (a snapshot taken under
/// different constants) are rejected by [`LogHistogram::try_merge`] with
/// a [`MergeError`] rather than resampled.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
    /// `Some` while every observation is retained (`count ≤ cap`).
    samples: Option<Vec<f64>>,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            max: 0.0,
            samples: Some(Vec::new()),
        }
    }
}

/// Upper bound of bucket `i` (inclusive): `FIRST_BOUND * 2^((i+1)/SUB)`.
fn bucket_bound(i: usize) -> f64 {
    FIRST_BOUND * ((i + 1) as f64 / SUB_BUCKETS as f64).exp2()
}

/// Index of the bucket whose `(lower, upper]` range contains `v`.
fn bucket_index(v: f64) -> usize {
    if v <= FIRST_BOUND {
        return 0;
    }
    let idx = ((v / FIRST_BOUND).log2() * SUB_BUCKETS as f64).ceil() as usize;
    idx.saturating_sub(1).min(BUCKETS - 1)
}

impl LogHistogram {
    /// Record one observation (seconds, bytes, whatever the metric is).
    pub fn observe(&mut self, v: f64) {
        let v = if v.is_finite() && v >= 0.0 { v } else { 0.0 };
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
        if let Some(samples) = self.samples.as_mut() {
            if samples.len() < EXACT_SAMPLE_CAP {
                samples.push(v);
            } else {
                self.samples = None;
            }
        }
    }

    /// Every raw observation, while `count ≤ 1024`; `None` once the
    /// sample buffer has been dropped.
    pub fn exact_samples(&self) -> Option<&[f64]> {
        self.samples.as_deref()
    }

    /// Exact order statistics over the retained samples, or `None` when
    /// the histogram outgrew the sample buffer (fall back to
    /// [`LogHistogram::quantile`]).
    pub fn exact_summary(&self) -> Option<Summary> {
        match self.samples.as_deref() {
            Some([]) | None => None,
            Some(samples) => Some(Summary::from_samples(samples.to_vec())),
        }
    }

    /// Bucket count of this histogram's layout.
    pub fn bucket_len(&self) -> usize {
        self.counts.len()
    }

    /// Fold `other` into `self`, rejecting mismatched bucket layouts.
    /// Exact for counts/sum/max when the layouts agree; the exact-sample
    /// buffer survives only if the union still fits.
    pub fn try_merge(&mut self, other: &LogHistogram) -> Result<(), MergeError> {
        if self.counts.len() != other.counts.len() {
            return Err(MergeError {
                key: None,
                ours: self.counts.len(),
                theirs: other.counts.len(),
            });
        }
        self.merge(other);
        Ok(())
    }

    /// Fold `other` into `self`. Exact for counts/sum/max because every
    /// histogram shares the fixed global bucket layout (see type docs);
    /// the exact-sample buffer survives only if the union still fits.
    /// Callers holding histograms of unknown provenance should use
    /// [`LogHistogram::try_merge`] — this method silently truncates a
    /// mismatched layout.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
        self.samples = match (self.samples.take(), other.samples.as_ref()) {
            (Some(mut a), Some(b)) if a.len() + b.len() <= EXACT_SAMPLE_CAP => {
                a.extend_from_slice(b);
                Some(a)
            }
            _ => None,
        };
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact maximum observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate quantile `q in [0, 1]`: the upper bound of the bucket
    /// holding the q-th observation, clamped to the exact max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (approximate).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile (approximate).
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile (approximate).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// The histogram of observations recorded since `baseline` was taken
    /// of this same histogram: bucket-wise saturating subtraction. Used by
    /// rolling-window aggregators to answer "what did this window's
    /// latency distribution look like" from two cumulative snapshots.
    ///
    /// The delta keeps no exact-sample buffer (samples cannot be
    /// un-merged), and `max` is the cumulative maximum — an upper bound
    /// on the window's true maximum, exact whenever the window contains
    /// the all-time max.
    pub fn saturating_diff(&self, baseline: &LogHistogram) -> LogHistogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c.saturating_sub(baseline.counts.get(i).copied().unwrap_or(0)))
            .collect();
        LogHistogram {
            counts,
            count: self.count.saturating_sub(baseline.count),
            sum: (self.sum - baseline.sum).max(0.0),
            max: self.max,
            samples: None,
        }
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs up to the highest
    /// occupied bucket — the Prometheus `le` series.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let last = match self.counts.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(last + 1);
        let mut cum = 0u64;
        for i in 0..=last {
            cum += self.counts[i];
            out.push((bucket_bound(i), cum));
        }
        out
    }
}

/// Whether `stage` belongs to the slice named by `prefix`: either the
/// exact stage, or a sub-stage extending it across a `/` boundary
/// (`tenant:t1` matches `tenant:t1` and `tenant:t1/download`, but never
/// `tenant:t10` — raw string prefixing would leak sibling labels that
/// merely share leading characters).
pub fn stage_matches_prefix(stage: &str, prefix: &str) -> bool {
    match stage.strip_prefix(prefix) {
        Some(rest) => rest.is_empty() || rest.starts_with('/'),
        None => false,
    }
}

/// Point-in-time copy of every metric, for exporters.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: Vec<(MetricKey, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(MetricKey, f64)>,
    /// Histograms.
    pub histograms: Vec<(MetricKey, LogHistogram)>,
}

impl MetricsSnapshot {
    /// The sub-snapshot whose stage labels match `prefix` (see
    /// [`stage_matches_prefix`]) — the slice a multi-tenant service uses
    /// to report one tenant (all its metrics carry a `tenant:<id>`-style
    /// stage label) without the rest of the registry bleeding in.
    pub fn filter_stage_prefix(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| stage_matches_prefix(&k.stage, prefix))
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| stage_matches_prefix(&k.stage, prefix))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| stage_matches_prefix(&k.stage, prefix))
                .cloned()
                .collect(),
        }
    }
}

/// Thread-safe registry of counters, gauges, and histograms.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<MetricKey, u64>>,
    gauges: Mutex<BTreeMap<MetricKey, f64>>,
    histograms: Mutex<BTreeMap<MetricKey, LogHistogram>>,
}

impl MetricsRegistry {
    /// Add `delta` to the `(name, stage)` counter, returning the new total.
    pub fn counter_add(&self, name: &str, stage: &str, delta: u64) -> u64 {
        let mut map = self.counters.lock().expect("counters poisoned");
        let slot = map.entry(MetricKey::new(name, stage)).or_insert(0);
        *slot += delta;
        *slot
    }

    /// Current value of a counter, if it exists.
    pub fn counter_value(&self, name: &str, stage: &str) -> Option<u64> {
        self.counters
            .lock()
            .expect("counters poisoned")
            .get(&MetricKey::new(name, stage))
            .copied()
    }

    /// Set the `(name, stage)` gauge.
    pub fn gauge_set(&self, name: &str, stage: &str, value: f64) {
        self.gauges
            .lock()
            .expect("gauges poisoned")
            .insert(MetricKey::new(name, stage), value);
    }

    /// Current value of a gauge, if it exists.
    pub fn gauge_value(&self, name: &str, stage: &str) -> Option<f64> {
        self.gauges
            .lock()
            .expect("gauges poisoned")
            .get(&MetricKey::new(name, stage))
            .copied()
    }

    /// Record an observation into the `(name, stage)` histogram.
    pub fn observe(&self, name: &str, stage: &str, value: f64) {
        self.histograms
            .lock()
            .expect("histograms poisoned")
            .entry(MetricKey::new(name, stage))
            .or_default()
            .observe(value);
    }

    /// Copy of one histogram, if it exists.
    pub fn histogram(&self, name: &str, stage: &str) -> Option<LogHistogram> {
        self.histograms
            .lock()
            .expect("histograms poisoned")
            .get(&MetricKey::new(name, stage))
            .cloned()
    }

    /// Point-in-time copy of everything, sorted by key.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("counters poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("gauges poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("histograms poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// A lean snapshot for periodic pollers: every counter and gauge, but
    /// histograms only for the named families. Rolling-window aggregators
    /// snapshot on every scheduler quantum; cloning each histogram's
    /// bucket array and sample buffer at that cadence would dominate the
    /// roll cost, so they opt in per family instead.
    pub fn snapshot_lean(&self, histogram_names: &[String]) -> MetricsSnapshot {
        let histograms = if histogram_names.is_empty() {
            Vec::new()
        } else {
            self.histograms
                .lock()
                .expect("histograms poisoned")
                .iter()
                .filter(|(k, _)| histogram_names.contains(&k.name))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("counters poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("gauges poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms,
        }
    }

    /// Fold another registry's snapshot into this registry, so per-worker
    /// or per-facility `Obs` instances aggregate into one campaign view:
    /// counters add, gauges take the incoming value (last write wins),
    /// histograms merge bucket-wise (see [`LogHistogram::try_merge`]).
    ///
    /// A snapshot whose histogram bucket layout differs from ours (e.g.
    /// taken under different layout constants across a process boundary)
    /// is rejected with [`MergeError`] *before* anything is applied — a
    /// failed merge leaves this registry untouched.
    pub fn merge_snapshot(&self, other: &MetricsSnapshot) -> Result<(), MergeError> {
        let mut histograms = self.histograms.lock().expect("histograms poisoned");
        // Validate every histogram pair up front so rejection is atomic.
        for (key, theirs) in &other.histograms {
            if let Some(ours) = histograms.get(key) {
                if ours.bucket_len() != theirs.bucket_len() {
                    return Err(MergeError {
                        key: Some(key.clone()),
                        ours: ours.bucket_len(),
                        theirs: theirs.bucket_len(),
                    });
                }
            } else if theirs.bucket_len() != BUCKETS {
                return Err(MergeError {
                    key: Some(key.clone()),
                    ours: BUCKETS,
                    theirs: theirs.bucket_len(),
                });
            }
        }
        {
            let mut counters = self.counters.lock().expect("counters poisoned");
            for (key, v) in &other.counters {
                *counters.entry(key.clone()).or_insert(0) += v;
            }
        }
        {
            let mut gauges = self.gauges.lock().expect("gauges poisoned");
            for (key, v) in &other.gauges {
                gauges.insert(key.clone(), *v);
            }
        }
        for (key, h) in &other.histograms {
            histograms
                .entry(key.clone())
                .or_default()
                .try_merge(h)
                .expect("layouts validated above");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_geometric_and_indexable() {
        // The bucket containing v must have lower < v <= upper.
        for v in [1e-7, 1e-6, 2e-6, 1e-3, 0.5, 1.0, 3.7, 1000.0, 9e4] {
            let i = bucket_index(v);
            let upper = bucket_bound(i);
            assert!(v <= upper * (1.0 + 1e-12), "v={v} upper={upper}");
            if i > 0 {
                let lower = bucket_bound(i - 1);
                assert!(v > lower * (1.0 - 1e-12), "v={v} lower={lower}");
            }
        }
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let mut h = LogHistogram::default();
        for i in 1..=1000 {
            h.observe(i as f64 / 1000.0); // 1 ms .. 1 s, uniform
        }
        assert_eq!(h.count(), 1000);
        // One sub-bucket spans a factor of 2^(1/4) ≈ 1.19.
        assert!((h.p50() / 0.5 - 1.0).abs() < 0.2, "p50={}", h.p50());
        assert!((h.p90() / 0.9 - 1.0).abs() < 0.2, "p90={}", h.p90());
        assert!((h.p99() / 0.99 - 1.0).abs() < 0.2, "p99={}", h.p99());
        assert_eq!(h.max(), 1.0);
    }

    #[test]
    fn cumulative_buckets_end_at_total_count() {
        let mut h = LogHistogram::default();
        for v in [0.001, 0.002, 0.004, 1.0, 2.0] {
            h.observe(v);
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().unwrap().1, 5);
        // Cumulative counts never decrease.
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn exact_samples_survive_until_cap_then_drop() {
        let mut h = LogHistogram::default();
        for i in 0..EXACT_SAMPLE_CAP {
            h.observe(i as f64);
        }
        let s = h.exact_summary().expect("within cap");
        assert_eq!(s.len(), EXACT_SAMPLE_CAP);
        assert_eq!(s.max(), (EXACT_SAMPLE_CAP - 1) as f64);
        h.observe(5.0);
        assert!(h.exact_samples().is_none());
        assert!(h.exact_summary().is_none());
        assert_eq!(h.count(), EXACT_SAMPLE_CAP as u64 + 1);
    }

    #[test]
    fn merge_is_exact_bucketwise_sum() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        let mut whole = LogHistogram::default();
        for v in [0.001, 0.02, 0.3] {
            a.observe(v);
            whole.observe(v);
        }
        for v in [4.0, 50.0] {
            b.observe(v);
            whole.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count(), 5);
        assert_eq!(a.max(), 50.0);
        let s = a.exact_summary().unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.min(), 0.001);
    }

    #[test]
    fn merge_snapshot_aggregates_two_registries() {
        let a = MetricsRegistry::default();
        let b = MetricsRegistry::default();
        a.counter_add("files", "download", 3);
        b.counter_add("files", "download", 4);
        b.counter_add("granules", "preprocess", 2);
        a.gauge_set("active_workers", "download", 1.0);
        b.gauge_set("active_workers", "download", 7.0);
        a.observe("file_seconds", "download", 1.0);
        b.observe("file_seconds", "download", 3.0);
        a.merge_snapshot(&b.snapshot()).expect("aligned layouts");
        assert_eq!(a.counter_value("files", "download"), Some(7));
        assert_eq!(a.counter_value("granules", "preprocess"), Some(2));
        assert_eq!(a.gauge_value("active_workers", "download"), Some(7.0));
        let h = a.histogram("file_seconds", "download").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 4.0);
    }

    /// A histogram whose layout predates (or postdates) ours: fewer
    /// buckets, as if `BUCKETS` differed across a process boundary.
    fn foreign_layout_histogram() -> LogHistogram {
        let mut h = LogHistogram {
            counts: vec![0; BUCKETS / 2],
            ..LogHistogram::default()
        };
        h.observe(0.5);
        h
    }

    #[test]
    fn try_merge_rejects_misaligned_layouts() {
        let mut ours = LogHistogram::default();
        ours.observe(1.0);
        let theirs = foreign_layout_histogram();
        let err = ours.try_merge(&theirs).unwrap_err();
        assert_eq!(err.ours, BUCKETS);
        assert_eq!(err.theirs, BUCKETS / 2);
        assert!(err.to_string().contains("layouts must match"));
        // The receiving histogram is untouched by the failed merge.
        assert_eq!(ours.count(), 1);
    }

    #[test]
    fn merge_snapshot_rejects_misaligned_histograms_atomically() {
        let reg = MetricsRegistry::default();
        reg.counter_add("files", "download", 3);
        reg.observe("file_seconds", "download", 1.0);

        let mut snap = MetricsSnapshot::default();
        snap.counters.push((MetricKey::new("files", "download"), 4));
        snap.gauges
            .push((MetricKey::new("active_workers", "download"), 9.0));
        snap.histograms.push((
            MetricKey::new("file_seconds", "download"),
            foreign_layout_histogram(),
        ));

        let err = reg.merge_snapshot(&snap).unwrap_err();
        assert_eq!(err.key, Some(MetricKey::new("file_seconds", "download")));
        assert!(err.to_string().contains("file_seconds"));
        // Atomic rejection: counters and gauges were not applied either.
        assert_eq!(reg.counter_value("files", "download"), Some(3));
        assert_eq!(reg.gauge_value("active_workers", "download"), None);
        assert_eq!(
            reg.histogram("file_seconds", "download").unwrap().count(),
            1
        );

        // A misaligned histogram under a *new* key is also rejected.
        let reg2 = MetricsRegistry::default();
        let err2 = reg2.merge_snapshot(&snap).unwrap_err();
        assert_eq!(err2.ours, BUCKETS);
    }

    #[test]
    fn percentiles_cross_from_exact_to_log_buckets_at_the_cap() {
        let mut h = LogHistogram::default();
        // Exactly at the cap: every sample retained, percentiles exact.
        for i in 1..=EXACT_SAMPLE_CAP {
            h.observe(i as f64);
        }
        let exact = h.exact_summary().expect("at the cap, still exact");
        let exact_p50 = exact.percentile(50.0);
        assert!((exact_p50 - 512.5).abs() < 1e-9, "p50={exact_p50}");

        // One more observation crosses into log-bucket approximation.
        h.observe((EXACT_SAMPLE_CAP + 1) as f64);
        assert!(h.exact_summary().is_none());
        let approx_p50 = h.p50();
        // The approximation must stay within one sub-bucket (≤ 19 %
        // relative error) of the exact value it replaced.
        let rel = (approx_p50 - exact_p50).abs() / exact_p50;
        assert!(
            rel <= 0.19,
            "approx={approx_p50} exact={exact_p50} rel={rel}"
        );
        // Count and max stay exact across the crossover.
        assert_eq!(h.count(), EXACT_SAMPLE_CAP as u64 + 1);
        assert_eq!(h.max(), (EXACT_SAMPLE_CAP + 1) as f64);
    }

    #[test]
    fn stage_prefix_matching_stops_at_the_delimiter_boundary() {
        // The t1/t10 collision: raw starts_with would leak t10 into t1.
        assert!(stage_matches_prefix("tenant:t1", "tenant:t1"));
        assert!(stage_matches_prefix("tenant:t1/download", "tenant:t1"));
        assert!(!stage_matches_prefix("tenant:t10", "tenant:t1"));
        assert!(!stage_matches_prefix("tenant:t10/download", "tenant:t1"));
        assert!(!stage_matches_prefix("tenant:t2", "tenant:t1"));

        let reg = MetricsRegistry::default();
        reg.counter_add("granules", "tenant:t1", 3);
        reg.counter_add("granules", "tenant:t10", 40);
        reg.gauge_set("queue_depth", "tenant:t10", 2.0);
        reg.observe("lease_wait_seconds", "tenant:t10", 1.0);
        let slice = reg.snapshot().filter_stage_prefix("tenant:t1");
        assert_eq!(slice.counters.len(), 1);
        assert_eq!(slice.counters[0].0.stage, "tenant:t1");
        assert_eq!(slice.counters[0].1, 3);
        assert!(slice.gauges.is_empty());
        assert!(slice.histograms.is_empty());
    }

    #[test]
    fn saturating_diff_isolates_the_window() {
        let mut h = LogHistogram::default();
        for v in [0.001, 0.01] {
            h.observe(v);
        }
        let baseline = h.clone();
        for v in [0.1, 1.0, 10.0] {
            h.observe(v);
        }
        let delta = h.saturating_diff(&baseline);
        assert_eq!(delta.count(), 3);
        assert!((delta.sum() - 11.1).abs() < 1e-9);
        // Quantiles reflect only the window's observations.
        assert!(delta.p50() >= 0.1 * 0.8, "p50={}", delta.p50());
        // The delta carries no sample buffer and diffing against a newer
        // snapshot saturates at zero instead of underflowing.
        assert!(delta.exact_samples().is_none());
        let empty = baseline.saturating_diff(&h);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.sum(), 0.0);
    }

    #[test]
    fn lean_snapshot_skips_unrequested_histograms() {
        let reg = MetricsRegistry::default();
        reg.counter_add("granules", "tenant:a", 2);
        reg.gauge_set("queue_depth", "tenant:a", 1.0);
        reg.observe("lease_wait_seconds", "tenant:a", 0.5);
        reg.observe("file_seconds", "download", 2.0);
        let lean = reg.snapshot_lean(&["lease_wait_seconds".to_string()]);
        assert_eq!(lean.counters.len(), 1);
        assert_eq!(lean.gauges.len(), 1);
        assert_eq!(lean.histograms.len(), 1);
        assert_eq!(lean.histograms[0].0.name, "lease_wait_seconds");
        assert!(reg.snapshot_lean(&[]).histograms.is_empty());
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let reg = MetricsRegistry::default();
        assert_eq!(reg.counter_add("files", "download", 3), 3);
        assert_eq!(reg.counter_add("files", "download", 2), 5);
        assert_eq!(reg.counter_value("files", "download"), Some(5));
        assert_eq!(reg.counter_value("files", "preprocess"), None);
        reg.gauge_set("active_workers", "download", 6.0);
        assert_eq!(reg.gauge_value("active_workers", "download"), Some(6.0));
        reg.observe("file_seconds", "download", 12.5);
        let h = reg.histogram("file_seconds", "download").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 12.5);
    }
}

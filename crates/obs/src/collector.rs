//! Lock-sharded span collector.
//!
//! Spans are pushed from arbitrary threads (real runs drive the compute
//! endpoint and executor pools concurrently), so the backing store is a
//! fixed set of `Mutex<Vec<SpanRecord>>` shards indexed by the recording
//! thread's dense id. Threads contend only when they hash to the same
//! shard; with 16 shards and the pools this workspace runs (≤ 32 OS
//! threads), pushes are effectively uncontended. `snapshot` is the slow
//! path — export time — and locks each shard once.

use crate::span::SpanRecord;
use std::sync::Mutex;

const SHARDS: usize = 16;

pub(crate) struct Collector {
    shards: Vec<Mutex<Vec<SpanRecord>>>,
}

impl Collector {
    pub(crate) fn new() -> Collector {
        Collector {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    pub(crate) fn push(&self, record: SpanRecord) {
        let shard = (record.tid as usize) % SHARDS;
        self.shards[shard]
            .lock()
            .expect("collector shard poisoned")
            .push(record);
    }

    /// Copy out every recorded span, ordered by allocation id (which is
    /// also open order — stable across shard interleaving).
    pub(crate) fn snapshot(&self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(
                shard
                    .lock()
                    .expect("collector shard poisoned")
                    .iter()
                    .cloned(),
            );
        }
        all.sort_by_key(|r| r.id);
        all
    }

    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("collector shard poisoned").len())
            .sum()
    }
}

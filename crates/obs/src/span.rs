//! Span records and the RAII guard that closes them.
//!
//! A span is one timed region of pipeline work, labelled `(stage, name)`
//! and carrying *both* clocks: wall time (nanoseconds since the [`Obs`]
//! epoch, always present) and simulation time (present when the caller
//! knows it — batch/streaming campaigns run entirely in virtual time, so
//! their spans are sim-stamped; real runs are wall-stamped only).
//!
//! Hierarchy comes from a thread-local stack of open guard ids: a guard
//! opened while another is open on the same thread records the outer one
//! as its parent. Sim-time spans recorded directly (no guard) also pick
//! up the innermost open guard as parent, so virtual work nests under
//! the wall-clock phase that produced it.
//!
//! [`Obs`]: crate::Obs

use eoml_simtime::SimTime;

/// One closed span: a `(stage, name)` labelled interval with wall-clock
/// bounds, optional sim-time bounds, and free-form key/value attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within one [`crate::Obs`] instance (allocation order).
    pub id: u64,
    /// Id of the innermost span open on the same thread when this one
    /// started, if any.
    pub parent: Option<u64>,
    /// Pipeline stage label (`download`, `preprocess`, `monitor`,
    /// `inference`, `shipment`, or a subsystem name like `journal`).
    pub stage: String,
    /// What happened within the stage (`transfer`, `flow_action`, ...).
    pub name: String,
    /// Dense id of the recording thread (Chrome-trace `tid`).
    pub tid: u64,
    /// Simulation-time start, when the span ran in virtual time.
    pub sim_start: Option<SimTime>,
    /// Simulation-time end, when the span ran in virtual time.
    pub sim_end: Option<SimTime>,
    /// Wall-clock start, nanoseconds since the collector epoch.
    pub wall_start_ns: u64,
    /// Wall-clock end, nanoseconds since the collector epoch.
    pub wall_end_ns: u64,
    /// Id of the pipeline item (granule) this span belongs to, when the
    /// caller carried a [`crate::TraceContext`] through the work.
    pub trace_id: Option<String>,
    /// Free-form key/value attributes.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Wall-clock duration in seconds.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_end_ns.saturating_sub(self.wall_start_ns) as f64 * 1e-9
    }

    /// Simulation-time duration in seconds, if sim-stamped.
    pub fn sim_seconds(&self) -> Option<f64> {
        match (self.sim_start, self.sim_end) {
            (Some(s), Some(e)) => Some((e - s).as_secs_f64()),
            _ => None,
        }
    }

    /// The duration the span "means": sim time when present (virtual
    /// campaigns), wall time otherwise (real runs).
    pub fn duration_seconds(&self) -> f64 {
        self.sim_seconds().unwrap_or_else(|| self.wall_seconds())
    }

    /// Attribute lookup.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// RAII guard for a wall-clock span: created by [`crate::Obs::span`],
/// records the finished [`SpanRecord`] into the collector on drop.
///
/// Cheap by design — creation is two atomic increments plus a
/// thread-local push; all allocation and locking happens once, at drop.
pub struct SpanGuard<'a> {
    pub(crate) obs: &'a crate::Obs,
    pub(crate) id: u64,
    pub(crate) parent: Option<u64>,
    pub(crate) stage: String,
    pub(crate) name: String,
    pub(crate) wall_start_ns: u64,
    pub(crate) sim_start: Option<SimTime>,
    pub(crate) sim_end: Option<SimTime>,
    pub(crate) trace_id: Option<String>,
    pub(crate) attrs: Vec<(String, String)>,
}

impl SpanGuard<'_> {
    /// This span's id (to correlate with records or child spans).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach a key/value attribute.
    pub fn attr(&mut self, key: &str, value: impl ToString) {
        self.attrs.push((key.to_string(), value.to_string()));
    }

    /// Stamp the simulation-time interval this wall-clock span covered.
    pub fn set_sim(&mut self, start: SimTime, end: SimTime) {
        self.sim_start = Some(start);
        self.sim_end = Some(end);
    }

    /// Tag this span with the pipeline item it belongs to.
    pub fn set_trace(&mut self, trace: &crate::TraceContext) {
        self.trace_id = Some(trace.id().to_string());
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.obs.finish_guard(self);
    }
}

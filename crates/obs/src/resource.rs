//! Resource accounting: a counting global allocator plus scoped guards
//! that attribute bytes allocated, allocation counts, and peak in-scope
//! usage to a pipeline stage — the memory half of the paper's Fig. 7
//! per-component breakdown.
//!
//! The allocator type [`CountingAlloc`] is always compiled (so it is
//! testable under the default feature set); *installing* it is the
//! binary's choice. Binaries built with the `alloc-profile` feature can
//! call [`install_counting_allocator!`], and any binary (including an
//! integration-test binary) may declare it directly:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: eoml_obs::resource::CountingAlloc =
//!     eoml_obs::resource::CountingAlloc::new();
//! ```
//!
//! When no counting allocator is installed every delta reads zero and
//! [`ResourceGuard`] degrades to a no-op: nothing is written into the
//! registry, so reports never show fake zeros.
//!
//! Counters are process-global atomics, so attribution is *scoped*, not
//! *thread-bound*: a guard charges everything allocated anywhere in the
//! process while it is open. That is exactly right for the pipeline
//! drivers here (one stage pumps at a time inside a discrete-event
//! simulation) and a documented approximation for overlapping real runs,
//! where peaks attribute to the innermost open guard.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::metrics::MetricsSnapshot;
use crate::table::{Cell, Table};
use crate::Obs;

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static IN_USE_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of `IN_USE_BYTES` since the last guard reset.
static SCOPE_PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// Counter names [`ResourceGuard`] writes into the registry.
pub const ALLOC_BYTES_COUNTER: &str = "alloc_bytes";
/// Allocation-count counter name.
pub const ALLOC_COUNT_COUNTER: &str = "allocs";
/// Peak in-scope usage gauge name.
pub const ALLOC_PEAK_GAUGE: &str = "alloc_peak_bytes";

/// Counting wrapper around the system allocator. Each (de)allocation is
/// a handful of relaxed atomic ops on top of `System`.
pub struct CountingAlloc;

impl CountingAlloc {
    /// `const` constructor for `#[global_allocator]` statics.
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

fn record_alloc(bytes: u64) {
    ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    let in_use = IN_USE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    SCOPE_PEAK_BYTES.fetch_max(in_use, Ordering::Relaxed);
}

fn record_dealloc(bytes: u64) {
    FREED_BYTES.fetch_add(bytes, Ordering::Relaxed);
    // Saturating: a guard-free program may free allocations made before
    // the counters existed only in theory (the allocator counts from
    // process start), but stay defensive.
    let _ = IN_USE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(bytes))
    });
}

// SAFETY: defers all allocation to `System`; bookkeeping is atomic
// counters only and never allocates, so there is no reentrancy.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            record_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            record_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        record_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            record_dealloc(layout.size() as u64);
            record_alloc(new_size as u64);
        }
        new_ptr
    }
}

/// Install [`CountingAlloc`] as the process global allocator. Only
/// exported when `eoml-obs` is built with the `alloc-profile` feature,
/// so plain library consumers never pay the per-allocation bookkeeping.
#[cfg(feature = "alloc-profile")]
#[macro_export]
macro_rules! install_counting_allocator {
    () => {
        #[global_allocator]
        static EOML_COUNTING_ALLOC: $crate::resource::CountingAlloc =
            $crate::resource::CountingAlloc::new();
    };
}

/// Whether a counting allocator is live in this process. Heuristic but
/// reliable: by the time any caller can ask, an installed counting
/// allocator has already counted the caller's own allocations.
pub fn counting_active() -> bool {
    ALLOC_COUNT.load(Ordering::Relaxed) > 0
}

/// Point-in-time reading of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Total bytes ever allocated.
    pub allocated_bytes: u64,
    /// Total bytes ever freed.
    pub freed_bytes: u64,
    /// Total allocation calls.
    pub allocation_count: u64,
    /// Bytes currently live.
    pub in_use_bytes: u64,
}

/// Read the current allocator counters (all zero when no counting
/// allocator is installed).
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocated_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        freed_bytes: FREED_BYTES.load(Ordering::Relaxed),
        allocation_count: ALLOC_COUNT.load(Ordering::Relaxed),
        in_use_bytes: IN_USE_BYTES.load(Ordering::Relaxed),
    }
}

/// What one [`ResourceGuard`] scope cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceReport {
    /// Stage the scope was attributed to.
    pub stage: String,
    /// Component name within the stage.
    pub name: String,
    /// Bytes allocated while the scope was open.
    pub allocated_bytes: u64,
    /// Allocation calls while the scope was open.
    pub allocation_count: u64,
    /// Bytes freed while the scope was open.
    pub freed_bytes: u64,
    /// Peak live bytes observed while the scope was open.
    pub peak_in_use_bytes: u64,
}

impl ResourceReport {
    /// Net change in live bytes over the scope (negative = the scope
    /// freed more than it allocated).
    pub fn net_bytes(&self) -> i64 {
        self.allocated_bytes as i64 - self.freed_bytes as i64
    }
}

/// RAII scope that attributes allocator activity to a `(stage, name)`
/// label pair, writing `alloc_bytes` / `allocs` counters and an
/// `alloc_peak_bytes` gauge into the attached [`Obs`] registry on drop.
///
/// Opening a guard resets the process-wide scope peak to the current
/// live-byte count, so nested guards attribute peaks to the innermost
/// open scope.
pub struct ResourceGuard {
    obs: Option<Arc<Obs>>,
    stage: String,
    name: String,
    start: AllocSnapshot,
    finished: bool,
}

impl ResourceGuard {
    /// Open a scope that reports into `obs` on drop.
    pub fn enter(obs: Arc<Obs>, stage: &str, name: &str) -> ResourceGuard {
        ResourceGuard::new(Some(obs), stage, name)
    }

    /// Open a scope that only measures (no registry write); read the
    /// result with [`ResourceGuard::finish`].
    pub fn detached(stage: &str, name: &str) -> ResourceGuard {
        ResourceGuard::new(None, stage, name)
    }

    fn new(obs: Option<Arc<Obs>>, stage: &str, name: &str) -> ResourceGuard {
        let start = snapshot();
        SCOPE_PEAK_BYTES.store(start.in_use_bytes, Ordering::Relaxed);
        ResourceGuard {
            obs,
            stage: stage.to_string(),
            name: name.to_string(),
            start,
            finished: false,
        }
    }

    /// Measure the scope so far without closing it.
    pub fn measure(&self) -> ResourceReport {
        let now = snapshot();
        ResourceReport {
            stage: self.stage.clone(),
            name: self.name.clone(),
            allocated_bytes: now
                .allocated_bytes
                .saturating_sub(self.start.allocated_bytes),
            allocation_count: now
                .allocation_count
                .saturating_sub(self.start.allocation_count),
            freed_bytes: now.freed_bytes.saturating_sub(self.start.freed_bytes),
            peak_in_use_bytes: SCOPE_PEAK_BYTES
                .load(Ordering::Relaxed)
                .max(self.start.in_use_bytes),
        }
    }

    /// Close the scope and return its report (also records it, like drop
    /// would).
    pub fn finish(mut self) -> ResourceReport {
        let report = self.measure();
        self.record(&report);
        self.finished = true;
        report
    }

    fn record(&self, report: &ResourceReport) {
        // Without a counting allocator every delta is zero — skip the
        // registry write so absent instrumentation is absent, not zero.
        if report.allocation_count == 0 && !counting_active() {
            return;
        }
        let Some(obs) = &self.obs else { return };
        let metrics = obs.metrics();
        metrics.counter_add(ALLOC_BYTES_COUNTER, &self.stage, report.allocated_bytes);
        metrics.counter_add(ALLOC_COUNT_COUNTER, &self.stage, report.allocation_count);
        let peak = report.peak_in_use_bytes as f64;
        let current = metrics
            .gauge_value(ALLOC_PEAK_GAUGE, &self.stage)
            .unwrap_or(0.0);
        if peak > current {
            metrics.gauge_set(ALLOC_PEAK_GAUGE, &self.stage, peak);
        }
    }
}

impl Drop for ResourceGuard {
    fn drop(&mut self) {
        if !self.finished {
            let report = self.measure();
            self.record(&report);
        }
    }
}

/// Fig.-7-style memory breakdown over the registry's resource counters:
/// one row per stage with allocated MB, allocation count, and peak live
/// MB. Empty when no [`ResourceGuard`] ever reported (e.g. the counting
/// allocator is not installed).
pub fn memory_table(snapshot: &MetricsSnapshot) -> Table {
    let mut table = Table::new("fig7_memory", &["stage", "alloc_mb", "allocs", "peak_mb"]);
    let mut stages: Vec<&str> = snapshot
        .counters
        .iter()
        .filter(|(k, _)| k.name == ALLOC_BYTES_COUNTER)
        .map(|(k, _)| k.stage.as_str())
        .collect();
    stages.sort_unstable();
    stages.dedup();
    for stage in stages {
        let get = |name: &str| {
            snapshot
                .counters
                .iter()
                .find(|(k, _)| k.name == name && k.stage == stage)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let peak = snapshot
            .gauges
            .iter()
            .find(|(k, _)| k.name == ALLOC_PEAK_GAUGE && k.stage == stage)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        table.row(vec![
            Cell::str(stage),
            Cell::num(get(ALLOC_BYTES_COUNTER) as f64 / (1024.0 * 1024.0), 2),
            Cell::int(get(ALLOC_COUNT_COUNTER) as i64),
            Cell::num(peak / (1024.0 * 1024.0), 2),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    // NOTE: these unit tests run without a counting allocator installed
    // (the lib test binary keeps the system allocator), so they cover the
    // zero/no-op path; tests/resource.rs installs CountingAlloc and
    // covers live counting.

    #[test]
    fn detached_guard_without_allocator_reads_zero() {
        let guard = ResourceGuard::detached("preprocess", "granule");
        let big: Vec<u8> = vec![7; 1 << 16];
        let report = guard.finish();
        assert_eq!(report.allocated_bytes, 0);
        assert_eq!(report.allocation_count, 0);
        drop(big);
    }

    #[test]
    fn guard_without_activity_writes_nothing() {
        let obs = Obs::shared();
        drop(ResourceGuard::enter(
            Arc::clone(&obs),
            "preprocess",
            "granule",
        ));
        let snap = obs.metrics().snapshot();
        assert!(snap
            .counters
            .iter()
            .all(|(k, _)| k.name != ALLOC_BYTES_COUNTER));
    }

    #[test]
    fn memory_table_rows_follow_resource_counters() {
        let reg = MetricsRegistry::default();
        reg.counter_add(ALLOC_BYTES_COUNTER, "preprocess", 3 * 1024 * 1024);
        reg.counter_add(ALLOC_COUNT_COUNTER, "preprocess", 42);
        reg.gauge_set(ALLOC_PEAK_GAUGE, "preprocess", (5 * 1024 * 1024) as f64);
        reg.counter_add(ALLOC_BYTES_COUNTER, "download", 1024 * 1024);
        let table = memory_table(&reg.snapshot());
        assert_eq!(table.name, "fig7_memory");
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[1][0], Cell::str("preprocess"));
        assert_eq!(table.rows[1][1], Cell::num(3.0, 2));
        assert_eq!(table.rows[1][2], Cell::int(42));
        assert_eq!(table.rows[1][3], Cell::num(5.0, 2));
    }

    #[test]
    fn memory_table_is_empty_without_counters() {
        let reg = MetricsRegistry::default();
        reg.counter_add("spans_closed", "download", 3);
        assert!(memory_table(&reg.snapshot()).rows.is_empty());
    }
}

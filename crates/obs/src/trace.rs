//! Per-item trace identity.
//!
//! A [`TraceContext`] names one unit of pipeline work — for the MODIS
//! campaigns, one *granule* — and rides along every span that work
//! produces, from download through preprocess, monitor, inference, and
//! shipment. The analysis layer ([`crate::analysis`]) groups the span
//! store by trace id to reconstruct per-granule end-to-end traces.
//!
//! The id is an `Arc<str>` so cloning a context into the many closures a
//! discrete-event campaign threads it through is one refcount bump.

use std::fmt;
use std::sync::Arc;

/// Identity of one traced pipeline item (granule), cheap to clone.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceContext {
    id: Arc<str>,
}

impl TraceContext {
    /// Context with the given id. For granules the natural id is the
    /// granule display form (`MOD.A2022001.0610`), which every artifact
    /// name in the pipeline embeds.
    pub fn new(id: impl AsRef<str>) -> TraceContext {
        TraceContext {
            id: Arc::from(id.as_ref()),
        }
    }

    /// The trace id string.
    pub fn id(&self) -> &str {
        &self.id
    }
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for TraceContext {
    fn from(s: &str) -> TraceContext {
        TraceContext::new(s)
    }
}

impl From<String> for TraceContext {
    fn from(s: String) -> TraceContext {
        TraceContext::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_round_trips_and_clones_cheaply() {
        let t = TraceContext::new("MOD.A2022001.0610");
        let u = t.clone();
        assert_eq!(t, u);
        assert_eq!(t.id(), "MOD.A2022001.0610");
        assert_eq!(format!("{t}"), "MOD.A2022001.0610");
        assert_eq!(TraceContext::from("x"), TraceContext::new("x"));
    }
}

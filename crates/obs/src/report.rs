//! `obs-report`: render a recorded run as the paper's evaluation
//! figures — Fig. 6 (per-stage active-worker timeline) and Fig. 7
//! (component latency breakdown) — as [`Table`]s for the terminal and
//! `BENCH_*.json` documents for the figure trajectory.
//!
//! The breakdown is computed from the span store, so its per-stage span
//! counts agree with the registry's `spans_closed` counters by
//! construction; [`ObsReport::verify_against`] asserts exactly that and
//! is run by the acceptance tests.

use std::collections::BTreeMap;

use eoml_util::stats::Summary;
use serde_json::{Map, Value};

use crate::analysis::{stage_timelines, StageTimeline};
use crate::metrics::MetricsSnapshot;
use crate::profile::SpanProfile;
use crate::resource::memory_table;
use crate::span::SpanRecord;
use crate::table::{Cell, Table};
use crate::Obs;

/// Sample points in the Fig. 6 timeline table.
const TIMELINE_SAMPLES: usize = 24;

/// Rows in the hot-path self-time table.
const PROFILE_TOP_N: usize = 15;

/// Fig. 6 + Fig. 7 style report over one recorded run.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Fig. 6: active workers per stage over sampled time.
    pub fig6_timeline: Table,
    /// Fig. 7: per-(stage, name) latency breakdown.
    pub fig7_breakdown: Table,
    /// Per-stage utilization/idle summary backing Fig. 6.
    pub stage_stats: Table,
    /// Top-N hot paths by exclusive self time (see [`SpanProfile`]).
    pub profile_hot: Table,
    /// Fig.-7-style memory breakdown from the resource counters; empty
    /// when no [`crate::ResourceGuard`] reported (e.g. the counting
    /// allocator is not installed).
    pub memory: Table,
    /// Per-stage span totals the breakdown table sums to.
    stage_span_counts: BTreeMap<String, u64>,
}

impl ObsReport {
    /// Build the report from everything an [`Obs`] hub recorded,
    /// including the memory breakdown from its metrics registry.
    pub fn from_obs(obs: &Obs) -> ObsReport {
        ObsReport::from_parts(&obs.spans(), &obs.metrics().snapshot())
    }

    /// Build the report from a span snapshot alone (the memory table
    /// stays empty — resource counters live in the registry).
    pub fn from_spans(spans: &[SpanRecord]) -> ObsReport {
        ObsReport::from_parts(spans, &MetricsSnapshot::default())
    }

    /// The per-tenant slice of a shared hub: the report built only from
    /// spans and metrics whose stage label matches `prefix` on a
    /// delimiter-aware boundary (see
    /// [`crate::metrics::stage_matches_prefix`] — tenant `t1` never
    /// captures `t10`). A multi-tenant service records every tenant's
    /// telemetry under a `tenant:<id>` stage label into one [`Obs`], then
    /// serves each tenant its own report through this constructor.
    pub fn for_stage_prefix(obs: &Obs, prefix: &str) -> ObsReport {
        let spans: Vec<SpanRecord> = obs
            .spans()
            .into_iter()
            .filter(|s| crate::metrics::stage_matches_prefix(&s.stage, prefix))
            .collect();
        let snapshot = obs.metrics().snapshot().filter_stage_prefix(prefix);
        ObsReport::from_parts(&spans, &snapshot)
    }

    /// Build the report from a span snapshot plus a metrics snapshot.
    pub fn from_parts(spans: &[SpanRecord], snapshot: &MetricsSnapshot) -> ObsReport {
        let timelines = stage_timelines(spans);
        ObsReport {
            fig6_timeline: fig6_table(&timelines),
            fig7_breakdown: fig7_table(spans),
            stage_stats: stage_stats_table(&timelines),
            profile_hot: SpanProfile::from_spans(spans).top_table(PROFILE_TOP_N),
            memory: memory_table(snapshot),
            stage_span_counts: span_counts(spans),
        }
    }

    /// Per-stage span totals (every span, marks included).
    pub fn stage_span_counts(&self) -> &BTreeMap<String, u64> {
        &self.stage_span_counts
    }

    /// Check the report's per-stage totals against the registry's
    /// `spans_closed` counters; returns the mismatches (empty = agree).
    pub fn verify_against(&self, snapshot: &MetricsSnapshot) -> Vec<String> {
        let mut problems = Vec::new();
        let counters: BTreeMap<&str, u64> = snapshot
            .counters
            .iter()
            .filter(|(k, _)| k.name == "spans_closed")
            .map(|(k, v)| (k.stage.as_str(), *v))
            .collect();
        for (stage, &count) in &self.stage_span_counts {
            match counters.get(stage.as_str()) {
                Some(&expected) if expected == count => {}
                Some(&expected) => problems.push(format!(
                    "stage '{stage}': report has {count} spans, registry counted {expected}"
                )),
                None => problems.push(format!(
                    "stage '{stage}': report has {count} spans, registry has no counter"
                )),
            }
        }
        for (stage, &expected) in &counters {
            if !self.stage_span_counts.contains_key(*stage) {
                problems.push(format!(
                    "stage '{stage}': registry counted {expected} spans, report has none"
                ));
            }
        }
        problems
    }

    /// Terminal rendering of every table, `indent` spaces deep. The
    /// memory breakdown appears only when resource counters exist.
    pub fn render_text(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut out = format!(
            "{pad}Fig. 6 — active workers per stage:\n{}\n{pad}Stage utilization:\n{}\n{pad}Fig. 7 — component latency breakdown:\n{}\n{pad}Hot paths by self time:\n{}",
            self.fig6_timeline.render_text(indent + 2),
            self.stage_stats.render_text(indent + 2),
            self.fig7_breakdown.render_text(indent + 2),
            self.profile_hot.render_text(indent + 2),
        );
        if !self.memory.rows.is_empty() {
            out.push_str(&format!(
                "\n{pad}Memory breakdown (counting allocator):\n{}",
                self.memory.render_text(indent + 2)
            ));
        }
        out
    }

    /// One JSON document holding every table.
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("fig6_timeline".to_string(), self.fig6_timeline.to_json());
        obj.insert("fig7_breakdown".to_string(), self.fig7_breakdown.to_json());
        obj.insert("stage_stats".to_string(), self.stage_stats.to_json());
        obj.insert("profile_hot".to_string(), self.profile_hot.to_json());
        if !self.memory.rows.is_empty() {
            obj.insert("memory".to_string(), self.memory.to_json());
        }
        Value::Object(obj)
    }

    /// Write `BENCH_<table>.json` for each table into `dir`; returns the
    /// paths written. The memory table is written only when it has rows,
    /// so runs without the counting allocator don't emit an empty file.
    pub fn write_json(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Vec<std::path::PathBuf>> {
        let dir = dir.as_ref();
        let mut paths = vec![
            self.fig6_timeline.write_json(dir)?,
            self.stage_stats.write_json(dir)?,
            self.fig7_breakdown.write_json(dir)?,
            self.profile_hot.write_json(dir)?,
        ];
        if !self.memory.rows.is_empty() {
            paths.push(self.memory.write_json(dir)?);
        }
        Ok(paths)
    }
}

fn span_counts(spans: &[SpanRecord]) -> BTreeMap<String, u64> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for span in spans {
        *counts.entry(span.stage.clone()).or_insert(0) += 1;
    }
    counts
}

/// Fig. 6: `t_s` plus one active-worker column per stage, sampled on a
/// uniform grid across the run.
fn fig6_table(timelines: &[StageTimeline]) -> Table {
    let mut columns: Vec<String> = vec!["t_s".to_string()];
    columns.extend(timelines.iter().map(|t| t.stage.clone()));
    let column_refs: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
    let mut table = Table::new("fig6_timeline", &column_refs);
    if timelines.is_empty() {
        return table;
    }
    let start = timelines
        .iter()
        .map(|t| t.first_s)
        .fold(f64::INFINITY, f64::min);
    let end = timelines
        .iter()
        .map(|t| t.last_s)
        .fold(f64::NEG_INFINITY, f64::max);
    if end <= start {
        return table;
    }
    for i in 0..=TIMELINE_SAMPLES {
        let t = start + (end - start) * i as f64 / TIMELINE_SAMPLES as f64;
        let mut row = vec![Cell::num(t, 1)];
        row.extend(timelines.iter().map(|tl| Cell::int(tl.active_at(t) as i64)));
        table.row(row);
    }
    table
}

/// Fig. 7: per-(stage, name) count, total seconds, and exact mean/p50/
/// p95/max over span durations.
fn fig7_table(spans: &[SpanRecord]) -> Table {
    let mut table = Table::new(
        "fig7_breakdown",
        &[
            "stage",
            "component",
            "count",
            "total_s",
            "mean_s",
            "p50_s",
            "p95_s",
            "max_s",
        ],
    );
    let mut groups: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    for span in spans {
        groups
            .entry((span.stage.clone(), span.name.clone()))
            .or_default()
            .push(span.duration_seconds());
    }
    for ((stage, name), durations) in groups {
        let count = durations.len() as i64;
        let total: f64 = durations.iter().sum();
        let summary = Summary::from_samples(durations);
        table.row(vec![
            Cell::str(stage),
            Cell::str(name),
            Cell::int(count),
            Cell::num(total, 3),
            Cell::num(summary.mean(), 3),
            Cell::num(summary.median(), 3),
            Cell::num(summary.percentile(95.0), 3),
            Cell::num(summary.max(), 3),
        ]);
    }
    table
}

/// Per-stage utilization behind Fig. 6: extent, busy/idle split, peak.
fn stage_stats_table(timelines: &[StageTimeline]) -> Table {
    let mut table = Table::new(
        "fig6_stage_stats",
        &[
            "stage",
            "first_s",
            "last_s",
            "busy_s",
            "idle_s",
            "idle_gaps",
            "peak",
            "utilization",
        ],
    );
    for tl in timelines {
        table.row(vec![
            Cell::str(&tl.stage),
            Cell::num(tl.first_s, 1),
            Cell::num(tl.last_s, 1),
            Cell::num(tl.busy_seconds, 1),
            Cell::num(tl.idle_seconds, 1),
            Cell::int(tl.idle_gaps.len() as i64),
            Cell::int(tl.peak as i64),
            Cell::num(tl.utilization(), 3),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceContext;
    use eoml_simtime::SimTime;

    fn build_obs() -> Obs {
        let obs = Obs::new();
        let t = TraceContext::new("g1");
        for (stage, name, a, b) in [
            ("download", "file", 0.0, 10.0),
            ("download", "file", 2.0, 12.0),
            ("preprocess", "granule", 12.0, 30.0),
            ("inference", "infer", 32.0, 40.0),
        ] {
            obs.record_sim_span_traced(
                stage,
                name,
                SimTime::from_secs_f64(a),
                SimTime::from_secs_f64(b),
                Some(&t),
                &[],
            );
        }
        obs
    }

    #[test]
    fn report_tables_cover_stages_and_agree_with_registry() {
        let obs = build_obs();
        let report = ObsReport::from_obs(&obs);
        assert!(report
            .fig6_timeline
            .columns
            .contains(&"download".to_string()));
        assert_eq!(report.fig6_timeline.rows.len(), TIMELINE_SAMPLES + 1);
        assert_eq!(report.fig7_breakdown.rows.len(), 3); // 3 (stage,name) groups
        assert_eq!(report.stage_stats.rows.len(), 3);
        assert_eq!(report.stage_span_counts()["download"], 2);
        // The acceptance check: report totals == registry counters.
        assert!(report.verify_against(&obs.metrics().snapshot()).is_empty());
        // A doctored snapshot is caught.
        let mut snap = obs.metrics().snapshot();
        for (key, value) in snap.counters.iter_mut() {
            if key.name == "spans_closed" && key.stage == "download" {
                *value += 1;
            }
        }
        assert_eq!(report.verify_against(&snap).len(), 1);
    }

    #[test]
    fn report_renders_text_and_writes_json() {
        let obs = build_obs();
        let report = ObsReport::from_obs(&obs);
        let text = report.render_text(0);
        assert!(text.contains("Fig. 6"));
        assert!(text.contains("Fig. 7"));
        assert!(text.contains("preprocess"));
        assert!(text.contains("Hot paths by self time"));
        // No resource counters in this run: the memory table is omitted.
        assert!(!text.contains("Memory breakdown"));
        let dir = std::env::temp_dir().join(format!("obs_report_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let paths = report.write_json(&dir).unwrap();
        assert_eq!(paths.len(), 4);
        assert!(paths
            .iter()
            .any(|p| p.ends_with("BENCH_profile_self_time.json")));
        for path in &paths {
            let body = std::fs::read_to_string(path).unwrap();
            let value: Value = serde_json::from_str(&body).unwrap();
            assert!(value.get("columns").is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stage_prefix_slice_isolates_one_tenant() {
        let obs = build_obs(); // records download/preprocess/inference stages
        for (tenant, a, b) in [
            ("tenant:acme", 0.0, 5.0),
            ("tenant:acme", 5.0, 6.0),
            ("tenant:zip", 1.0, 2.0),
        ] {
            obs.record_sim_span_secs(tenant, "quantum", a, b);
        }
        obs.metrics().counter_add("granules", "tenant:acme", 7);
        obs.metrics().counter_add("granules", "tenant:zip", 1);

        let acme = ObsReport::for_stage_prefix(&obs, "tenant:acme");
        assert_eq!(acme.stage_span_counts().len(), 1);
        assert_eq!(acme.stage_span_counts()["tenant:acme"], 2);
        // The slice verifies against the equally sliced registry, and the
        // pipeline stages / other tenants are invisible in it.
        let snap = obs.metrics().snapshot().filter_stage_prefix("tenant:acme");
        assert!(acme.verify_against(&snap).is_empty());
        assert_eq!(snap.counters.len(), 2); // granules + spans_closed
        assert!(!acme.render_text(0).contains("tenant:zip"));
        assert!(!acme.render_text(0).contains("download"));
    }

    #[test]
    fn stage_prefix_slice_never_captures_sibling_with_shared_prefix() {
        let obs = Obs::new();
        obs.record_sim_span_secs("tenant:t1", "quantum", 0.0, 5.0);
        obs.record_sim_span_secs("tenant:t10", "quantum", 0.0, 50.0);
        obs.metrics().counter_add("granules", "tenant:t1", 1);
        obs.metrics().counter_add("granules", "tenant:t10", 99);
        let t1 = ObsReport::for_stage_prefix(&obs, "tenant:t1");
        assert_eq!(t1.stage_span_counts().len(), 1);
        assert_eq!(t1.stage_span_counts()["tenant:t1"], 1);
        assert!(!t1.render_text(0).contains("tenant:t10"));
        let snap = obs.metrics().snapshot().filter_stage_prefix("tenant:t1");
        assert!(t1.verify_against(&snap).is_empty());
    }

    #[test]
    fn report_includes_memory_table_when_counters_exist() {
        let obs = build_obs();
        obs.metrics().counter_add("alloc_bytes", "preprocess", 1024);
        obs.metrics().counter_add("allocs", "preprocess", 2);
        let report = ObsReport::from_obs(&obs);
        assert_eq!(report.memory.rows.len(), 1);
        assert!(report.render_text(0).contains("Memory breakdown"));
        // Profile table: the 3 (stage,name) groups, hottest first —
        // download has two 10 s spans (20 s self) vs preprocess's 18 s.
        assert_eq!(report.profile_hot.rows.len(), 3);
        assert_eq!(report.profile_hot.rows[0][0], Cell::str("download"));
        assert_eq!(report.profile_hot.rows[1][0], Cell::str("preprocess"));
    }
}

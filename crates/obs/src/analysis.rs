//! Post-hoc trace analysis: per-granule end-to-end traces, critical
//! paths, service/queue latency attribution, straggler detection, and
//! per-stage active-worker timelines (the paper's Fig. 6).
//!
//! The input is the flat span store ([`crate::Obs::spans`]). Spans tagged
//! with a `trace_id` (see [`crate::TraceContext`]) group into one
//! [`GranuleTrace`] per pipeline item; untagged spans still feed the
//! stage timelines, which are item-agnostic.
//!
//! **Clock domain:** all analysis runs in "trace seconds" — the sim
//! clock when a span is sim-stamped (virtual campaigns), the wall clock
//! otherwise (real runs). A single trace should stay in one domain;
//! mixing them produces intervals that never overlap sensibly.

use std::collections::BTreeMap;

use eoml_util::stats::Summary;

use crate::span::SpanRecord;
use crate::Obs;

/// Comparison slack for interval endpoints, in seconds.
const EPS: f64 = 1e-9;

/// Seconds-domain bounds of a span: sim clock when stamped, wall
/// otherwise.
pub(crate) fn span_bounds(s: &SpanRecord) -> (f64, f64) {
    match (s.sim_start, s.sim_end) {
        (Some(a), Some(b)) => (a.as_secs_f64(), b.as_secs_f64()),
        _ => (s.wall_start_ns as f64 * 1e-9, s.wall_end_ns as f64 * 1e-9),
    }
}

/// What a critical-path segment spent its time on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Work was running (covered by at least one span).
    Service,
    /// Nothing ran; the item was waiting for the next stage to pick it
    /// up. Attributed to the stage of the next span to start.
    Queue,
}

/// One segment of a granule's critical path. Segments tile the trace's
/// `[start, end]` interval exactly: service while a span covers the
/// sweep point (ties broken toward the span reaching furthest), queue
/// across uncovered gaps.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// Service or queueing delay.
    pub kind: SegmentKind,
    /// Stage charged with this segment.
    pub stage: String,
    /// Span name for service segments; the *next* span's name for queue
    /// segments (what the item was waiting for).
    pub name: String,
    /// Segment start, trace seconds.
    pub start_s: f64,
    /// Segment end, trace seconds.
    pub end_s: f64,
}

impl PathSegment {
    /// Segment length in seconds.
    pub fn seconds(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Critical-path time charged to one stage, split service vs. queue.
/// Summing `service_s + queue_s` over all stages reproduces the trace's
/// end-to-end latency exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAttribution {
    /// Stage label.
    pub stage: String,
    /// Seconds the critical path spent inside this stage's spans.
    pub service_s: f64,
    /// Seconds the critical path spent waiting for this stage to start.
    pub queue_s: f64,
}

/// Every span one pipeline item (granule) produced, reconstructed from
/// the flat span store by trace id.
#[derive(Debug, Clone)]
pub struct GranuleTrace {
    /// The item's trace id (granule display form).
    pub trace_id: String,
    /// The item's spans, sorted by start then by descending end.
    pub spans: Vec<SpanRecord>,
}

impl GranuleTrace {
    /// Earliest span start, trace seconds.
    pub fn start_s(&self) -> f64 {
        self.spans
            .iter()
            .map(|s| span_bounds(s).0)
            .fold(f64::INFINITY, f64::min)
    }

    /// Latest span end, trace seconds.
    pub fn end_s(&self) -> f64 {
        self.spans
            .iter()
            .map(|s| span_bounds(s).1)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// End-to-end latency: last span end minus first span start.
    pub fn e2e_seconds(&self) -> f64 {
        if self.spans.is_empty() {
            return 0.0;
        }
        self.end_s() - self.start_s()
    }

    /// Stages this trace touched, in pipeline-agnostic sorted order.
    pub fn stages(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.spans.iter().map(|s| s.stage.as_str()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total span-seconds this trace spent in `stage` (sum over spans;
    /// overlapping spans count double — this is work, not wall coverage).
    pub fn stage_service_seconds(&self, stage: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| {
                let (a, b) = span_bounds(s);
                b - a
            })
            .sum()
    }

    /// The trace's critical path: a time sweep from first start to last
    /// end. At each point the active span reaching furthest contributes
    /// a service segment; uncovered gaps become queue segments charged
    /// to the next span to start. Zero-length spans (marks) never carry
    /// service, but they *split* queue segments — a gap before a monitor
    /// trigger mark is monitor queueing, the gap after it belongs to the
    /// stage the mark handed off to.
    pub fn critical_path(&self) -> Vec<PathSegment> {
        let mut iv: Vec<(f64, f64, &SpanRecord)> = self
            .spans
            .iter()
            .map(|s| {
                let (a, b) = span_bounds(s);
                (a, b, s)
            })
            .collect();
        if iv.is_empty() {
            return Vec::new();
        }
        iv.sort_by(|x, y| {
            x.0.partial_cmp(&y.0)
                .unwrap()
                .then(y.1.partial_cmp(&x.1).unwrap())
        });
        let end = iv.iter().map(|s| s.1).fold(f64::NEG_INFINITY, f64::max);
        let mut t = iv[0].0;
        let mut path = Vec::new();
        while t < end - EPS {
            let active = iv
                .iter()
                .filter(|(a, b, _)| *a <= t + EPS && *b > t + EPS)
                .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap());
            if let Some(&(_, b, s)) = active {
                path.push(PathSegment {
                    kind: SegmentKind::Service,
                    stage: s.stage.clone(),
                    name: s.name.clone(),
                    start_s: t,
                    end_s: b,
                });
                t = b;
            } else {
                let next = iv
                    .iter()
                    .filter(|(a, _, _)| *a > t + EPS)
                    .min_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
                match next {
                    Some(&(a, _, s)) => {
                        path.push(PathSegment {
                            kind: SegmentKind::Queue,
                            stage: s.stage.clone(),
                            name: s.name.clone(),
                            start_s: t,
                            end_s: a,
                        });
                        t = a;
                    }
                    None => break,
                }
            }
        }
        path
    }

    /// Critical-path latency attribution per stage (service vs. queue).
    /// The per-stage sums tile [`GranuleTrace::e2e_seconds`] exactly.
    pub fn stage_attribution(&self) -> Vec<StageAttribution> {
        let mut map: BTreeMap<String, StageAttribution> = BTreeMap::new();
        for seg in self.critical_path() {
            let slot = map
                .entry(seg.stage.clone())
                .or_insert_with(|| StageAttribution {
                    stage: seg.stage.clone(),
                    service_s: 0.0,
                    queue_s: 0.0,
                });
            match seg.kind {
                SegmentKind::Service => slot.service_s += seg.seconds(),
                SegmentKind::Queue => slot.queue_s += seg.seconds(),
            }
        }
        map.into_values().collect()
    }

    /// The stage charged with the most critical-path service time —
    /// "which stage is the bottleneck for this granule".
    pub fn bottleneck(&self) -> Option<StageAttribution> {
        self.stage_attribution()
            .into_iter()
            .max_by(|a, b| a.service_s.partial_cmp(&b.service_s).unwrap())
    }
}

/// Straggler-detection knobs.
#[derive(Debug, Clone)]
pub struct StragglerConfig {
    /// An item is a straggler in a stage when its service seconds exceed
    /// `multiple ×` the stage median across traces.
    pub multiple: f64,
    /// Minimum traces touching a stage before medians mean anything.
    pub min_samples: usize,
}

impl Default for StragglerConfig {
    fn default() -> StragglerConfig {
        StragglerConfig {
            multiple: 2.0,
            min_samples: 4,
        }
    }
}

/// One detected straggler: a trace far beyond its stage's median.
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// Stage where the item lagged.
    pub stage: String,
    /// The lagging item.
    pub trace_id: String,
    /// The item's service seconds in the stage.
    pub seconds: f64,
    /// The stage's median service seconds across all traces (exact
    /// percentile via [`Summary`]).
    pub median_s: f64,
}

/// All per-granule traces reconstructed from a span store.
#[derive(Debug, Default)]
pub struct TraceAnalysis {
    traces: BTreeMap<String, GranuleTrace>,
}

impl TraceAnalysis {
    /// Group a span snapshot by trace id. Untagged spans are ignored
    /// here (they still feed [`stage_timelines`]).
    pub fn from_spans(spans: &[SpanRecord]) -> TraceAnalysis {
        let mut traces: BTreeMap<String, GranuleTrace> = BTreeMap::new();
        for span in spans {
            let Some(id) = span.trace_id.as_deref() else {
                continue;
            };
            traces
                .entry(id.to_string())
                .or_insert_with(|| GranuleTrace {
                    trace_id: id.to_string(),
                    spans: Vec::new(),
                })
                .spans
                .push(span.clone());
        }
        for trace in traces.values_mut() {
            trace.spans.sort_by(|x, y| {
                let (xa, xb) = span_bounds(x);
                let (ya, yb) = span_bounds(y);
                xa.partial_cmp(&ya)
                    .unwrap()
                    .then(yb.partial_cmp(&xb).unwrap())
                    .then(x.id.cmp(&y.id))
            });
        }
        TraceAnalysis { traces }
    }

    /// Analyze everything an [`Obs`] hub recorded.
    pub fn from_obs(obs: &Obs) -> TraceAnalysis {
        TraceAnalysis::from_spans(&obs.spans())
    }

    /// Number of distinct traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when no span carried a trace id.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Sorted trace ids.
    pub fn trace_ids(&self) -> Vec<&str> {
        self.traces.keys().map(|k| k.as_str()).collect()
    }

    /// One item's trace, if recorded.
    pub fn trace(&self, id: &str) -> Option<&GranuleTrace> {
        self.traces.get(id)
    }

    /// Iterate all traces in id order.
    pub fn traces(&self) -> impl Iterator<Item = &GranuleTrace> {
        self.traces.values()
    }

    /// Exact distribution of per-trace service seconds in `stage`, over
    /// the traces that touched it.
    pub fn stage_service_summary(&self, stage: &str) -> Option<Summary> {
        let samples: Vec<f64> = self
            .traces
            .values()
            .map(|t| t.stage_service_seconds(stage))
            .filter(|&s| s > 0.0)
            .collect();
        if samples.is_empty() {
            None
        } else {
            Some(Summary::from_samples(samples))
        }
    }

    /// Items beyond `cfg.multiple ×` their stage's median service time,
    /// sorted by stage then by descending excess.
    pub fn stragglers(&self, cfg: &StragglerConfig) -> Vec<Straggler> {
        let mut stages: Vec<&str> = self
            .traces
            .values()
            .flat_map(|t| t.spans.iter().map(|s| s.stage.as_str()))
            .collect();
        stages.sort_unstable();
        stages.dedup();

        let mut out = Vec::new();
        for stage in stages {
            let per_trace: Vec<(&str, f64)> = self
                .traces
                .values()
                .map(|t| (t.trace_id.as_str(), t.stage_service_seconds(stage)))
                .filter(|&(_, s)| s > 0.0)
                .collect();
            if per_trace.len() < cfg.min_samples {
                continue;
            }
            let summary =
                Summary::from_samples(per_trace.iter().map(|&(_, s)| s).collect::<Vec<_>>());
            let median = summary.median();
            if median <= 0.0 {
                continue;
            }
            let mut hits: Vec<Straggler> = per_trace
                .into_iter()
                .filter(|&(_, s)| s > cfg.multiple * median)
                .map(|(id, s)| Straggler {
                    stage: stage.to_string(),
                    trace_id: id.to_string(),
                    seconds: s,
                    median_s: median,
                })
                .collect();
            hits.sort_by(|a, b| b.seconds.partial_cmp(&a.seconds).unwrap());
            out.extend(hits);
        }
        out
    }
}

/// Active-worker timeline for one stage (one row of the paper's Fig. 6):
/// concurrency change-points plus utilization and idle-gap stats.
#[derive(Debug, Clone)]
pub struct StageTimeline {
    /// Stage label.
    pub stage: String,
    /// `(time, active count after time)` at every change point.
    pub points: Vec<(f64, usize)>,
    /// First span start in the stage.
    pub first_s: f64,
    /// Last span end in the stage.
    pub last_s: f64,
    /// Seconds with ≥ 1 span active (interval union).
    pub busy_seconds: f64,
    /// Seconds with 0 spans active inside `[first_s, last_s]`.
    pub idle_seconds: f64,
    /// The idle gaps themselves, `(start, end)`.
    pub idle_gaps: Vec<(f64, f64)>,
    /// Peak concurrency.
    pub peak: usize,
}

impl StageTimeline {
    /// Active span count at time `t` (0 outside the stage's extent).
    pub fn active_at(&self, t: f64) -> usize {
        if t < self.first_s - EPS {
            return 0;
        }
        let idx = self.points.partition_point(|&(pt, _)| pt <= t + EPS);
        if idx == 0 {
            0
        } else {
            self.points[idx - 1].1
        }
    }

    /// Fraction of `[first_s, last_s]` with at least one active span.
    pub fn utilization(&self) -> f64 {
        let extent = self.last_s - self.first_s;
        if extent <= 0.0 {
            0.0
        } else {
            self.busy_seconds / extent
        }
    }
}

/// Build one [`StageTimeline`] per stage from a span snapshot (traced or
/// not). Zero-length spans (marks) are excluded — they carry no worker
/// occupancy.
pub fn stage_timelines(spans: &[SpanRecord]) -> Vec<StageTimeline> {
    let mut per_stage: BTreeMap<&str, Vec<(f64, f64)>> = BTreeMap::new();
    for span in spans {
        let (a, b) = span_bounds(span);
        if b > a + EPS {
            per_stage
                .entry(span.stage.as_str())
                .or_default()
                .push((a, b));
        }
    }
    let mut out = Vec::new();
    for (stage, intervals) in per_stage {
        let mut events: Vec<(f64, i64)> = Vec::with_capacity(intervals.len() * 2);
        for &(a, b) in &intervals {
            events.push((a, 1));
            events.push((b, -1));
        }
        // Ends sort before starts at equal times so back-to-back spans
        // don't fabricate a concurrency-2 instant.
        events.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap().then(x.1.cmp(&y.1)));
        let first_s = events.first().map(|e| e.0).unwrap_or(0.0);
        let last_s = events.last().map(|e| e.0).unwrap_or(0.0);

        let mut points = Vec::new();
        let mut idle_gaps = Vec::new();
        let mut busy = 0.0;
        let mut active: i64 = 0;
        let mut peak: i64 = 0;
        let mut prev_t = first_s;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            if t > prev_t + EPS {
                if active > 0 {
                    busy += t - prev_t;
                } else {
                    idle_gaps.push((prev_t, t));
                }
            }
            while i < events.len() && (events[i].0 - t).abs() <= EPS {
                active += events[i].1;
                i += 1;
            }
            peak = peak.max(active);
            points.push((t, active.max(0) as usize));
            prev_t = t;
        }
        let idle_seconds = idle_gaps.iter().map(|(a, b)| b - a).sum();
        out.push(StageTimeline {
            stage: stage.to_string(),
            points,
            first_s,
            last_s,
            busy_seconds: busy,
            idle_seconds,
            idle_gaps,
            peak: peak.max(0) as usize,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceContext;
    use eoml_simtime::SimTime;

    fn sim_span(obs: &Obs, stage: &str, name: &str, start: f64, end: f64, trace: &TraceContext) {
        obs.record_sim_span_traced(
            stage,
            name,
            SimTime::from_secs_f64(start),
            SimTime::from_secs_f64(end),
            Some(trace),
            &[],
        );
    }

    #[test]
    fn critical_path_tiles_the_trace_and_charges_queues() {
        let obs = Obs::new();
        let t = TraceContext::new("g1");
        // download 0..10, gap, preprocess 12..20, overlapping longer
        // preprocess 15..25, gap, inference 30..40.
        sim_span(&obs, "download", "file", 0.0, 10.0, &t);
        sim_span(&obs, "preprocess", "granule", 12.0, 20.0, &t);
        sim_span(&obs, "preprocess", "granule", 15.0, 25.0, &t);
        sim_span(&obs, "inference", "infer", 30.0, 40.0, &t);
        let analysis = TraceAnalysis::from_obs(&obs);
        let trace = analysis.trace("g1").unwrap();
        assert!((trace.e2e_seconds() - 40.0).abs() < 1e-9);

        let path = trace.critical_path();
        let kinds: Vec<(SegmentKind, &str)> =
            path.iter().map(|s| (s.kind, s.stage.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (SegmentKind::Service, "download"),
                (SegmentKind::Queue, "preprocess"),
                (SegmentKind::Service, "preprocess"),
                (SegmentKind::Service, "preprocess"),
                (SegmentKind::Queue, "inference"),
                (SegmentKind::Service, "inference"),
            ]
        );
        // Segments tile [0, 40] exactly.
        let total: f64 = path.iter().map(|s| s.seconds()).sum();
        assert!((total - 40.0).abs() < 1e-9);
        let attribution = trace.stage_attribution();
        let pp = attribution
            .iter()
            .find(|a| a.stage == "preprocess")
            .unwrap();
        assert!((pp.service_s - 13.0).abs() < 1e-9); // 12..25
        assert!((pp.queue_s - 2.0).abs() < 1e-9); // 10..12
        let inf = attribution.iter().find(|a| a.stage == "inference").unwrap();
        assert!((inf.queue_s - 5.0).abs() < 1e-9); // 25..30
        assert_eq!(trace.bottleneck().unwrap().stage, "preprocess");
    }

    #[test]
    fn zero_length_marks_split_queue_attribution() {
        let obs = Obs::new();
        let t = TraceContext::new("g1");
        sim_span(&obs, "preprocess", "granule", 0.0, 10.0, &t);
        sim_span(&obs, "monitor", "trigger", 13.0, 13.0, &t); // mark
        sim_span(&obs, "inference", "infer", 15.0, 20.0, &t);
        let analysis = TraceAnalysis::from_obs(&obs);
        let path = analysis.trace("g1").unwrap().critical_path();
        let queues: Vec<(&str, f64)> = path
            .iter()
            .filter(|s| s.kind == SegmentKind::Queue)
            .map(|s| (s.stage.as_str(), s.seconds()))
            .collect();
        assert_eq!(queues.len(), 2);
        assert_eq!(queues[0].0, "monitor");
        assert!((queues[0].1 - 3.0).abs() < 1e-9);
        assert_eq!(queues[1].0, "inference");
        assert!((queues[1].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stragglers_found_beyond_multiple_of_median() {
        let obs = Obs::new();
        for (i, dur) in [10.0, 11.0, 9.0, 10.5, 50.0].iter().enumerate() {
            let t = TraceContext::new(format!("g{i}"));
            sim_span(&obs, "download", "file", 0.0, *dur, &t);
        }
        let analysis = TraceAnalysis::from_obs(&obs);
        let stragglers = analysis.stragglers(&StragglerConfig::default());
        assert_eq!(stragglers.len(), 1);
        assert_eq!(stragglers[0].trace_id, "g4");
        assert_eq!(stragglers[0].stage, "download");
        assert!((stragglers[0].median_s - 10.5).abs() < 1e-9);
        // Below min_samples nothing is flagged.
        let strict = StragglerConfig {
            min_samples: 6,
            ..StragglerConfig::default()
        };
        assert!(analysis.stragglers(&strict).is_empty());
    }

    #[test]
    fn timeline_tracks_concurrency_and_idle_gaps() {
        let obs = Obs::new();
        let t = TraceContext::new("g1");
        sim_span(&obs, "download", "file", 0.0, 10.0, &t);
        sim_span(&obs, "download", "file", 5.0, 15.0, &t);
        sim_span(&obs, "download", "file", 20.0, 30.0, &t);
        sim_span(&obs, "monitor", "trigger", 7.0, 7.0, &t); // excluded mark
        let timelines = stage_timelines(&obs.spans());
        assert_eq!(timelines.len(), 1);
        let dl = &timelines[0];
        assert_eq!(dl.stage, "download");
        assert_eq!(dl.peak, 2);
        assert_eq!(dl.active_at(6.0), 2);
        assert_eq!(dl.active_at(12.0), 1);
        assert_eq!(dl.active_at(17.0), 0);
        assert_eq!(dl.active_at(25.0), 1);
        assert!((dl.busy_seconds - 25.0).abs() < 1e-9);
        assert!((dl.idle_seconds - 5.0).abs() < 1e-9);
        assert_eq!(dl.idle_gaps, vec![(15.0, 20.0)]);
        assert!((dl.utilization() - 25.0 / 30.0).abs() < 1e-9);
    }
}

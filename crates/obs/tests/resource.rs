//! Live counting-allocator coverage: this test binary installs
//! [`CountingAlloc`] directly as its global allocator, so every assertion
//! here exercises the counted path (the lib unit tests cover the
//! no-allocator zero path).

use std::sync::Arc;

use eoml_obs::resource::{
    self, memory_table, CountingAlloc, ResourceGuard, ALLOC_BYTES_COUNTER, ALLOC_COUNT_COUNTER,
    ALLOC_PEAK_GAUGE,
};
use eoml_obs::Obs;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn counter(obs: &Obs, name: &str, stage: &str) -> u64 {
    obs.metrics()
        .snapshot()
        .counters
        .iter()
        .find(|(k, _)| k.name == name && k.stage == stage)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

#[test]
fn counting_allocator_is_live() {
    // Getting here required allocating (test harness, strings, ...).
    assert!(resource::counting_active());
    let before = resource::snapshot();
    let block: Vec<u8> = vec![0u8; 1 << 16];
    let after = resource::snapshot();
    assert!(after.allocated_bytes >= before.allocated_bytes + (1 << 16));
    assert!(after.allocation_count > before.allocation_count);
    drop(block);
    let freed = resource::snapshot();
    assert!(freed.freed_bytes >= after.freed_bytes + (1 << 16));
}

#[test]
fn detached_guard_measures_scope_deltas_and_peak() {
    let guard = ResourceGuard::detached("preprocess", "tile");
    let block: Vec<u8> = vec![1u8; 1 << 20];
    let mid = guard.measure();
    drop(block);
    let report = guard.finish();
    assert!(mid.allocated_bytes >= 1 << 20, "mid: {mid:?}");
    assert!(report.allocated_bytes >= 1 << 20, "report: {report:?}");
    assert!(report.freed_bytes >= 1 << 20);
    assert!(report.allocation_count >= 1);
    // The 1 MiB block was live inside the scope, so the scope peak must
    // sit at least 1 MiB above the live bytes at entry.
    assert!(
        report.peak_in_use_bytes >= mid.allocated_bytes,
        "peak {} < {}",
        report.peak_in_use_bytes,
        mid.allocated_bytes
    );
    assert_eq!(report.stage, "preprocess");
    assert_eq!(report.name, "tile");
}

#[test]
fn attached_guard_attributes_bytes_to_the_stage_registry() {
    let obs = Obs::shared();
    {
        let _guard = ResourceGuard::enter(Arc::clone(&obs), "preprocess", "granule");
        let work: Vec<u64> = (0..200_000).collect();
        assert!(work.len() == 200_000);
    }
    let bytes = counter(&obs, ALLOC_BYTES_COUNTER, "preprocess");
    let count = counter(&obs, ALLOC_COUNT_COUNTER, "preprocess");
    assert!(bytes >= 200_000 * 8, "attributed bytes: {bytes}");
    assert!(count >= 1);
    let peak = obs
        .metrics()
        .gauge_value(ALLOC_PEAK_GAUGE, "preprocess")
        .expect("peak gauge written");
    assert!(peak >= (200_000 * 8) as f64);
}

#[test]
fn successive_guards_accumulate_and_memory_table_reports_them() {
    let obs = Obs::shared();
    for _ in 0..2 {
        let _guard = ResourceGuard::enter(Arc::clone(&obs), "download", "chunk");
        let buf: Vec<u8> = vec![0u8; 512 * 1024];
        drop(buf);
    }
    let bytes = counter(&obs, ALLOC_BYTES_COUNTER, "download");
    assert!(bytes >= 2 * 512 * 1024, "accumulated bytes: {bytes}");
    let table = memory_table(&obs.metrics().snapshot());
    assert_eq!(table.name, "fig7_memory");
    let row = table
        .rows
        .iter()
        .find(|r| r[0] == eoml_obs::table::Cell::str("download"))
        .expect("download row present");
    // alloc_mb column: at least 1 MB was charged to the stage.
    match &row[1] {
        eoml_obs::table::Cell::Num { value, .. } => assert!(*value >= 1.0, "alloc_mb {value}"),
        other => panic!("alloc_mb cell should be numeric, got {other:?}"),
    }
}

//! Hammer the collector and registry from many threads at once and
//! assert nothing is lost: every span, every counter increment, every
//! histogram observation must be accounted for.

use eoml_obs::{MemorySink, Obs, ObsEvent};
use std::sync::Arc;

const THREADS: usize = 16;
const SPANS_PER_THREAD: usize = 500;

#[test]
fn no_events_lost_under_contention() {
    let obs = Arc::new(Obs::new());
    let sink = MemorySink::new();
    let events = sink.handle();
    obs.add_sink(Box::new(sink));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let obs = Arc::clone(&obs);
            std::thread::spawn(move || {
                let stage = if t % 2 == 0 { "download" } else { "preprocess" };
                for i in 0..SPANS_PER_THREAD {
                    let mut guard = obs.span(stage, "work");
                    guard.attr("i", i);
                    drop(guard);
                    obs.counter_add("units", stage, 1);
                    obs.observe("unit_seconds", stage, (i + 1) as f64 * 1e-6);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let total = THREADS * SPANS_PER_THREAD;
    let spans = obs.spans();
    assert_eq!(spans.len(), total, "lost spans under contention");

    // Ids are unique and the snapshot is sorted by open order.
    let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
    let sorted = ids.windows(2).all(|w| w[0] < w[1]);
    ids.dedup();
    assert_eq!(ids.len(), total, "duplicate span ids");
    assert!(sorted, "snapshot not in id order");

    // Counters saw every increment, split across the two stages.
    let dl = obs
        .metrics()
        .counter_value("units", "download")
        .unwrap_or(0);
    let pp = obs
        .metrics()
        .counter_value("units", "preprocess")
        .unwrap_or(0);
    assert_eq!(dl + pp, total as u64);
    assert_eq!(dl, (total / 2) as u64);

    // Histograms saw every observation.
    let h_dl = obs.metrics().histogram("unit_seconds", "download").unwrap();
    let h_pp = obs
        .metrics()
        .histogram("unit_seconds", "preprocess")
        .unwrap();
    assert_eq!(h_dl.count() + h_pp.count(), total as u64);

    // The sink saw one SpanClosed and one Counter event per iteration.
    let seen = events.lock().unwrap();
    let closed = seen
        .iter()
        .filter(|e| matches!(e, ObsEvent::SpanClosed(_)))
        .count();
    let counts = seen
        .iter()
        .filter(|e| matches!(e, ObsEvent::Counter { .. }))
        .count();
    assert_eq!(closed, total, "sink missed span events");
    assert_eq!(counts, total, "sink missed counter events");

    // Exporters stay consistent after the stampede.
    let doc = serde_json::from_str(&obs.chrome_trace_json()).expect("trace parses");
    assert_eq!(
        doc.get("traceEvents").unwrap().as_array().unwrap().len(),
        total
    );
}

//! Round-trip tests for the exporters: render, parse back with a real
//! JSON parser / a small Prometheus text parser, and assert structure
//! (span nesting, histogram bucket counts) survives the trip.

use eoml_obs::Obs;
use eoml_simtime::SimTime;
use std::collections::HashMap;

#[test]
fn chrome_trace_round_trips_with_nesting() {
    let obs = Obs::new();
    let (outer_id, mid_id, inner_id);
    {
        let outer = obs.span("preprocess", "batch");
        outer_id = outer.id();
        {
            let mut mid = obs.span("preprocess", "granule");
            mid.attr("granule", "MOD021KM.A2021.hdf");
            mid_id = mid.id();
            {
                let inner = obs.span("preprocess", "tile_creation");
                inner_id = inner.id();
            }
        }
    }
    // A sim-stamped sibling on the virtual timeline.
    obs.record_sim_span(
        "download",
        "transfer",
        SimTime::from_secs_f64(5.0),
        SimTime::from_secs_f64(17.0),
    );

    let text = obs.chrome_trace_json();
    let doc = serde_json::from_str(&text).expect("exporter must emit valid JSON");
    let events = doc
        .get("traceEvents")
        .expect("top-level traceEvents")
        .as_array()
        .expect("traceEvents is an array");
    assert_eq!(events.len(), 4);

    // Index events by span_id and check every required field.
    let mut by_id = HashMap::new();
    for ev in events {
        assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
        assert!(ev.get("ts").unwrap().as_f64().is_some());
        assert!(ev.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        assert!(ev.get("pid").unwrap().as_f64().is_some());
        assert!(ev.get("tid").unwrap().as_f64().is_some());
        let args = ev.get("args").unwrap();
        let id = args.get("span_id").unwrap().as_f64().unwrap() as u64;
        by_id.insert(id, ev);
    }

    // Nesting survived: inner -> mid -> outer -> none.
    let parent_of = |id: u64| {
        let args = by_id[&id].get("args").unwrap();
        args.get("parent_id").unwrap().as_f64().map(|p| p as u64)
    };
    assert_eq!(parent_of(inner_id), Some(mid_id));
    assert_eq!(parent_of(mid_id), Some(outer_id));
    assert_eq!(parent_of(outer_id), None);

    // Attributes ride along under args.
    assert_eq!(
        by_id[&mid_id]
            .get("args")
            .unwrap()
            .get("attr.granule")
            .unwrap()
            .as_str(),
        Some("MOD021KM.A2021.hdf")
    );

    // The sim span sits on the virtual timeline: ts = 5 s, dur = 12 s.
    let sim_ev = events
        .iter()
        .find(|e| e.get("cat").unwrap().as_str() == Some("download"))
        .unwrap();
    assert_eq!(
        sim_ev.get("args").unwrap().get("clock").unwrap().as_str(),
        Some("sim")
    );
    assert!((sim_ev.get("ts").unwrap().as_f64().unwrap() - 5e6).abs() < 1.0);
    assert!((sim_ev.get("dur").unwrap().as_f64().unwrap() - 12e6).abs() < 1.0);
}

/// A parsed Prometheus sample: `(metric name, label pairs, value)`.
type PromSample = (String, Vec<(String, String)>, f64);

/// Minimal Prometheus text parser: `name{label="v",...} value` lines.
fn parse_prometheus(text: &str) -> Vec<PromSample> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (head, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            if value == "+Inf" {
                f64::INFINITY
            } else {
                panic!("unparseable value {value:?} in line {line:?}")
            }
        });
        let (name, labels) = match head.split_once('{') {
            Some((n, rest)) => {
                let body = rest.strip_suffix('}').expect("closing brace");
                let labels = body
                    .split("\",")
                    .map(|pair| {
                        let (k, v) = pair.split_once("=\"").expect("label pair");
                        (k.to_string(), v.trim_end_matches('"').to_string())
                    })
                    .collect();
                (n.to_string(), labels)
            }
            None => (head.to_string(), Vec::new()),
        };
        out.push((name, labels, value));
    }
    out
}

#[test]
fn prometheus_text_round_trips_with_bucket_counts() {
    let obs = Obs::new();
    obs.counter_add("files", "download", 7);
    obs.counter_add("files", "shipment", 2);
    obs.gauge_set("active_workers", "download", 3.0);
    // 10 observations at 2 ms, 5 at 0.5 s: two occupied buckets.
    for _ in 0..10 {
        obs.observe("file_seconds", "download", 2e-3);
    }
    for _ in 0..5 {
        obs.observe("file_seconds", "download", 0.5);
    }

    let text = obs.prometheus_text();
    let samples = parse_prometheus(&text);
    let find = |name: &str, stage: &str| -> Vec<&PromSample> {
        samples
            .iter()
            .filter(|(n, labels, _)| {
                n == name && labels.iter().any(|(k, v)| k == "stage" && v == stage)
            })
            .collect()
    };

    // Counters got the _total suffix and kept their values per stage.
    assert_eq!(find("eoml_files_total", "download")[0].2, 7.0);
    assert_eq!(find("eoml_files_total", "shipment")[0].2, 2.0);
    assert_eq!(find("eoml_active_workers", "download")[0].2, 3.0);

    // Histogram: cumulative buckets are monotone, end at count, and the
    // 2 ms / 0.5 s split is visible at a mid-range threshold.
    let buckets = find("eoml_file_seconds_bucket", "download");
    assert!(!buckets.is_empty());
    let mut last = 0.0;
    for b in &buckets {
        assert!(b.2 >= last, "cumulative bucket counts must be monotone");
        last = b.2;
    }
    let le = |b: &(String, Vec<(String, String)>, f64)| -> f64 {
        let v = &b.1.iter().find(|(k, _)| k == "le").unwrap().1;
        if v == "+Inf" {
            f64::INFINITY
        } else {
            v.parse().unwrap()
        }
    };
    // Every bound below 0.1 s holds at most the 10 fast observations.
    for b in &buckets {
        if le(b) < 0.1 {
            assert!(b.2 <= 10.0, "le={} count={}", le(b), b.2);
        }
    }
    // A bound at/above 2 ms exists and captures all 10 fast observations.
    assert!(buckets.iter().any(|b| le(b) < 0.1 && b.2 == 10.0));
    let inf = buckets.iter().find(|b| le(b).is_infinite()).unwrap();
    assert_eq!(inf.2, 15.0);
    assert_eq!(find("eoml_file_seconds_count", "download")[0].2, 15.0);
    let sum = find("eoml_file_seconds_sum", "download")[0].2;
    assert!((sum - (10.0 * 2e-3 + 5.0 * 0.5)).abs() < 1e-9);
}

#[test]
fn prometheus_emits_help_and_type_for_every_family() {
    let obs = Obs::new();
    obs.counter_add("files", "download", 1);
    obs.gauge_set("active_workers", "download", 2.0);
    obs.observe("file_seconds", "download", 0.5);

    let text = obs.prometheus_text();
    for fam in [
        "eoml_files_total",
        "eoml_active_workers",
        "eoml_file_seconds",
    ] {
        assert!(
            text.contains(&format!("# HELP {fam} ")),
            "missing HELP for {fam}"
        );
        assert!(
            text.contains(&format!("# TYPE {fam} ")),
            "missing TYPE for {fam}"
        );
    }
    // HELP precedes TYPE precedes the first sample of each family.
    let help_at = text.find("# HELP eoml_files_total").unwrap();
    let type_at = text.find("# TYPE eoml_files_total").unwrap();
    let sample_at = text.find("eoml_files_total{").unwrap();
    assert!(help_at < type_at && type_at < sample_at);
}

#[test]
fn odd_tenant_labels_are_escaped_and_round_trip() {
    let obs = Obs::new();
    // A stage label with every character the format must escape.
    let stage = "tenant:we\"ird\\lab\nel";
    obs.counter_add("granules", stage, 9);

    let text = obs.prometheus_text();
    // The exposition itself stays line-structured: every line is either
    // a comment or a sample, and none is torn by the raw newline.
    for line in text.lines() {
        assert!(
            line.starts_with('#') || line.contains(' '),
            "torn line {line:?}"
        );
    }
    assert!(text.contains("stage=\"tenant:we\\\"ird\\\\lab\\nel\""));

    // Parse back and un-escape: the original stage survives the trip.
    let samples = parse_prometheus(&text);
    let (_, labels, value) = samples
        .iter()
        .find(|(n, _, _)| n == "eoml_granules_total")
        .expect("counter sample present");
    assert_eq!(*value, 9.0);
    let escaped = &labels.iter().find(|(k, _)| k == "stage").unwrap().1;
    let unescaped = escaped
        .replace("\\n", "\n")
        .replace("\\\"", "\"")
        .replace("\\\\", "\\");
    assert_eq!(unescaped, stage);
}

#[test]
fn jsonl_lines_all_parse() {
    let obs = Obs::new();
    {
        let _g = obs.span("inference", "flow_action");
    }
    obs.counter_add("labels", "inference", 42);
    obs.gauge_set("active_workers", "inference", 1.0);
    obs.observe("queue_seconds", "compute", 0.25);
    let dump = obs.jsonl();
    let mut kinds = Vec::new();
    for line in dump.lines() {
        let v = serde_json::from_str(line).expect("every jsonl line parses");
        kinds.push(v.get("type").unwrap().as_str().unwrap().to_string());
    }
    assert!(kinds.contains(&"span".to_string()));
    assert!(kinds.contains(&"counter".to_string()));
    assert!(kinds.contains(&"gauge".to_string()));
    assert!(kinds.contains(&"histogram".to_string()));
}

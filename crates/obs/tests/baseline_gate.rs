//! The regression gate, exercised against the *committed* seed baselines
//! under `bench/baselines/` — the same files
//! `cargo bench -p eoml-bench --bench figures -- --compare` loads in CI.
//!
//! Two properties anchor the gate's semantics:
//!
//! * comparing the committed baselines against themselves is clean (the
//!   `--compare` exit-0 path), and
//! * injecting a 2× slowdown into any one table trips `Regressed` (the
//!   exit-nonzero path).

use std::path::PathBuf;

use eoml_obs::table::{Cell, Table};
use eoml_obs::{BaselineStore, Verdict};

fn baseline_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench/baselines")
}

fn committed() -> BaselineStore {
    let store = BaselineStore::load(baseline_dir()).expect("committed baselines parse");
    assert!(
        !store.is_empty(),
        "bench/baselines must hold committed BENCH_*.json seeds"
    );
    store
}

/// Scale every numeric cell of `table` by `factor` (a synthetic uniform
/// slowdown/speedup).
fn scaled(table: &Table, factor: f64) -> Table {
    let mut out = Table::new(
        &table.name,
        &table.columns.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for row in &table.rows {
        out.row(
            row.iter()
                .map(|cell| match cell {
                    Cell::Num { value, prec } => Cell::num(value * factor, *prec),
                    Cell::Int(v) => Cell::Int(((*v as f64) * factor).round() as i64),
                    Cell::Str(s) => Cell::str(s.clone()),
                })
                .collect(),
        );
    }
    out
}

#[test]
fn committed_baselines_cover_every_figures_table() {
    let store = committed();
    for name in [
        "fig3",
        "fig4a",
        "fig4b",
        "fig5a",
        "fig5b",
        "table1_strong_workers",
        "table1_strong_nodes",
        "table1_weak_workers",
        "table1_weak_nodes",
        "fig6",
        "fig7",
        "headline",
    ] {
        assert!(store.get(name).is_some(), "missing baseline for {name}");
    }
}

#[test]
fn self_comparison_of_committed_baselines_is_clean() {
    let store = committed();
    let tables: Vec<Table> = store
        .names()
        .map(|n| store.get(n).unwrap().table.clone())
        .collect();
    let comparison = store.compare_all(&tables);
    assert!(
        !comparison.regressed(),
        "self-compare must pass:\n{}",
        comparison.render_text(2)
    );
    for verdict in &comparison.verdicts {
        assert_eq!(verdict.verdict, Verdict::Ok, "{}", verdict.table);
    }
}

#[test]
fn injected_two_x_slowdown_in_one_table_trips_the_gate() {
    let store = committed();
    let mut tables: Vec<Table> = store
        .names()
        .map(|n| store.get(n).unwrap().table.clone())
        .collect();
    let slow = scaled(&store.get("headline").unwrap().table, 2.0);
    *tables
        .iter_mut()
        .find(|t| t.name == "headline")
        .expect("headline present") = slow;
    let comparison = store.compare_all(&tables);
    assert!(comparison.regressed(), "2× slowdown must fail the gate");
    let failures = comparison.failures();
    assert_eq!(failures.len(), 1, "only the slowed table fails");
    assert_eq!(failures[0].table, "headline");
    assert_eq!(failures[0].verdict, Verdict::Regressed);
    assert!(
        !failures[0].deltas.is_empty(),
        "regression names the offending cells"
    );
    // Every reported delta is genuinely ~2×.
    for delta in &failures[0].deltas {
        assert!(
            (delta.rel_change() - 1.0).abs() < 1e-9,
            "delta {delta:?} should be +100%"
        );
    }
}

#[test]
fn table_without_committed_baseline_fails_the_gate() {
    let store = committed();
    let mut novel = Table::new("fig99_new_experiment", &["metric", "value"]);
    novel.row(vec![Cell::str("speed"), Cell::num(1.0, 2)]);
    let comparison = store.compare_all(&[novel]);
    assert!(comparison.regressed());
    assert_eq!(comparison.failures()[0].verdict, Verdict::MissingBaseline);
}

//! `eoml-compute` — a Globus Compute (funcX) substitute.
//!
//! Globus Compute is a federated function-serving fabric: users register
//! functions, submit invocations to remote *endpoints*, and collect results
//! via futures. The paper uses it to run the LAADS download function on the
//! cluster. This crate reproduces the programming model:
//!
//! * [`registry`] — named, versioned functions over JSON payloads
//!   (mirroring Globus Compute's serialized-callable registry);
//! * [`endpoint`] — a compute endpoint executing registered functions on a
//!   real worker pool (crossbeam channels + threads), with futures,
//!   failure capture and graceful shutdown;
//! * [`launch`] — the latency model of *starting* remote workers
//!   (authenticate, provision, connect), the component measured at 5.63 s
//!   in the paper's Fig. 7.

pub mod endpoint;
pub mod launch;
pub mod registry;

pub use endpoint::{ComputeEndpoint, TaskHandle, TaskResult};
pub use launch::LaunchModel;
pub use registry::{FunctionId, FunctionRegistry};

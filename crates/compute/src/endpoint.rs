//! A compute endpoint: a real worker pool executing registered functions.
//!
//! Submissions return a [`TaskHandle`] future; workers are OS threads fed
//! by a crossbeam channel. Panics inside functions are captured and
//! reported as task failures rather than poisoning the pool.

use crate::registry::{FunctionId, FunctionRegistry};
use crossbeam::channel::{unbounded, Receiver, Sender};
use eoml_obs::{Obs, TraceContext};
use parking_lot::{Condvar, Mutex};
use serde_json::Value;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Terminal state of a submitted task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskResult {
    /// Function returned a value.
    Success(Value),
    /// Function returned an error or panicked.
    Failed(String),
}

impl TaskResult {
    /// Whether the task succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, TaskResult::Success(_))
    }

    /// The success value, if any.
    pub fn value(&self) -> Option<&Value> {
        match self {
            TaskResult::Success(v) => Some(v),
            TaskResult::Failed(_) => None,
        }
    }
}

struct Slot {
    state: Mutex<Option<TaskResult>>,
    cond: Condvar,
}

/// A future for one submitted task.
#[derive(Clone)]
pub struct TaskHandle {
    slot: Arc<Slot>,
}

impl TaskHandle {
    fn new() -> Self {
        Self {
            slot: Arc::new(Slot {
                state: Mutex::new(None),
                cond: Condvar::new(),
            }),
        }
    }

    fn fulfill(&self, result: TaskResult) {
        let mut guard = self.slot.state.lock();
        *guard = Some(result);
        self.slot.cond.notify_all();
    }

    /// Block until the task completes and return its result.
    pub fn wait(&self) -> TaskResult {
        let mut guard = self.slot.state.lock();
        while guard.is_none() {
            self.slot.cond.wait(&mut guard);
        }
        guard.clone().expect("fulfilled")
    }

    /// Non-blocking poll.
    pub fn try_get(&self) -> Option<TaskResult> {
        self.slot.state.lock().clone()
    }
}

enum Job {
    Run {
        func: FunctionId,
        args: Value,
        handle: TaskHandle,
        submitted: Instant,
        trace: Option<TraceContext>,
    },
    Shutdown,
}

/// A compute endpoint with `workers` OS threads sharing a registry.
pub struct ComputeEndpoint {
    name: String,
    tx: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<FunctionRegistry>,
    obs: Option<Arc<Obs>>,
}

impl ComputeEndpoint {
    /// Start an endpoint with the given worker count.
    pub fn start(name: impl Into<String>, registry: Arc<FunctionRegistry>, workers: usize) -> Self {
        Self::start_observed(name, registry, workers, None)
    }

    /// [`ComputeEndpoint::start`] with an observability hub: submissions,
    /// completions, and failures are counted under the `compute` stage,
    /// and each task feeds `queue_seconds` (submit → start) and
    /// `task_seconds` (execution) histograms.
    pub fn start_observed(
        name: impl Into<String>,
        registry: Arc<FunctionRegistry>,
        workers: usize,
        obs: Option<Arc<Obs>>,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        let (tx, rx) = unbounded::<Job>();
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let rx: Receiver<Job> = rx.clone();
            let registry = Arc::clone(&registry);
            let obs = obs.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("compute-worker-{w}"))
                    .spawn(move || worker_loop(rx, registry, obs))
                    .expect("spawn worker"),
            );
        }
        Self {
            name: name.into(),
            tx,
            workers: handles,
            registry,
            obs,
        }
    }

    /// The endpoint's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The shared function registry.
    pub fn registry(&self) -> &Arc<FunctionRegistry> {
        &self.registry
    }

    /// Submit an invocation; returns immediately with a future.
    pub fn submit(&self, func: FunctionId, args: Value) -> TaskHandle {
        self.submit_traced(func, args, None)
    }

    /// [`ComputeEndpoint::submit`] carrying a per-granule trace identity:
    /// when the endpoint is observed, the worker records a wall-clock
    /// `compute` span for the execution stamped with the trace, so the
    /// task joins that granule's end-to-end trace.
    pub fn submit_traced(
        &self,
        func: FunctionId,
        args: Value,
        trace: Option<&TraceContext>,
    ) -> TaskHandle {
        let handle = TaskHandle::new();
        if let Some(obs) = &self.obs {
            obs.counter_add("tasks_submitted", "compute", 1);
        }
        self.tx
            .send(Job::Run {
                func,
                args,
                handle: handle.clone(),
                submitted: Instant::now(),
                trace: trace.cloned(),
            })
            .expect("endpoint alive");
        handle
    }

    /// Submit by function name (latest version).
    pub fn submit_by_name(&self, name: &str, args: Value) -> Result<TaskHandle, String> {
        self.submit_by_name_traced(name, args, None)
    }

    /// [`ComputeEndpoint::submit_by_name`] carrying a per-granule trace
    /// identity (see [`ComputeEndpoint::submit_traced`]).
    pub fn submit_by_name_traced(
        &self,
        name: &str,
        args: Value,
        trace: Option<&TraceContext>,
    ) -> Result<TaskHandle, String> {
        let id = self
            .registry
            .lookup(name)
            .ok_or_else(|| format!("no function named {name:?}"))?;
        Ok(self.submit_traced(id, args, trace))
    }

    /// Drain and stop all workers (waits for in-flight tasks).
    pub fn shutdown(mut self) {
        for _ in 0..self.workers.len() {
            let _ = self.tx.send(Job::Shutdown);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ComputeEndpoint {
    fn drop(&mut self) {
        // Best-effort shutdown if the user forgot to call `shutdown`.
        for _ in 0..self.workers.len() {
            let _ = self.tx.send(Job::Shutdown);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(rx: Receiver<Job>, registry: Arc<FunctionRegistry>, obs: Option<Arc<Obs>>) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Shutdown => break,
            Job::Run {
                func,
                args,
                handle,
                submitted,
                trace,
            } => {
                // A traced task gets a wall-clock span so it joins the
                // granule's end-to-end trace; untraced tasks keep the
                // histogram-only footprint they always had.
                let guard = match (&obs, &trace) {
                    (Some(obs), Some(trace)) => {
                        let name = registry
                            .describe(func)
                            .map(|(n, _)| n)
                            .unwrap_or_else(|| "task".to_string());
                        let mut g = obs.span("compute", &name);
                        g.set_trace(trace);
                        Some(g)
                    }
                    _ => None,
                };
                let started = Instant::now();
                let outcome =
                    std::panic::catch_unwind(AssertUnwindSafe(|| registry.invoke(func, args)));
                drop(guard);
                let result = match outcome {
                    Ok(Ok(v)) => TaskResult::Success(v),
                    Ok(Err(e)) => TaskResult::Failed(e),
                    Err(panic) => {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "function panicked".into());
                        TaskResult::Failed(format!("panic: {msg}"))
                    }
                };
                if let Some(obs) = &obs {
                    obs.observe(
                        "queue_seconds",
                        "compute",
                        (started - submitted).as_secs_f64(),
                    );
                    obs.observe("task_seconds", "compute", started.elapsed().as_secs_f64());
                    let counter = if result.is_success() {
                        "tasks_completed"
                    } else {
                        "tasks_failed"
                    };
                    obs.counter_add(counter, "compute", 1);
                }
                handle.fulfill(result);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn registry_with_basics() -> Arc<FunctionRegistry> {
        let reg = Arc::new(FunctionRegistry::new());
        reg.register("square", |v| {
            let x = v.as_i64().ok_or("not an int")?;
            Ok(json!(x * x))
        });
        reg.register("fail", |_| Err("nope".into()));
        reg.register("panic", |_| panic!("kaboom"));
        reg
    }

    #[test]
    fn submit_and_wait() {
        let ep = ComputeEndpoint::start("test", registry_with_basics(), 2);
        let h = ep.submit_by_name("square", json!(9)).unwrap();
        assert_eq!(h.wait(), TaskResult::Success(json!(81)));
        ep.shutdown();
    }

    #[test]
    fn many_tasks_across_workers() {
        let ep = ComputeEndpoint::start("test", registry_with_basics(), 4);
        let handles: Vec<TaskHandle> = (0..100)
            .map(|i| ep.submit_by_name("square", json!(i)).unwrap())
            .collect();
        for (i, h) in handles.iter().enumerate() {
            let i = i as i64;
            assert_eq!(h.wait(), TaskResult::Success(json!(i * i)));
        }
        ep.shutdown();
    }

    #[test]
    fn failures_and_panics_are_captured() {
        let ep = ComputeEndpoint::start("test", registry_with_basics(), 2);
        let f = ep.submit_by_name("fail", json!(null)).unwrap();
        assert_eq!(f.wait(), TaskResult::Failed("nope".into()));
        let p = ep.submit_by_name("panic", json!(null)).unwrap();
        match p.wait() {
            TaskResult::Failed(msg) => assert!(msg.contains("kaboom"), "{msg}"),
            other => panic!("expected failure, got {other:?}"),
        }
        // Pool still works after a panic.
        let ok = ep.submit_by_name("square", json!(3)).unwrap();
        assert_eq!(ok.wait(), TaskResult::Success(json!(9)));
        ep.shutdown();
    }

    #[test]
    fn unknown_function_name_rejected_at_submit() {
        let ep = ComputeEndpoint::start("test", registry_with_basics(), 1);
        assert!(ep.submit_by_name("nope", json!(null)).is_err());
        ep.shutdown();
    }

    #[test]
    fn try_get_is_nonblocking() {
        let reg = Arc::new(FunctionRegistry::new());
        let gate = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        reg.register("slow", move |_| {
            while g.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            Ok(json!("done"))
        });
        let ep = ComputeEndpoint::start("test", reg, 1);
        let h = ep.submit_by_name("slow", json!(null)).unwrap();
        assert_eq!(h.try_get(), None, "still running");
        gate.store(1, Ordering::Release);
        assert_eq!(h.wait(), TaskResult::Success(json!("done")));
        assert!(h.try_get().is_some());
        ep.shutdown();
    }

    #[test]
    fn tasks_really_run_in_parallel() {
        // Two tasks that each wait for the other's side effect can only
        // finish if two workers run them concurrently.
        let reg = Arc::new(FunctionRegistry::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        reg.register("rendezvous", move |_| {
            c.fetch_add(1, Ordering::AcqRel);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while c.load(Ordering::Acquire) < 2 {
                if std::time::Instant::now() > deadline {
                    return Err("deadlock: tasks did not overlap".into());
                }
                std::thread::yield_now();
            }
            Ok(json!("met"))
        });
        let ep = ComputeEndpoint::start("test", reg, 2);
        let a = ep.submit_by_name("rendezvous", json!(null)).unwrap();
        let b = ep.submit_by_name("rendezvous", json!(null)).unwrap();
        assert!(a.wait().is_success());
        assert!(b.wait().is_success());
        ep.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let ep = ComputeEndpoint::start("test", registry_with_basics(), 3);
        let h = ep.submit_by_name("square", json!(4)).unwrap();
        assert_eq!(h.wait(), TaskResult::Success(json!(16)));
        drop(ep); // must not hang
    }

    #[test]
    fn endpoint_metadata() {
        let ep = ComputeEndpoint::start("ace", registry_with_basics(), 3);
        assert_eq!(ep.name(), "ace");
        assert_eq!(ep.worker_count(), 3);
        assert_eq!(ep.registry().len(), 3);
        ep.shutdown();
    }

    #[test]
    fn traced_submissions_record_spans_joining_the_granule_trace() {
        let obs = Obs::shared();
        let ep = ComputeEndpoint::start_observed(
            "ace",
            registry_with_basics(),
            2,
            Some(Arc::clone(&obs)),
        );
        let trace = TraceContext::new("MOD.A2022001.0610");
        let traced = ep
            .submit_by_name_traced("square", json!(7), Some(&trace))
            .unwrap();
        let plain = ep.submit_by_name("square", json!(8)).unwrap();
        assert_eq!(traced.wait(), TaskResult::Success(json!(49)));
        assert_eq!(plain.wait(), TaskResult::Success(json!(64)));
        ep.shutdown();
        let spans = obs.spans();
        // Only the traced task records a span; it carries the trace id
        // and the function name.
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, "compute");
        assert_eq!(spans[0].name, "square");
        assert_eq!(spans[0].trace_id.as_deref(), Some("MOD.A2022001.0610"));
    }

    #[test]
    fn observed_endpoint_counts_and_times_tasks() {
        let obs = Obs::shared();
        let ep = ComputeEndpoint::start_observed(
            "ace",
            registry_with_basics(),
            2,
            Some(Arc::clone(&obs)),
        );
        let handles: Vec<_> = (0..5)
            .map(|i| ep.submit_by_name("square", json!(i)).unwrap())
            .collect();
        let boom = ep.submit_by_name("fail", json!({})).unwrap();
        for h in &handles {
            assert!(h.wait().is_success());
        }
        assert!(!boom.wait().is_success());
        ep.shutdown();
        let counter = |name: &str| obs.metrics().counter_value(name, "compute").unwrap_or(0);
        assert_eq!(counter("tasks_submitted"), 6);
        assert_eq!(counter("tasks_completed"), 5);
        assert_eq!(counter("tasks_failed"), 1);
        let queue = obs.metrics().histogram("queue_seconds", "compute").unwrap();
        let exec = obs.metrics().histogram("task_seconds", "compute").unwrap();
        assert_eq!(queue.count(), 6);
        assert_eq!(exec.count(), 6);
    }
}

//! Remote-worker launch latency model.
//!
//! The paper's Fig. 7 measures the cost of *starting* the download step:
//! "launches workers with Globus Compute, establishes a connection to the
//! LAADS server, and configures the list of files to be downloaded in just
//! 5.63 s". This model decomposes that overhead so the latency-breakdown
//! experiment can report its parts.

use eoml_util::rng::{Rng64, Xoshiro256};
use std::time::Duration;

/// Components of a remote launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchBreakdown {
    /// Authenticate and dispatch to the endpoint.
    pub dispatch: Duration,
    /// Provision/attach workers.
    pub worker_startup: Duration,
    /// Open the connection to the remote archive.
    pub remote_connect: Duration,
    /// Build the file list / task queue.
    pub configure: Duration,
}

impl LaunchBreakdown {
    /// Total launch latency.
    pub fn total(&self) -> Duration {
        self.dispatch + self.worker_startup + self.remote_connect + self.configure
    }
}

/// Stochastic launch model with means calibrated to Fig. 7's 5.63 s
/// download-launch figure.
#[derive(Debug, Clone)]
pub struct LaunchModel {
    rng: Xoshiro256,
    /// Mean seconds per component: dispatch, worker startup, remote
    /// connect, configure.
    pub means: [f64; 4],
    /// Jitter (coefficient of variation) applied to each component.
    pub cv: f64,
}

impl LaunchModel {
    /// Calibrated model: 0.9 + 2.8 + 1.2 + 0.7 ≈ 5.6 s mean total.
    pub fn globus_compute(seed: u64) -> Self {
        Self {
            rng: Xoshiro256::seed_from(seed ^ 0x1A07C4),
            means: [0.9, 2.8, 1.2, 0.7],
            cv: 0.18,
        }
    }

    /// Flow-action overhead: the ~50 ms Globus Flows step transition the
    /// paper measures between monitor and inference.
    pub fn flows_action(seed: u64) -> Self {
        Self {
            rng: Xoshiro256::seed_from(seed ^ 0xF10A5),
            means: [0.02, 0.0, 0.02, 0.01],
            cv: 0.25,
        }
    }

    /// Sample one launch.
    pub fn sample(&mut self) -> LaunchBreakdown {
        let mut draw = |mean: f64| -> Duration {
            if mean <= 0.0 {
                return Duration::ZERO;
            }
            Duration::from_secs_f64(self.rng.lognormal_mean_cv(mean, self.cv))
        };
        LaunchBreakdown {
            dispatch: draw(self.means[0]),
            worker_startup: draw(self.means[1]),
            remote_connect: draw(self.means[2]),
            configure: draw(self.means[3]),
        }
    }

    /// Mean total latency of the model.
    pub fn mean_total(&self) -> Duration {
        Duration::from_secs_f64(self.means.iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globus_compute_mean_matches_fig7() {
        let m = LaunchModel::globus_compute(1);
        let total = m.mean_total().as_secs_f64();
        assert!((total - 5.6).abs() < 0.2, "mean launch {total}");
    }

    #[test]
    fn sampled_totals_cluster_around_the_mean() {
        let mut m = LaunchModel::globus_compute(2);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| m.sample().total().as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 5.6).abs() < 0.3, "sampled mean {mean}");
    }

    #[test]
    fn flows_action_is_tens_of_milliseconds() {
        let mut m = LaunchModel::flows_action(3);
        for _ in 0..100 {
            let t = m.sample().total().as_secs_f64();
            assert!((0.01..0.25).contains(&t), "flow action {t}");
        }
        assert!((m.mean_total().as_secs_f64() - 0.05).abs() < 0.01);
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let mut a = LaunchModel::globus_compute(7);
        let mut b = LaunchModel::globus_compute(7);
        for _ in 0..10 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn breakdown_total_is_sum() {
        let mut m = LaunchModel::globus_compute(4);
        let s = m.sample();
        let sum = s.dispatch + s.worker_startup + s.remote_connect + s.configure;
        assert_eq!(s.total(), sum);
    }
}

//! The function registry: named functions over JSON values.
//!
//! Globus Compute serializes Python callables; the Rust equivalent is a
//! registry of `Fn(serde_json::Value) -> Result<Value, String>` entries,
//! addressed by a [`FunctionId`] returned at registration. Registration is
//! append-only (re-registering a name yields a new id/version, and old ids
//! keep working), matching the immutability of registered functions in the
//! real service.

use parking_lot::RwLock;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::Arc;

eoml_util::typed_id!(
    /// Identifier of a registered function (stable across re-registration).
    FunctionId,
    "fn"
);

type BoxedFn = Arc<dyn Fn(Value) -> Result<Value, String> + Send + Sync>;

struct Entry {
    name: String,
    version: u32,
    func: BoxedFn,
}

/// Thread-safe, append-only function registry.
#[derive(Default)]
pub struct FunctionRegistry {
    inner: RwLock<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    entries: Vec<Entry>,
    latest_by_name: HashMap<String, usize>,
}

impl FunctionRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `func` under `name`; returns its id. Registering the same
    /// name again creates a new version (and a new id); the old id remains
    /// callable.
    pub fn register(
        &self,
        name: impl Into<String>,
        func: impl Fn(Value) -> Result<Value, String> + Send + Sync + 'static,
    ) -> FunctionId {
        let name = name.into();
        let mut inner = self.inner.write();
        let version = inner
            .entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.version)
            .max()
            .map(|v| v + 1)
            .unwrap_or(1);
        let idx = inner.entries.len();
        inner.entries.push(Entry {
            name: name.clone(),
            version,
            func: Arc::new(func),
        });
        inner.latest_by_name.insert(name, idx);
        FunctionId::from_raw(idx as u64 + 1)
    }

    /// Resolve the latest version of `name`.
    pub fn lookup(&self, name: &str) -> Option<FunctionId> {
        let inner = self.inner.read();
        inner
            .latest_by_name
            .get(name)
            .map(|&i| FunctionId::from_raw(i as u64 + 1))
    }

    /// The `(name, version)` of a function id.
    pub fn describe(&self, id: FunctionId) -> Option<(String, u32)> {
        let inner = self.inner.read();
        inner
            .entries
            .get((id.raw() - 1) as usize)
            .map(|e| (e.name.clone(), e.version))
    }

    /// Fetch the callable for an id (cheap Arc clone).
    pub fn get(&self, id: FunctionId) -> Option<BoxedFn> {
        let inner = self.inner.read();
        inner
            .entries
            .get((id.raw() - 1) as usize)
            .map(|e| Arc::clone(&e.func))
    }

    /// Invoke a function synchronously in the caller's thread.
    pub fn invoke(&self, id: FunctionId, args: Value) -> Result<Value, String> {
        let f = self
            .get(id)
            .ok_or_else(|| format!("unknown function {id}"))?;
        f(args)
    }

    /// Number of registered entries (all versions).
    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn register_and_invoke() {
        let reg = FunctionRegistry::new();
        let id = reg.register("double", |args| {
            let x = args["x"].as_i64().ok_or("missing x")?;
            Ok(json!({ "y": x * 2 }))
        });
        let out = reg.invoke(id, json!({ "x": 21 })).unwrap();
        assert_eq!(out["y"], 42);
    }

    #[test]
    fn errors_propagate() {
        let reg = FunctionRegistry::new();
        let id = reg.register("fail", |_| Err("boom".into()));
        assert_eq!(reg.invoke(id, json!({})), Err("boom".to_string()));
        assert!(reg
            .invoke(FunctionId::from_raw(99), json!({}))
            .unwrap_err()
            .contains("unknown function"));
    }

    #[test]
    fn versioning_keeps_old_ids_callable() {
        let reg = FunctionRegistry::new();
        let v1 = reg.register("f", |_| Ok(json!(1)));
        let v2 = reg.register("f", |_| Ok(json!(2)));
        assert_ne!(v1, v2);
        assert_eq!(reg.describe(v1), Some(("f".into(), 1)));
        assert_eq!(reg.describe(v2), Some(("f".into(), 2)));
        assert_eq!(reg.lookup("f"), Some(v2));
        assert_eq!(reg.invoke(v1, json!({})).unwrap(), json!(1));
        assert_eq!(reg.invoke(v2, json!({})).unwrap(), json!(2));
    }

    #[test]
    fn lookup_unknown_is_none() {
        let reg = FunctionRegistry::new();
        assert_eq!(reg.lookup("nope"), None);
        assert!(reg.is_empty());
        reg.register("a", |_| Ok(Value::Null));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = Arc::new(FunctionRegistry::new());
        let id = reg.register("inc", |args| {
            Ok(json!(args.as_i64().ok_or("not an int")? + 1))
        });
        let mut handles = Vec::new();
        for t in 0..4 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                reg.invoke(id, json!(t)).unwrap().as_i64().unwrap()
            }));
        }
        let mut results: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, vec![1, 2, 3, 4]);
    }
}

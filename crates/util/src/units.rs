//! Byte sizes and transfer rates.
//!
//! The download experiments (paper Fig. 3) are expressed in MB and MB/s using
//! decimal (SI) prefixes, matching how LAADS reports file sizes; these types
//! keep the arithmetic honest and the display consistent.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};
use std::time::Duration;

/// A size in bytes. Decimal (SI) constructors are provided because the data
/// products in the paper are quoted in decimal units (e.g. "32 GB of MOD02").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// From raw bytes.
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// From kilobytes (10^3).
    pub const fn kb(n: u64) -> Self {
        ByteSize(n * 1_000)
    }

    /// From megabytes (10^6).
    pub const fn mb(n: u64) -> Self {
        ByteSize(n * 1_000_000)
    }

    /// From gigabytes (10^9).
    pub const fn gb(n: u64) -> Self {
        ByteSize(n * 1_000_000_000)
    }

    /// From terabytes (10^12).
    pub const fn tb(n: u64) -> Self {
        ByteSize(n * 1_000_000_000_000)
    }

    /// From a fractional number of megabytes.
    pub fn mb_f64(n: f64) -> Self {
        ByteSize((n * 1e6).round() as u64)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// As fractional megabytes.
    pub fn as_mb(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional gigabytes.
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to move this many bytes at `rate` (panics on zero rate).
    pub fn time_at(self, rate: Rate) -> Duration {
        assert!(rate.0 > 0.0, "rate must be positive");
        Duration::from_secs_f64(self.0 as f64 / rate.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Div<Duration> for ByteSize {
    type Output = Rate;
    fn div(self, rhs: Duration) -> Rate {
        Rate(self.0 as f64 / rhs.as_secs_f64())
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1e12 {
            write!(f, "{:.2} TB", b / 1e12)
        } else if b >= 1e9 {
            write!(f, "{:.2} GB", b / 1e9)
        } else if b >= 1e6 {
            write!(f, "{:.2} MB", b / 1e6)
        } else if b >= 1e3 {
            write!(f, "{:.2} kB", b / 1e3)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A transfer rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(pub f64);

impl Rate {
    /// From bytes per second.
    pub fn bytes_per_sec(r: f64) -> Self {
        Rate(r)
    }

    /// From megabytes per second (10^6).
    pub fn mb_per_sec(r: f64) -> Self {
        Rate(r * 1e6)
    }

    /// From gigabits per second (10^9 bits).
    pub fn gbit_per_sec(r: f64) -> Self {
        Rate(r * 1e9 / 8.0)
    }

    /// As megabytes per second.
    pub fn as_mb_per_sec(self) -> f64 {
        self.0 / 1e6
    }

    /// As raw bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Bytes moved in `dt` at this rate.
    pub fn bytes_in(self, dt: Duration) -> ByteSize {
        ByteSize((self.0 * dt.as_secs_f64()).round() as u64)
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl Mul<f64> for Rate {
    type Output = Rate;
    fn mul(self, rhs: f64) -> Rate {
        Rate(self.0 * rhs)
    }
}

impl Div<f64> for Rate {
    type Output = Rate;
    fn div(self, rhs: f64) -> Rate {
        Rate(self.0 / rhs)
    }
}

impl Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        Rate(iter.map(|r| r.0).sum())
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2} GB/s", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.2} MB/s", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.2} kB/s", self.0 / 1e3)
        } else {
            write!(f, "{:.1} B/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_conversions() {
        assert_eq!(ByteSize::kb(2).as_u64(), 2_000);
        assert_eq!(ByteSize::mb(32).as_u64(), 32_000_000);
        assert_eq!(ByteSize::gb(1).as_u64(), 1_000_000_000);
        assert_eq!(ByteSize::tb(1).as_u64(), 1_000_000_000_000);
        assert!((ByteSize::gb(18).as_gb() - 18.0).abs() < 1e-12);
        assert!((ByteSize::mb_f64(8.4).as_mb() - 8.4).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::mb(10) + ByteSize::mb(5);
        assert_eq!(a, ByteSize::mb(15));
        assert_eq!(a - ByteSize::mb(5), ByteSize::mb(10));
        assert_eq!(ByteSize::mb(3) * 4, ByteSize::mb(12));
        assert_eq!(
            ByteSize::mb(5).saturating_sub(ByteSize::mb(9)),
            ByteSize::ZERO
        );
        let total: ByteSize = [ByteSize::mb(1), ByteSize::mb(2)].into_iter().sum();
        assert_eq!(total, ByteSize::mb(3));
    }

    #[test]
    fn rate_and_time() {
        let r = Rate::mb_per_sec(10.0);
        let d = ByteSize::mb(100).time_at(r);
        assert!((d.as_secs_f64() - 10.0).abs() < 1e-9);
        let moved = r.bytes_in(Duration::from_secs(3));
        assert_eq!(moved, ByteSize::mb(30));
        let derived = ByteSize::mb(50) / Duration::from_secs(5);
        assert!((derived.as_mb_per_sec() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn gbit_conversion() {
        // 12.5 GB/s Slingshot-10 link == 100 Gbit/s
        let r = Rate::gbit_per_sec(100.0);
        assert!((r.as_bytes_per_sec() - 12.5e9).abs() < 1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ByteSize::bytes(512).to_string(), "512 B");
        assert_eq!(ByteSize::mb(32).to_string(), "32.00 MB");
        assert_eq!(ByteSize::gb(2).to_string(), "2.00 GB");
        assert_eq!(Rate::mb_per_sec(12.5).to_string(), "12.50 MB/s");
    }
}

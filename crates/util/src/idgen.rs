//! Monotonic id generation.
//!
//! Tasks, transfers, flow runs and granules all need cheap unique ids. The
//! generator is an atomic counter so ids are unique per process and strictly
//! increasing — useful both as map keys and for deterministic log ordering.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic id source. Clone-free and `Sync`; share via `&'static` or
/// embed one per service.
#[derive(Debug, Default)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// Start counting from 1 (0 is reserved as a niche/sentinel).
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(1),
        }
    }

    /// Allocate the next id.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Peek at the next id without allocating it (for tests/diagnostics).
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

/// Declare a strongly-typed id wrapper around `u64` with `Display`, ordering
/// and a `from_raw`/`raw` pair. Keeps ids from different services from being
/// mixed up at compile time.
#[macro_export]
macro_rules! typed_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u64);

        impl $name {
            /// Wrap a raw id value.
            pub const fn from_raw(v: u64) -> Self {
                Self(v)
            }

            /// The raw id value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "-{}"), self.0)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    typed_id!(
        /// Test id type.
        TestId,
        "test"
    );

    #[test]
    fn ids_are_unique_and_increasing() {
        let g = IdGen::new();
        let a = g.next();
        let b = g.next();
        let c = g.next();
        assert!(a < b && b < c);
        assert_eq!(a, 1);
    }

    #[test]
    fn concurrent_ids_are_unique() {
        let g = Arc::new(IdGen::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }

    #[test]
    fn typed_id_display_and_round_trip() {
        let id = TestId::from_raw(42);
        assert_eq!(id.to_string(), "test-42");
        assert_eq!(id.raw(), 42);
        assert!(TestId::from_raw(1) < TestId::from_raw(2));
    }
}

//! Deterministic, splittable pseudo-random number generation.
//!
//! Every stochastic component in the workspace (network jitter, task-duration
//! noise, synthetic cloud fields, fault injection) draws from these
//! generators so that a run is fully reproducible from a single `u64` seed.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny, fast generator used for seeding and for
//!   hash-like "stateless" randomness (e.g. value-noise lattices).
//! * [`Xoshiro256`] — xoshiro256\*\*, the workhorse generator with 256-bit
//!   state, used wherever a stream of numbers is consumed.
//!
//! Both implement the minimal [`Rng64`] trait which also supplies the
//! distributions the simulators need.

/// Minimal random-source trait: a stream of uniform `u64`s plus derived
/// distributions. Implemented by [`SplitMix64`] and [`Xoshiro256`].
pub trait Rng64 {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits — the low bits of some generators are weaker.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    fn next_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be nonzero");
        // Lemire's multiply-shift rejection method: unbiased and fast.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: low < bound. Accept unless in the biased span.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi);
        lo + self.next_below((hi - lo + 1) as u64) as usize
    }

    /// Standard normal via Box–Muller (one value per call; simple and
    /// allocation-free, throughput is not a concern at simulator scale).
    fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = loop {
            let u = self.next_f64();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Lognormal with the given *underlying* normal parameters.
    fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Lognormal parameterized by its own mean and coefficient of variation
    /// (`cv = std/mean`). Convenient for "duration with x% jitter" models.
    fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        assert!(mean > 0.0 && cv >= 0.0);
        if cv == 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        self.lognormal(mu, sigma2.sqrt())
    }

    /// Exponential with the given mean (`1/λ`).
    fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 1e-300 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Bernoulli trial with probability `p`.
    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below((i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element, or `None` if empty.
    fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.next_below(items.len() as u64) as usize])
        }
    }
}

/// SplitMix64: Steele, Lea & Flood's 64-bit mixer. One multiplication-free
/// add per step plus a finalizer; passes BigCrush. Primarily used here to
/// seed [`Xoshiro256`] and as a stateless hash for noise lattices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Stateless mix of a single value — usable as a fast integer hash.
    pub fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* by Blackman & Vigna: 256-bit state, period 2^256−1,
/// excellent statistical quality. The workspace's default generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 expansion (the construction recommended by the
    /// xoshiro authors; avoids the all-zero state).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derive an independent child generator. Equivalent to hashing
    /// `(self stream, label)` — children with distinct labels are
    /// statistically independent streams, which lets each simulated entity
    /// own its own generator without global draw-order coupling.
    pub fn split(&self, label: u64) -> Self {
        let mut sm =
            SplitMix64::new(self.s[0] ^ self.s[3].rotate_left(17) ^ SplitMix64::mix(label));
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng64 for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C source.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_determinism_and_spread() {
        let mut r1 = Xoshiro256::seed_from(42);
        let mut r2 = Xoshiro256::seed_from(42);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
        let mut r3 = Xoshiro256::seed_from(43);
        let same = (0..100).filter(|_| r1.next_u64() == r3.next_u64()).count();
        assert!(same < 3, "different seeds should give different streams");
    }

    #[test]
    fn split_streams_are_independent() {
        let root = Xoshiro256::seed_from(7);
        let mut a = root.split(0);
        let mut b = root.split(1);
        let collisions = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = Xoshiro256::seed_from(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from(11);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Xoshiro256::seed_from(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_mean_cv_matches_target() {
        let mut r = Xoshiro256::seed_from(6);
        let n = 100_000;
        let mean_target = 10.0;
        let cv = 0.3;
        let samples: Vec<f64> = (0..n)
            .map(|_| r.lognormal_mean_cv(mean_target, cv))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(
            (mean - mean_target).abs() / mean_target < 0.02,
            "mean {mean}"
        );
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut r = Xoshiro256::seed_from(8);
        let n = 100_000;
        let mean = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::seed_from(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "astronomically unlikely");
    }

    #[test]
    fn chance_rate() {
        let mut r = Xoshiro256::seed_from(12);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}

//! Lattice value noise and fractional Brownian motion (fBm).
//!
//! The synthetic MODIS generator uses these to produce spatially coherent
//! cloud-optical-thickness fields and a procedural land mask. Everything is
//! seeded and stateless (lattice values are hashed from integer coordinates),
//! so a granule's pixel field is reproducible from `(seed, granule index)`
//! without storing any state.

use crate::rng::SplitMix64;

/// Deterministic 2-D value noise: bilinear interpolation (with smoothstep
/// fade) of pseudo-random values on an integer lattice.
#[derive(Debug, Clone, Copy)]
pub struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    /// Noise field identified by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Pseudo-random value in `[0, 1)` at integer lattice point `(ix, iy)`.
    fn lattice(&self, ix: i64, iy: i64) -> f64 {
        let h = SplitMix64::mix(
            self.seed
                ^ (ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (iy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Smoothstep fade `3t² − 2t³` — C¹-continuous across cell boundaries.
    fn fade(t: f64) -> f64 {
        t * t * (3.0 - 2.0 * t)
    }

    /// Sample the noise at continuous coordinates; output in `[0, 1)`.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let ix = x.floor() as i64;
        let iy = y.floor() as i64;
        let fx = x - ix as f64;
        let fy = y - iy as f64;
        let v00 = self.lattice(ix, iy);
        let v10 = self.lattice(ix + 1, iy);
        let v01 = self.lattice(ix, iy + 1);
        let v11 = self.lattice(ix + 1, iy + 1);
        let u = Self::fade(fx);
        let v = Self::fade(fy);
        let a = v00 * (1.0 - u) + v10 * u;
        let b = v01 * (1.0 - u) + v11 * u;
        a * (1.0 - v) + b * v
    }
}

/// Fractional Brownian motion: a sum of `octaves` value-noise fields with
/// geometrically increasing frequency (`lacunarity`) and decreasing amplitude
/// (`gain`). Produces the multi-scale texture characteristic of cloud fields.
#[derive(Debug, Clone, Copy)]
pub struct Fbm {
    base: ValueNoise,
    /// Number of octaves summed.
    pub octaves: u32,
    /// Frequency multiplier between octaves (typically 2).
    pub lacunarity: f64,
    /// Amplitude multiplier between octaves (typically 0.5).
    pub gain: f64,
}

impl Fbm {
    /// Standard fBm with lacunarity 2 and gain 0.5.
    pub fn new(seed: u64, octaves: u32) -> Self {
        Self {
            base: ValueNoise::new(seed),
            octaves,
            lacunarity: 2.0,
            gain: 0.5,
        }
    }

    /// fBm with explicit lacunarity/gain.
    pub fn with_params(seed: u64, octaves: u32, lacunarity: f64, gain: f64) -> Self {
        Self {
            base: ValueNoise::new(seed),
            octaves,
            lacunarity,
            gain,
        }
    }

    /// Sample; output normalized to `[0, 1)` regardless of octave count.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let mut sum = 0.0;
        let mut amp = 1.0;
        let mut freq = 1.0;
        let mut norm = 0.0;
        for oct in 0..self.octaves {
            // Offset each octave so lattice artifacts don't align.
            let off = oct as f64 * 137.31;
            sum += amp * self.base.sample(x * freq + off, y * freq - off);
            norm += amp;
            amp *= self.gain;
            freq *= self.lacunarity;
        }
        sum / norm
    }

    /// Sample mapped through a ridge transform (`1 − |2n − 1|`), giving
    /// filament-like structures used for cirrus-type cloud textures.
    pub fn ridged(&self, x: f64, y: f64) -> f64 {
        let n = self.sample(x, y);
        1.0 - (2.0 * n - 1.0).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        let n1 = ValueNoise::new(99);
        let n2 = ValueNoise::new(99);
        for i in 0..50 {
            let x = i as f64 * 0.37;
            let y = i as f64 * 0.11;
            assert_eq!(n1.sample(x, y), n2.sample(x, y));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let n1 = ValueNoise::new(1);
        let n2 = ValueNoise::new(2);
        let diffs = (0..100)
            .filter(|&i| {
                let x = i as f64 * 0.7;
                (n1.sample(x, x * 0.3) - n2.sample(x, x * 0.3)).abs() > 1e-9
            })
            .count();
        assert!(diffs > 90);
    }

    #[test]
    fn noise_in_unit_range() {
        let n = ValueNoise::new(5);
        for i in 0..40 {
            for j in 0..40 {
                let v = n.sample(i as f64 * 0.23 - 3.0, j as f64 * 0.31 - 5.0);
                assert!((0.0..1.0).contains(&v), "v={v}");
            }
        }
    }

    #[test]
    fn noise_matches_lattice_at_integers() {
        // At integer coordinates, bilinear interpolation reduces to the
        // lattice value, so sampling must be exactly reproducible there too.
        let n = ValueNoise::new(7);
        let a = n.sample(3.0, 4.0);
        let b = n.sample(3.0, 4.0);
        assert_eq!(a, b);
    }

    #[test]
    fn noise_is_continuous() {
        // Values at nearby points should be close (continuity ⇒ spatial
        // coherence, the property the cloud fields rely on).
        let n = ValueNoise::new(11);
        let eps = 1e-4;
        for i in 0..20 {
            let x = i as f64 * 0.618 + 0.123;
            let y = i as f64 * 0.414 + 0.456;
            let d = (n.sample(x, y) - n.sample(x + eps, y + eps)).abs();
            assert!(d < 0.01, "noise jump {d} at ({x},{y})");
        }
    }

    #[test]
    fn fbm_in_unit_range_and_rougher_with_octaves() {
        let smooth = Fbm::new(3, 1);
        // High gain keeps the upper octaves' amplitude large, so the extra
        // octaves must dominate the increment energy.
        let rough = Fbm::with_params(3, 6, 2.0, 0.9);
        let mut smooth_var = 0.0;
        let mut rough_var = 0.0;
        let mut prev_s = smooth.sample(0.0, 0.0);
        let mut prev_r = rough.sample(0.0, 0.0);
        // Small lag so the single-octave increments shrink ~quadratically
        // while the high-frequency octaves keep contributing energy.
        for i in 1..2000 {
            let x = i as f64 * 0.005;
            let s = smooth.sample(x, 0.0);
            let r = rough.sample(x, 0.0);
            assert!((0.0..1.0).contains(&s));
            assert!((0.0..1.0).contains(&r));
            smooth_var += (s - prev_s).powi(2);
            rough_var += (r - prev_r).powi(2);
            prev_s = s;
            prev_r = r;
        }
        assert!(
            rough_var > smooth_var,
            "more octaves should add high-frequency energy ({rough_var} vs {smooth_var})"
        );
    }

    #[test]
    fn ridged_in_range() {
        let f = Fbm::new(8, 4);
        for i in 0..100 {
            let v = f.ridged(i as f64 * 0.13, i as f64 * 0.07);
            assert!((0.0..=1.0).contains(&v));
        }
    }
}

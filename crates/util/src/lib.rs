//! `eoml-util` — foundation utilities shared by every crate in the `eoml`
//! workspace.
//!
//! This crate is deliberately dependency-free so that the substrates built on
//! top of it (simulator, data generators, fabric services) are fully
//! deterministic and self-contained:
//!
//! * [`rng`] — splittable deterministic PRNGs (SplitMix64, xoshiro256**) with
//!   the distributions the simulators need (normal, lognormal, exponential).
//! * [`stats`] — streaming statistics (Welford), summaries with percentiles,
//!   fixed-width histograms.
//! * [`units`] — byte sizes and transfer rates with human-readable formatting.
//! * [`noise`] — lattice value noise and fractional Brownian motion used to
//!   synthesize cloud and land fields.
//! * [`timebase`] — civil dates, day-of-year arithmetic and UTC timestamps in
//!   the range MODIS operates in (2000‒present).
//! * [`idgen`] — process-wide monotonic id generation for tasks, transfers
//!   and flow runs.

pub mod idgen;
pub mod noise;
pub mod rng;
pub mod stats;
pub mod timebase;
pub mod units;

pub use idgen::IdGen;
pub use rng::{Rng64, SplitMix64, Xoshiro256};
pub use stats::{Histogram, OnlineStats, Summary};
pub use timebase::{CivilDate, UtcTime};
pub use units::{ByteSize, Rate};

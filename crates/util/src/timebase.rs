//! Civil dates and UTC timestamps.
//!
//! MODIS data is organized by `(year, day-of-year)` directories and 5-minute
//! granule slots; this module provides exactly the calendar arithmetic the
//! catalog and workflow need, with no external dependency.

use std::fmt;
use std::ops::{Add, Sub};
use std::time::Duration;

/// A calendar date (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDate {
    year: i32,
    month: u8,
    day: u8,
}

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Whether `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

impl CivilDate {
    /// Construct, validating month/day ranges.
    pub fn new(year: i32, month: u8, day: u8) -> Option<Self> {
        if !(1..=12).contains(&month) {
            return None;
        }
        let dim = Self::days_in_month(year, month);
        if day == 0 || day > dim {
            return None;
        }
        Some(Self { year, month, day })
    }

    /// Days in `month` of `year`.
    pub fn days_in_month(year: i32, month: u8) -> u8 {
        if month == 2 && is_leap_year(year) {
            29
        } else {
            DAYS_IN_MONTH[(month - 1) as usize]
        }
    }

    /// Days in `year` (365 or 366).
    pub fn days_in_year(year: i32) -> u16 {
        if is_leap_year(year) {
            366
        } else {
            365
        }
    }

    /// Construct from year and 1-based day-of-year (the MODIS convention,
    /// e.g. `MOD021KM.A2022001.*` is day 1 of 2022).
    pub fn from_ordinal(year: i32, doy: u16) -> Option<Self> {
        if doy == 0 || doy > Self::days_in_year(year) {
            return None;
        }
        let mut remaining = doy;
        for month in 1..=12u8 {
            let dim = Self::days_in_month(year, month) as u16;
            if remaining <= dim {
                return Some(Self {
                    year,
                    month,
                    day: remaining as u8,
                });
            }
            remaining -= dim;
        }
        None
    }

    /// 1-based day-of-year.
    pub fn ordinal(&self) -> u16 {
        let mut doy = self.day as u16;
        for month in 1..self.month {
            doy += Self::days_in_month(self.year, month) as u16;
        }
        doy
    }

    /// Year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Month component (1–12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// Day-of-month component (1–31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Days since the civil epoch 1970-01-01 (may be negative).
    /// Algorithm from Howard Hinnant's `chrono`-compatible date algorithms.
    pub fn days_from_epoch(&self) -> i64 {
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (self.month as i64 + 9) % 12;
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`days_from_epoch`](Self::days_from_epoch).
    pub fn from_days_from_epoch(z: i64) -> Self {
        let z = z + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
        let year = if m <= 2 { y + 1 } else { y } as i32;
        Self {
            year,
            month: m,
            day: d,
        }
    }

    /// The next calendar day.
    pub fn succ(&self) -> Self {
        Self::from_days_from_epoch(self.days_from_epoch() + 1)
    }

    /// Iterator over `n` consecutive days starting at `self`.
    pub fn iter_days(&self, n: usize) -> impl Iterator<Item = CivilDate> {
        let start = *self;
        (0..n as i64).map(move |i| CivilDate::from_days_from_epoch(start.days_from_epoch() + i))
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A UTC instant with microsecond resolution, stored as seconds since the
/// Unix epoch. Leap seconds are ignored (as in POSIX time), which is the
/// convention MODIS filenames and the simulators use.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct UtcTime {
    secs: f64,
}

impl UtcTime {
    /// The Unix epoch.
    pub const EPOCH: UtcTime = UtcTime { secs: 0.0 };

    /// From seconds since the epoch.
    pub fn from_unix_secs(secs: f64) -> Self {
        Self { secs }
    }

    /// Midnight UTC at the start of `date`.
    pub fn from_date(date: CivilDate) -> Self {
        Self {
            secs: date.days_from_epoch() as f64 * 86_400.0,
        }
    }

    /// From date plus hour/minute/second components.
    pub fn from_date_hms(date: CivilDate, hour: u8, min: u8, sec: f64) -> Self {
        Self {
            secs: date.days_from_epoch() as f64 * 86_400.0
                + hour as f64 * 3600.0
                + min as f64 * 60.0
                + sec,
        }
    }

    /// Seconds since the epoch.
    pub fn unix_secs(&self) -> f64 {
        self.secs
    }

    /// The civil date containing this instant.
    pub fn date(&self) -> CivilDate {
        CivilDate::from_days_from_epoch((self.secs / 86_400.0).floor() as i64)
    }

    /// `(hour, minute, second)` within the UTC day.
    pub fn hms(&self) -> (u8, u8, f64) {
        let day_secs = self.secs.rem_euclid(86_400.0);
        let hour = (day_secs / 3600.0) as u8;
        let min = ((day_secs % 3600.0) / 60.0) as u8;
        let sec = day_secs % 60.0;
        (hour, min, sec)
    }

    /// Seconds elapsed since midnight UTC.
    pub fn seconds_of_day(&self) -> f64 {
        self.secs.rem_euclid(86_400.0)
    }

    /// ISO-8601 string with seconds precision, e.g. `2022-01-01T00:05:00Z`.
    pub fn iso8601(&self) -> String {
        let (h, m, s) = self.hms();
        format!("{}T{:02}:{:02}:{:02.0}Z", self.date(), h, m, s.floor())
    }
}

impl Add<Duration> for UtcTime {
    type Output = UtcTime;
    fn add(self, rhs: Duration) -> UtcTime {
        UtcTime {
            secs: self.secs + rhs.as_secs_f64(),
        }
    }
}

impl Sub<UtcTime> for UtcTime {
    type Output = Duration;
    fn sub(self, rhs: UtcTime) -> Duration {
        Duration::from_secs_f64((self.secs - rhs.secs).max(0.0))
    }
}

impl fmt::Display for UtcTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.iso8601())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2004));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2022));
        assert!(is_leap_year(2024));
    }

    #[test]
    fn date_validation() {
        assert!(CivilDate::new(2022, 2, 29).is_none());
        assert!(CivilDate::new(2024, 2, 29).is_some());
        assert!(CivilDate::new(2022, 13, 1).is_none());
        assert!(CivilDate::new(2022, 0, 1).is_none());
        assert!(CivilDate::new(2022, 4, 31).is_none());
        assert!(CivilDate::new(2022, 4, 30).is_some());
    }

    #[test]
    fn ordinal_round_trip() {
        // Exhaustive round-trip over two full years, one leap one not.
        for year in [2022, 2024] {
            for doy in 1..=CivilDate::days_in_year(year) {
                let d = CivilDate::from_ordinal(year, doy).unwrap();
                assert_eq!(d.ordinal(), doy, "{d}");
                assert_eq!(d.year(), year);
            }
        }
        assert!(CivilDate::from_ordinal(2022, 366).is_none());
        assert!(CivilDate::from_ordinal(2024, 366).is_some());
    }

    #[test]
    fn known_epoch_days() {
        assert_eq!(CivilDate::new(1970, 1, 1).unwrap().days_from_epoch(), 0);
        assert_eq!(CivilDate::new(1970, 1, 2).unwrap().days_from_epoch(), 1);
        assert_eq!(CivilDate::new(1969, 12, 31).unwrap().days_from_epoch(), -1);
        // 2022-01-01 is 18993 days after the epoch.
        assert_eq!(
            CivilDate::new(2022, 1, 1).unwrap().days_from_epoch(),
            18_993
        );
    }

    #[test]
    fn epoch_days_round_trip() {
        for z in (-20_000..40_000).step_by(137) {
            let d = CivilDate::from_days_from_epoch(z);
            assert_eq!(d.days_from_epoch(), z, "{d}");
        }
    }

    #[test]
    fn succ_and_iter_days() {
        let d = CivilDate::new(2022, 12, 31).unwrap();
        assert_eq!(d.succ(), CivilDate::new(2023, 1, 1).unwrap());
        let days: Vec<_> = CivilDate::new(2022, 2, 27).unwrap().iter_days(3).collect();
        assert_eq!(
            days,
            vec![
                CivilDate::new(2022, 2, 27).unwrap(),
                CivilDate::new(2022, 2, 28).unwrap(),
                CivilDate::new(2022, 3, 1).unwrap(),
            ]
        );
    }

    #[test]
    fn utc_time_components() {
        let d = CivilDate::new(2022, 1, 1).unwrap();
        let t = UtcTime::from_date_hms(d, 10, 35, 0.0);
        assert_eq!(t.date(), d);
        let (h, m, s) = t.hms();
        assert_eq!((h, m), (10, 35));
        assert!(s.abs() < 1e-9);
        assert_eq!(t.iso8601(), "2022-01-01T10:35:00Z");
    }

    #[test]
    fn utc_time_arithmetic() {
        let d = CivilDate::new(2022, 1, 1).unwrap();
        let t0 = UtcTime::from_date(d);
        let t1 = t0 + Duration::from_secs(300);
        assert_eq!((t1 - t0).as_secs(), 300);
        assert_eq!(t1.iso8601(), "2022-01-01T00:05:00Z");
        // Crossing midnight
        let t2 = t0 + Duration::from_secs(86_400 + 60);
        assert_eq!(t2.date(), CivilDate::new(2022, 1, 2).unwrap());
    }

    #[test]
    fn display_date() {
        assert_eq!(
            CivilDate::new(2003, 7, 14).unwrap().to_string(),
            "2003-07-14"
        );
    }
}

//! Streaming statistics and summaries used by the benchmark harness and the
//! telemetry subsystem.

/// Welford's online algorithm: numerically stable running mean/variance
/// without storing samples. Used for per-stage latency accounting where the
/// sample count can be large.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another accumulator (parallel Welford / Chan et al.).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A full-sample summary with percentiles — the benchmark harness stores all
/// iteration timings (counts are small) and reports this.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Build from raw samples (order irrelevant).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        Self { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the summary is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        (self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    }

    /// Linear-interpolated percentile, `q` in `[0, 100]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=100.0).contains(&q));
        if self.samples.is_empty() {
            return 0.0;
        }
        if self.samples.len() == 1 {
            return self.samples[0];
        }
        let rank = q / 100.0 * (self.samples.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
    }

    /// Median (p50).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.samples.first().copied().unwrap_or(0.0)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.samples.last().copied().unwrap_or(0.0)
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
/// Used by the telemetry subsystem for latency distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// `nbuckets` equal-width buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbuckets: usize) -> Self {
        assert!(hi > lo && nbuckets > 0);
        Self {
            lo,
            hi,
            buckets: vec![0; nbuckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.buckets[idx.min(n - 1)] += 1;
        }
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    pub fn nbuckets(&self) -> usize {
        self.buckets.len()
    }

    /// `[lo, hi)` bounds of bucket `i`.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Total recorded count including under/overflow.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_percentiles() {
        let s = Summary::from_samples((1..=100).map(|i| i as f64).collect());
        assert!((s.median() - 50.5).abs() < 1e-9);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.percentile(0.0) - 1.0).abs() < 1e-9);
        assert!((s.percentile(100.0) - 100.0).abs() < 1e-9);
        assert!((s.percentile(25.0) - 25.75).abs() < 1e-9);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(vec![42.0]);
        assert_eq!(s.median(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.percentile(99.0), 42.0);
    }

    #[test]
    fn summary_mean_std() {
        let s = Summary::from_samples(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // sample std dev with Bessel correction: sqrt(32/7)
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(10.0);
        h.record(100.0);
        for i in 0..10 {
            assert_eq!(h.bucket(i), 1, "bucket {i}");
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 13);
        let (lo, hi) = h.bucket_bounds(3);
        assert!((lo - 3.0).abs() < 1e-12 && (hi - 4.0).abs() < 1e-12);
    }
}

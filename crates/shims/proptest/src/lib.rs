//! Hermetic shim for `proptest`: the same authoring surface (`proptest!`,
//! `prop_compose!`, `prop_oneof!`, strategies, `prop_assert*`) backed by a
//! deterministic seeded generator. Differences from the real crate: no
//! shrinking (a failing case reports its inputs but is not minimised) and
//! regex strategies support only the character-class + `{m,n}` subset this
//! workspace uses.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// `prop::` alias module, as re-exported by the real crate's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// One-stop import for tests: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fail the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Uniformly choose among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests. Supports the `#![proptest_config(..)]` header and
/// any number of `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { @cfg ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let runner = $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $(let $pat = $crate::strategy::sample_of(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property case {case} failed: {e}");
                }
            }
        }
        $crate::__proptest_each! { @cfg ($config) $($rest)* }
    };
}

/// Define a named strategy function. Single-stage form generates all inputs
/// then maps them through the body; the two-stage form lets the second
/// stage's strategies depend on first-stage values (a flat-map).
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($fnarg:tt)*)
            ($($pat1:pat in $strat1:expr),+ $(,)?)
            ($($pat2:pat in $strat2:expr),+ $(,)?)
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($fnarg)*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::from_fn(move |rng| {
                $(let $pat1 = $crate::strategy::sample_of(&$strat1, rng);)+
                $(let $pat2 = {
                    let stage_two = $strat2;
                    $crate::strategy::sample_of(&stage_two, rng)
                };)+
                $body
            })
        }
    };
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($fnarg:tt)*)
            ($($pat:pat in $strat:expr),+ $(,)?)
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($fnarg)*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::from_fn(move |rng| {
                $(let $pat = $crate::strategy::sample_of(&$strat, rng);)+
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u64> {
        0u64..10
    }

    prop_compose! {
        fn pair()(a in small(), b in 1u64..5) -> (u64, u64) {
            (a, b)
        }
    }

    prop_compose! {
        fn dependent()(len in 1usize..6)(
            items in prop::collection::vec(0u32..100, len)
        ) -> Vec<u32> {
            items
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, y in 1u8..=255) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(y >= 1);
        }

        #[test]
        fn composed_pairs((a, b) in pair()) {
            prop_assert!(a < 10 && (1..5).contains(&b));
        }

        #[test]
        fn two_stage_respects_dependency(items in dependent()) {
            prop_assert!(!items.is_empty() && items.len() < 6);
            for v in &items {
                prop_assert!(*v < 100);
            }
        }

        #[test]
        fn regex_subset_strings(s in "[a-z]{1,8}", t in "[ -~]{0,16}") {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.len() <= 16);
            prop_assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn oneof_and_index(v in prop_oneof![Just(1u8), Just(2u8)], ix in any::<prop::sample::Index>()) {
            prop_assert!(v == 1 || v == 2);
            let i = ix.index(7);
            prop_assert!(i < 7);
        }
    }

    #[test]
    fn determinism_same_name_same_sequence() {
        let cfg = ProptestConfig::with_cases(4);
        let r1 = crate::test_runner::TestRunner::new(&cfg, "x");
        let r2 = crate::test_runner::TestRunner::new(&cfg, "x");
        let a: Vec<u64> = (0..4).map(|c| r1.rng_for(c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| r2.rng_for(c).next_u64()).collect();
        assert_eq!(a, b);
    }
}

//! Strategy trait and the combinators this workspace's tests use: ranges,
//! `any`, `Just`, `prop_map`, boxing, unions, tuples, per-element `Vec`s,
//! and a regex-subset string strategy (`"[a-z]{1,8}"` style patterns).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Generate one value from a strategy (free-function form used by the
/// macros so both owned and borrowed strategy expressions work).
pub fn sample_of<S: Strategy + ?Sized>(s: &S, rng: &mut TestRng) -> S::Value {
    s.generate(rng)
}

/// Build a strategy from a generation function (backs `prop_compose!`).
pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy { f }
}

/// See [`from_fn`].
pub struct FnStrategy<F> {
    f: F,
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

trait ErasedStrategy<T> {
    fn generate_erased(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_erased(rng)
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Requires at least one branch.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Self { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].generate(rng)
    }
}

// ---------------------------------------------------------------- any::<T>()

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full domain of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_fraction(rng.next_f64())
    }
}

// ------------------------------------------------------------------- ranges

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

strategy_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}

strategy_float_range!(f32, f64);

// ------------------------------------------------------------------- tuples

macro_rules! strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

strategy_tuple!(A);
strategy_tuple!(A, B);
strategy_tuple!(A, B, C);
strategy_tuple!(A, B, C, D);
strategy_tuple!(A, B, C, D, E);
strategy_tuple!(A, B, C, D, E, F);

/// A `Vec` of strategies generates one value per element, in order.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// ------------------------------------------------- regex-subset strings

/// String literals are strategies over a regex subset: concatenations of
/// character classes (`[a-z0-9_]`, `[ -~]`, `\n` escapes) each with an
/// optional `{m,n}` or `{n}` repetition.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                    + i;
                let set = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                set
            }
            '\\' => {
                let c = unescape(chars.get(i + 1).copied(), pattern);
                i += 2;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse::<usize>().expect("repetition lower bound"),
                    hi.parse::<usize>().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.parse::<usize>().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            out.push(set[rng.below(set.len() as u64) as usize]);
        }
    }
    out
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let c = match body[i] {
            '\\' => {
                i += 1;
                unescape(body.get(i).copied(), pattern)
            }
            c => c,
        };
        // A '-' between two members denotes an inclusive range.
        if body.get(i + 1) == Some(&'-') && i + 2 < body.len() {
            let hi = match body[i + 2] {
                '\\' => {
                    i += 1;
                    unescape(body.get(i + 2).copied(), pattern)
                }
                c => c,
            };
            assert!(c <= hi, "inverted class range in pattern {pattern:?}");
            for v in c..=hi {
                set.push(v);
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
    set
}

fn unescape(c: Option<char>, pattern: &str) -> char {
    match c {
        Some('n') => '\n',
        Some('r') => '\r',
        Some('t') => '\t',
        Some(c) => c,
        None => panic!("dangling escape in pattern {pattern:?}"),
    }
}

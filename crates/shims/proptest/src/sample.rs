//! `prop::sample` — currently just [`Index`], a length-agnostic position.

/// A position into a collection whose length is only known at use time:
/// generated as a fraction, resolved with [`Index::index`].
#[derive(Debug, Clone, Copy)]
pub struct Index {
    fraction: f64,
}

impl Index {
    pub(crate) fn from_fraction(fraction: f64) -> Self {
        Self { fraction }
    }

    /// Resolve against a collection of `len` elements; always in-bounds.
    /// Panics if `len` is zero (there is no valid index).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        ((self.fraction * len as f64) as usize).min(len - 1)
    }
}

//! Deterministic test-case driver: per-test seeding (FNV hash of the test
//! name), splitmix64 case streams, and the case-failure error type the
//! `prop_assert*` macros return.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property assertion, carrying its formatted message.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Drives the per-case RNG streams for one property test.
pub struct TestRunner {
    cases: u32,
    seed_base: u64,
}

impl TestRunner {
    /// Seed deterministically from the test's name.
    pub fn new(config: &ProptestConfig, name: &str) -> Self {
        // FNV-1a over the name keeps independent tests on independent
        // streams while staying reproducible run-to-run.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self {
            cases: config.cases,
            seed_base: h,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// Independent RNG for one case.
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::new(self.seed_base ^ ((case as u64).wrapping_mul(0x9e3779b97f4a7c15)))
    }
}

/// Splitmix64 generator — small, fast, and deterministic.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

//! Hermetic shim standing in for the `serde` façade crate.
//!
//! This workspace never uses `#[derive(Serialize, Deserialize)]` or the
//! serde data model directly — JSON values go through the `serde_json`
//! shim's self-contained `Value` type — so this crate only has to exist
//! to satisfy manifests that name `serde` as a dependency.

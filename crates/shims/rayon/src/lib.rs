//! Hermetic shim for `rayon`: `par_iter`/`into_par_iter` + `map` +
//! `collect`/`sum`, executed on real OS threads via `std::thread::scope`.
//!
//! Unlike a sequential stand-in, this shim genuinely parallelises: work is
//! split into at most `num_threads` order-preserving chunks, one scoped
//! thread each. `ThreadPool::install` bounds the worker count for every
//! parallel operation run inside it (thread-local, like rayon's registry),
//! which is what keeps executor concurrency tests meaningful.

use std::cell::Cell;
use std::fmt;

thread_local! {
    static POOL_SIZE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn current_threads() -> usize {
    POOL_SIZE
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
        .max(1)
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim,
/// kept so `.build().expect(..)` call sites compile unchanged).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a bounded [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder with the default (machine) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap worker count; `0` means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Naming hook, accepted for API parity. Scoped shim threads are
    /// short-lived and unnamed.
    pub fn thread_name<F: FnMut(usize) -> String>(self, _f: F) -> Self {
        self
    }

    /// Finalise the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A bounded worker pool. Threads are not kept alive between operations;
/// the pool records the bound that `install` applies to parallel ops.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread bound in effect for any parallel
    /// iterator work it performs.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_SIZE.with(|c| c.replace(Some(self.threads)));
        let out = op();
        POOL_SIZE.with(|c| c.set(prev));
        out
    }

    /// The configured worker bound.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// A parallel iterator over owned items (materialised up front — fine for
/// the modest batch sizes this workspace processes).
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator; consumed by [`ParMap::collect`] / [`ParMap::sum`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    fn run(self) -> Vec<R> {
        let ParMap { items, f } = self;
        let len = items.len();
        if len == 0 {
            return Vec::new();
        }
        let budget = current_threads();
        let workers = budget.min(len);
        if workers == 1 {
            return items.into_iter().map(&f).collect();
        }
        // Nested parallel ops inside a worker share the pool rather than
        // escaping to full machine parallelism (rayon's pool semantics):
        // split the thread budget across the workers we spawn.
        let nested = (budget / workers).max(1);
        let chunk = len.div_ceil(workers);
        let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(workers);
            let mut iter = items.into_iter();
            loop {
                let chunk_items: Vec<T> = iter.by_ref().take(chunk).collect();
                if chunk_items.is_empty() {
                    break;
                }
                let f = &f;
                handles.push(s.spawn(move || {
                    POOL_SIZE.with(|c| c.set(Some(nested)));
                    chunk_items.into_iter().map(f).collect::<Vec<R>>()
                }));
            }
            for h in handles {
                out.push(h.join().expect("parallel worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }

    /// Gather mapped results, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Sum mapped results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.run().into_iter().sum()
    }
}

/// `par_iter` over anything sliceable (shared references).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `into_par_iter` over owned collections.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;
    /// Parallel iterator that takes ownership of the items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Glob-import surface matching `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential() {
        let v: Vec<u64> = (1..=100).collect();
        let s: u64 = v.into_par_iter().map(|x| x).sum();
        assert_eq!(s, 5050);
    }

    #[test]
    fn install_bounds_concurrency() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        pool.install(|| {
            let _: Vec<u32> = items
                .par_iter()
                .map(|&x| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    live.fetch_sub(1, Ordering::SeqCst);
                    x
                })
                .collect();
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn nested_par_iter_shares_the_pool_budget() {
        // A nested par_iter inside a 1-thread pool must not fan out to
        // machine parallelism; total live workers stays at 1.
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let outer: Vec<u32> = (0..4).collect();
        pool.install(|| {
            let _: Vec<u32> = outer
                .par_iter()
                .map(|&x| {
                    let inner: Vec<u32> = (0..8).collect();
                    inner
                        .par_iter()
                        .map(|&y| {
                            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(1));
                            live.fetch_sub(1, Ordering::SeqCst);
                            y
                        })
                        .sum::<u32>()
                        + x
                })
                .collect();
        });
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "nested work escaped the pool"
        );
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}

//! `serde_json::Map` stand-in: a key-ordered map over `BTreeMap` (sorted
//! keys, so serialised output is deterministic). Generic like the real
//! crate's `Map<K, V>`, defaulting to `Map<String, Value>`.

use crate::Value;
use std::collections::btree_map::{self, BTreeMap};

/// A JSON object's storage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Map<K = String, V = Value>
where
    K: Ord,
{
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> Map<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        Self {
            inner: BTreeMap::new(),
        }
    }

    /// Insert a member, returning any previous value for the key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the map has no members.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate members in key order.
    pub fn iter(&self) -> btree_map::Iter<'_, K, V> {
        self.inner.iter()
    }

    /// Iterate members mutably in key order.
    pub fn iter_mut(&mut self) -> btree_map::IterMut<'_, K, V> {
        self.inner.iter_mut()
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> btree_map::Keys<'_, K, V> {
        self.inner.keys()
    }

    /// Iterate values in key order.
    pub fn values(&self) -> btree_map::Values<'_, K, V> {
        self.inner.values()
    }
}

impl<V> Map<String, V> {
    /// Look up a member.
    pub fn get(&self, key: &str) -> Option<&V> {
        self.inner.get(key)
    }

    /// Mutably look up a member.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut V> {
        self.inner.get_mut(key)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.inner.contains_key(key)
    }

    /// Remove a member.
    pub fn remove(&mut self, key: &str) -> Option<V> {
        self.inner.remove(key)
    }
}

impl Map<String, Value> {
    /// Get a mutable reference to `key`, inserting `Null` if absent
    /// (supports `value["key"] = x` auto-vivification).
    pub(crate) fn entry_or_null(&mut self, key: &str) -> &mut Value {
        self.inner.entry(key.to_string()).or_insert(Value::Null)
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Map {
            inner: iter.into_iter().collect(),
        }
    }
}

impl<K: Ord, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = btree_map::IntoIter<K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a Map<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = btree_map::Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

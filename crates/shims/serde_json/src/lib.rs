//! Hermetic shim for `serde_json`: a self-contained `Value` tree, the
//! `json!` construction macro, a recursive-descent parser (`from_str`), and
//! compact serialisation (`Display` / `to_string`). No serde data model —
//! the workspace only ever manipulates dynamic `Value`s.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

pub mod map;
pub use map::Map;

/// Numeric JSON value. Cross-variant comparisons are numeric, so a parsed
/// `5` equals a constructed `5.0`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer exceeding `i64::MAX` (or constructed from `u64`).
    U64(u64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// Numeric value as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// Numeric value as `i64` if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }

    /// Numeric value as `u64` if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(v) => u64::try_from(v).ok(),
            Number::U64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

// Matches the real crate, where `Number` (and hence `Value`) is `Eq`; the
// NaN caveat doesn't arise because nothing in this workspace stores NaN.
impl Eq for Number {}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => write!(f, "{v:?}"),
            Number::F64(_) => write!(f, "null"),
        }
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Value {
    /// `null` (also the default).
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A string-keyed map (sorted keys — deterministic output).
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Borrow as an object, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrow as an object, if this is one.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutably borrow as an array, if this is one.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            '\u{08}' => write!(f, "\\b")?,
            '\u{0c}' => write!(f, "\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

// ---------------------------------------------------------------------------
// Conversions into Value (the surface `json!` interpolation relies on).
// ---------------------------------------------------------------------------

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::I64(v as i64)) }
        }
    )*};
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U64(v as u64)) }
        }
    )*};
}

from_signed!(i8, i16, i32, i64, isize);
from_unsigned!(u8, u16, u32, u64, usize);

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<Cow<'_, str>> for Value {
    fn from(v: Cow<'_, str>) -> Value {
        Value::String(v.into_owned())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<K: Into<String>, V: Into<Value>> From<BTreeMap<K, V>> for Value {
    fn from(m: BTreeMap<K, V>) -> Value {
        Value::Object(m.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

/// By-reference conversion used by `json!` interpolation — mirrors the real
/// macro's `to_value(&expr)`, so interpolating a field never moves it.
pub trait ToJsonValue {
    /// Convert a borrowed value into a JSON tree.
    fn to_json_value(&self) -> Value;
}

/// Entry point `json!` expands to for interpolated expressions.
pub fn to_value<T: ToJsonValue + ?Sized>(v: &T) -> Value {
    v.to_json_value()
}

impl<T: ToJsonValue + ?Sized> ToJsonValue for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

macro_rules! to_value_via_copy {
    ($($t:ty),*) => {$(
        impl ToJsonValue for $t {
            fn to_json_value(&self) -> Value { Value::from(*self) }
        }
    )*};
}

to_value_via_copy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64, bool);

impl ToJsonValue for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJsonValue for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJsonValue for Cow<'_, str> {
    fn to_json_value(&self) -> Value {
        Value::String(self.as_ref().to_string())
    }
}

impl ToJsonValue for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl ToJsonValue for Map {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl<T: ToJsonValue> ToJsonValue for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJsonValue::to_json_value).collect())
    }
}

impl<T: ToJsonValue> ToJsonValue for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJsonValue::to_json_value).collect())
    }
}

impl<T: ToJsonValue> ToJsonValue for Option<T> {
    fn to_json_value(&self) -> Value {
        self.as_ref()
            .map_or(Value::Null, ToJsonValue::to_json_value)
    }
}

impl<K: Ord + AsRef<str>, V: ToJsonValue> ToJsonValue for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Literal comparisons (assert_eq!(v["x"], 42) and friends).
// ---------------------------------------------------------------------------

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == Number::from_literal(*other))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool { other == self }
        }
    )*};
}

impl Number {
    fn from_literal<T: Into<Value>>(v: T) -> Number {
        match v.into() {
            Value::Number(n) => n,
            _ => unreachable!("literal is numeric"),
        }
    }
}

eq_num!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

// ---------------------------------------------------------------------------
// Indexing: v["key"], v[3]; v["key"] = x auto-vivifies through Null.
// ---------------------------------------------------------------------------

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(map) => map.entry_or_null(key),
            other => panic!("cannot index {} with a string key", kind(other)),
        }
    }
}

fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::Number(_) => "a number",
        Value::String(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    }
}

// ---------------------------------------------------------------------------
// json! macro (TT-munching construction, serde_json style).
// ---------------------------------------------------------------------------

/// Build a [`Value`] from JSON-like syntax with expression interpolation.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            #[allow(unused_mut)]
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- arrays: accumulate elements, recursing into json! per element ----
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- objects: munch key tokens until `:`, then capture the value ----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

/// Parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    at: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Serialise a [`Value`] compactly. Infallible for this shim's `Value`; the
/// `Result` keeps serde_json's signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Unpaired surrogates degrade to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the maximal run of unescaped bytes in one go
                    // (UTF-8 continuation bytes are >= 0x80, never '"' or
                    // '\\', so a byte scan lands on character boundaries).
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_documents() {
        let name = "granule".to_string();
        let doc = json!({
            "file": name,
            "tiles": [1, 2, 3],
            "meta": { "night": false, "lat": -12.5 },
            "nothing": null,
        });
        assert_eq!(doc["file"], "granule");
        assert_eq!(doc["tiles"][2], 3);
        assert_eq!(doc["meta"]["lat"], -12.5);
        assert_eq!(doc["meta"]["night"], false);
        assert!(doc["nothing"].is_null());
        assert!(doc["missing"].is_null());
    }

    #[test]
    fn roundtrip_parse_and_print() {
        let src = r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#;
        let v = from_str(src).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][2], "x\n");
        assert_eq!(v["b"]["c"], -3);
        let printed = v.to_string();
        assert_eq!(from_str(&printed).unwrap(), v);
    }

    #[test]
    fn index_mut_auto_vivifies() {
        let mut ctx = json!({ "input": 1 });
        ctx["result"] = json!({ "ok": true });
        assert_eq!(ctx["result"]["ok"], true);
        let mut blank = Value::Null;
        blank["x"] = json!(7);
        assert_eq!(blank["x"], 7);
    }

    #[test]
    fn numeric_equality_is_cross_variant() {
        assert_eq!(from_str("5").unwrap(), json!(5.0));
        assert_eq!(json!(8usize), 8);
        assert_eq!(json!(5.0), 5.0);
    }

    #[test]
    fn parse_errors_carry_position() {
        let e = from_str("{\"a\": }").unwrap_err();
        assert!(e.to_string().contains("at byte"));
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("[1] junk").is_err());
    }

    #[test]
    fn collections_convert() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1i32, 2]);
        let v: Value = m.into();
        assert_eq!(v["k"][1], 2);
    }
}

//! Hermetic shim for `parking_lot`: the same non-poisoning guard-based API,
//! implemented over `std::sync`. Poisoned std locks are recovered rather
//! than propagated — matching parking_lot's behaviour of not poisoning.

use std::sync;

/// A mutex whose `lock` returns the guard directly (never a poison error).
#[derive(Default, Debug)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. The inner `Option` is only ever `None`
/// transiently inside [`Condvar::wait`].
pub struct MutexGuard<'a, T>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside wait")
    }
}

/// Condition variable compatible with [`MutexGuard`] (waits take the guard
/// by `&mut`, parking_lot style).
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_rendezvous() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            c.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}

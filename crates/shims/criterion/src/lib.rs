//! Hermetic shim for `criterion`: just enough surface for this workspace's
//! bench harness to compile and run. Each benchmark executes its closure a
//! handful of times and prints the mean wall-clock duration — no statistics,
//! no reports, but the same authoring API so benches can move to the real
//! crate by swapping the manifest path.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier combining a function name and a parameter, e.g.
/// `BenchmarkId::new("threads", 4)` → `threads/4`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a name and a displayable parameter.
    pub fn new<P: Display>(name: &str, param: P) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    samples: usize,
    last: Option<Duration>,
}

impl Bencher {
    /// Run `routine` `samples` times and record the mean duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.last = Some(start.elapsed() / self.samples as u32);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark (floor of 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b);
        match b.last {
            Some(d) => println!("{}/{id}: mean {d:?} ({} samples)", self.name, b.samples),
            None => println!("{}/{id}: no measurement", self.name),
        }
    }

    /// Time a closure under `id`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        self.run_one(id.to_string(), f);
        self
    }

    /// Time a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        self.run_one(id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Default-configured driver.
    pub fn default() -> Self {
        Self {}
    }

    /// No-op configuration hook kept for `criterion_group!` parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _parent: self,
        }
    }

    /// Time a standalone function.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let name = id.to_string();
        let mut g = self.benchmark_group(name.clone());
        g.run_one(name, f);
        self
    }
}

/// Opaque-to-the-optimizer value barrier, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a bench group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

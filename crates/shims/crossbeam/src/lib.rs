//! Hermetic shim for `crossbeam`: the `channel` module's unbounded MPMC
//! channel, implemented with a mutex-protected deque and a condvar. Both
//! halves are cloneable (the property std's mpsc lacks and the one this
//! workspace actually needs: worker pools share one receiver).

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when all receivers are dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn send_and_receive_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        let a = std::thread::spawn(move || rx.recv().unwrap());
        let b = std::thread::spawn(move || rx2.recv().unwrap());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let got = [a.join().unwrap(), b.join().unwrap()];
        let mut got = got.to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocked_receivers_wake_on_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }
}

//! Real thread-pool execution with per-task timing.

use eoml_obs::Obs;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A Parsl-style local executor: a fixed pool of `workers` threads
/// executing data-parallel maps.
pub struct LocalExecutor {
    pool: rayon::ThreadPool,
    workers: usize,
    obs: Option<Arc<Obs>>,
}

impl std::fmt::Debug for LocalExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalExecutor")
            .field("workers", &self.workers)
            .finish()
    }
}

impl LocalExecutor {
    /// Build a pool with exactly `workers` threads.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .thread_name(|i| format!("eoml-worker-{i}"))
            .build()
            .expect("build thread pool");
        Self {
            pool,
            workers,
            obs: None,
        }
    }

    /// Attach an observability hub: every mapped item is counted under
    /// `tasks{stage="executor"}` and timed into the
    /// `task_seconds{stage="executor"}` histogram, and timed batches get
    /// an `executor/map` wall-clock span.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Parallel map preserving input order.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        use rayon::prelude::*;
        let obs = self.obs.as_deref();
        self.pool.install(|| {
            items
                .into_par_iter()
                .map(|x| {
                    let t0 = Instant::now();
                    let r = f(x);
                    if let Some(obs) = obs {
                        obs.counter_add("tasks", "executor", 1);
                        obs.observe("task_seconds", "executor", t0.elapsed().as_secs_f64());
                    }
                    r
                })
                .collect()
        })
    }

    /// Parallel map that also reports per-item wall time and the batch
    /// total — the measurements the scaling experiments need.
    pub fn map_timed<T, R, F>(&self, items: Vec<T>, f: F) -> (Vec<R>, Vec<Duration>, Duration)
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let mut span = self.obs.as_ref().map(|o| o.span("executor", "map"));
        let start = Instant::now();
        let pairs = self.map(items, |x| {
            let t0 = Instant::now();
            let r = f(x);
            (r, t0.elapsed())
        });
        let total = start.elapsed();
        let (results, times): (Vec<R>, Vec<Duration>) = pairs.into_iter().unzip();
        if let Some(span) = &mut span {
            span.attr("items", results.len());
            span.attr("workers", self.workers);
        }
        (results, times, total)
    }

    /// Run one closure on the pool (for nesting rayon iterators inside).
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        self.pool.install(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let ex = LocalExecutor::new(2);
        let out = ex.map((0..100).collect(), |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<i32>>());
    }

    #[test]
    fn map_uses_bounded_workers() {
        let ex = LocalExecutor::new(2);
        let peak = AtomicUsize::new(0);
        let active = AtomicUsize::new(0);
        ex.map((0..64).collect::<Vec<i32>>(), |_| {
            let a = active.fetch_add(1, Ordering::AcqRel) + 1;
            peak.fetch_max(a, Ordering::AcqRel);
            std::thread::sleep(Duration::from_micros(200));
            active.fetch_sub(1, Ordering::AcqRel);
        });
        assert!(peak.load(Ordering::Acquire) <= 2, "pool leaked threads");
    }

    #[test]
    fn map_timed_reports_durations() {
        let ex = LocalExecutor::new(2);
        let (out, times, total) = ex.map_timed(vec![1u64, 2, 3, 4], |x| {
            std::thread::sleep(Duration::from_millis(x));
            x
        });
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(times.len(), 4);
        for (x, t) in out.iter().zip(&times) {
            assert!(t.as_millis() as u64 >= *x, "{t:?} for {x}");
        }
        assert!(total >= *times.iter().max().unwrap());
    }

    #[test]
    fn observed_maps_count_and_time_tasks() {
        let obs = Obs::shared();
        let ex = LocalExecutor::new(2).with_obs(Arc::clone(&obs));
        let out = ex.map((0..10).collect(), |x: i32| x + 1);
        assert_eq!(out.len(), 10);
        let (out2, _, _) = ex.map_timed(vec![1u64, 2], |x| x);
        assert_eq!(out2, vec![1, 2]);
        assert_eq!(obs.metrics().counter_value("tasks", "executor"), Some(12));
        let h = obs.metrics().histogram("task_seconds", "executor").unwrap();
        assert_eq!(h.count(), 12);
        // map_timed wraps the batch in an executor/map span.
        let spans = obs.spans();
        let map_span = spans
            .iter()
            .find(|s| s.stage == "executor" && s.name == "map")
            .expect("map span recorded");
        assert_eq!(map_span.attr("items"), Some("2"));
        assert_eq!(map_span.attr("workers"), Some("2"));
    }

    #[test]
    fn workers_accessor() {
        assert_eq!(LocalExecutor::new(3).workers(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        LocalExecutor::new(0);
    }

    #[test]
    fn parallelism_speeds_up_compute() {
        // Compare 1 vs 2 workers on CPU-bound work; allow generous slack
        // since CI machines vary (this machine has 2 cores).
        fn busy(ms: u64) {
            let t0 = Instant::now();
            let mut x = 0u64;
            while t0.elapsed() < Duration::from_millis(ms) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(x);
        }
        let e1 = LocalExecutor::new(1);
        let e2 = LocalExecutor::new(2);
        let (_, _, t1) = e1.map_timed(vec![20u64; 8], busy);
        let (_, _, t2) = e2.map_timed(vec![20u64; 8], busy);
        assert!(
            t2.as_secs_f64() < t1.as_secs_f64() * 0.8,
            "2 workers {t2:?} vs 1 worker {t1:?}"
        );
    }
}

//! Virtual-time batch execution on the cluster model.
//!
//! This is Parsl's worker pool seen from the simulator's side: a batch of
//! tasks (one per granule, work measured in tiles) is distributed over
//! `nodes × workers_per_node` worker slots; a slot that finishes a task
//! immediately pulls the next queued one. The report carries everything the
//! scaling figures need — per-task timings, worker-activity change points,
//! and total completion time.

use eoml_cluster::exec::{submit_task, HasCluster};
use eoml_simtime::{SimTime, Simulation};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Start/end of one executed task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTiming {
    /// Node the task ran on.
    pub node: usize,
    /// Task start.
    pub started: SimTime,
    /// Task end.
    pub finished: SimTime,
    /// Nominal work in tiles.
    pub tiles: f64,
}

/// Result of a batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Batch submission time.
    pub started: SimTime,
    /// Last task completion.
    pub finished: SimTime,
    /// Per-task records in completion order.
    pub tasks: Vec<TaskTiming>,
    /// `(time, active workers)` change points.
    pub activity: Vec<(SimTime, usize)>,
    /// Total nominal tiles processed.
    pub total_tiles: f64,
    /// Re-executions caused by injected worker crashes.
    pub retries: usize,
    /// Tasks abandoned after exhausting the retry budget.
    pub abandoned: usize,
}

impl BatchReport {
    /// Completion time of the whole batch, seconds.
    pub fn completion_s(&self) -> f64 {
        (self.finished - self.started).as_secs_f64()
    }

    /// Aggregate throughput in tiles/s — the Table I metric.
    pub fn throughput(&self) -> f64 {
        let d = self.completion_s();
        if d <= 0.0 {
            return 0.0;
        }
        self.total_tiles / d
    }

    /// Peak concurrent workers.
    pub fn peak_workers(&self) -> usize {
        self.activity.iter().map(|&(_, w)| w).max().unwrap_or(0)
    }
}

type OnDoneFn<S> = Box<dyn FnOnce(&mut Simulation<S>, BatchReport)>;

struct BatchState<S> {
    nodes: Vec<usize>,
    queue: VecDeque<(f64, usize)>, // (tiles, attempts so far)
    active: usize,
    started: SimTime,
    tasks: Vec<TaskTiming>,
    activity: Vec<(SimTime, usize)>,
    total_tiles: f64,
    crash_probability: f64,
    retry_limit: usize,
    retries: usize,
    abandoned: usize,
    on_done: Option<OnDoneFn<S>>,
}

/// Run a batch of `work` tasks (tiles each) over `workers_per_node` worker
/// slots on each of `nodes`. `on_done` fires when the queue drains.
pub fn run_batch<S: HasCluster>(
    sim: &mut Simulation<S>,
    nodes: Vec<usize>,
    workers_per_node: usize,
    work: Vec<f64>,
    on_done: impl FnOnce(&mut Simulation<S>, BatchReport) + 'static,
) {
    run_batch_faulty(sim, nodes, workers_per_node, work, 0.0, 0, on_done)
}

/// Like [`run_batch`], with worker-crash fault injection: each task
/// execution crashes with probability `crash_probability` (the work is
/// lost and the task re-queued, up to `retry_limit` retries per task) —
/// the failure-handling behaviour Parsl provides via app retries.
pub fn run_batch_faulty<S: HasCluster>(
    sim: &mut Simulation<S>,
    nodes: Vec<usize>,
    workers_per_node: usize,
    work: Vec<f64>,
    crash_probability: f64,
    retry_limit: usize,
    on_done: impl FnOnce(&mut Simulation<S>, BatchReport) + 'static,
) {
    assert!(!nodes.is_empty() && workers_per_node > 0);
    assert!((0.0..1.0).contains(&crash_probability));
    let state = Rc::new(RefCell::new(BatchState {
        nodes: nodes.clone(),
        queue: work.into_iter().map(|w| (w, 0)).collect(),
        active: 0,
        started: sim.now(),
        tasks: Vec::new(),
        activity: vec![(sim.now(), 0)],
        total_tiles: 0.0,
        crash_probability,
        retry_limit,
        retries: 0,
        abandoned: 0,
        on_done: Some(Box::new(on_done)),
    }));
    // Fill every slot: iterate node-major so slots spread evenly.
    for slot in 0..workers_per_node {
        for node_idx in 0..nodes.len() {
            let _ = slot;
            slot_pull(sim, &state, node_idx);
        }
    }
    maybe_finish(sim, &state);
}

fn slot_pull<S: HasCluster>(
    sim: &mut Simulation<S>,
    state: &Rc<RefCell<BatchState<S>>>,
    node_idx: usize,
) {
    let job = {
        let mut st = state.borrow_mut();
        match st.queue.pop_front() {
            Some(job) => {
                st.active += 1;
                let now = sim.now();
                let active = st.active;
                st.activity.push((now, active));
                Some((st.nodes[node_idx], job))
            }
            None => None,
        }
    };
    let Some((node, (tiles, attempts))) = job else {
        return;
    };
    let started = sim.now();
    let state2 = Rc::clone(state);
    submit_task(sim, node, tiles, move |sim| {
        let crash = {
            let p = state2.borrow().crash_probability;
            p > 0.0 && sim.state_mut().cluster().chance(p)
        };
        {
            let mut st = state2.borrow_mut();
            st.active -= 1;
            let now = sim.now();
            let active = st.active;
            st.activity.push((now, active));
            if crash {
                if attempts < st.retry_limit {
                    st.retries += 1;
                    st.queue.push_back((tiles, attempts + 1));
                } else {
                    st.abandoned += 1;
                }
            } else {
                st.tasks.push(TaskTiming {
                    node,
                    started,
                    finished: sim.now(),
                    tiles,
                });
                st.total_tiles += tiles;
            }
        }
        if !crash {
            sim.state_mut().cluster().note_tiles(tiles);
        }
        slot_pull(sim, &state2, node_idx);
        maybe_finish(sim, &state2);
    });
}

fn maybe_finish<S: HasCluster>(sim: &mut Simulation<S>, state: &Rc<RefCell<BatchState<S>>>) {
    let done = {
        let mut st = state.borrow_mut();
        if st.active > 0 || !st.queue.is_empty() || st.on_done.is_none() {
            None
        } else {
            let on_done = st.on_done.take().expect("checked");
            let report = BatchReport {
                started: st.started,
                finished: sim.now(),
                tasks: std::mem::take(&mut st.tasks),
                activity: std::mem::take(&mut st.activity),
                total_tiles: st.total_tiles,
                retries: st.retries,
                abandoned: st.abandoned,
            };
            Some((on_done, report))
        }
    };
    if let Some((on_done, report)) = done {
        on_done(sim, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_cluster::contention::ContentionModel;
    use eoml_cluster::exec::ClusterModel;
    use eoml_cluster::spec::ClusterSpec;

    struct St {
        cl: ClusterModel<St>,
        report: Option<BatchReport>,
    }

    impl HasCluster for St {
        fn cluster(&mut self) -> &mut ClusterModel<St> {
            &mut self.cl
        }
    }

    fn sim(nodes: usize, jitter: bool) -> Simulation<St> {
        let mut spec = ClusterSpec::defiant();
        spec.nodes = nodes;
        let model = ContentionModel {
            work_cv: if jitter { 0.25 } else { 0.0 },
            ..ContentionModel::defiant()
        };
        Simulation::new(St {
            cl: ClusterModel::new(spec, model, 77),
            report: None,
        })
    }

    fn run(
        s: &mut Simulation<St>,
        nodes: Vec<usize>,
        wpn: usize,
        files: usize,
        tiles: f64,
    ) -> BatchReport {
        run_batch(s, nodes, wpn, vec![tiles; files], |sim, r| {
            sim.state_mut().report = Some(r)
        });
        s.run();
        s.state().report.clone().expect("report")
    }

    #[test]
    fn batch_processes_all_tasks() {
        let mut s = sim(1, false);
        let r = run(&mut s, vec![0], 4, 16, 150.0);
        assert_eq!(r.tasks.len(), 16);
        assert!((r.total_tiles - 2400.0).abs() < 1e-9);
        assert_eq!(r.peak_workers(), 4);
        assert_eq!(r.activity.last().unwrap().1, 0);
    }

    #[test]
    fn throughput_matches_contention_model_when_saturated() {
        let mut s = sim(1, false);
        let r = run(&mut s, vec![0], 8, 64, 150.0);
        let model = ContentionModel::defiant();
        let expected = model.node_throughput(8);
        assert!(
            (r.throughput() - expected).abs() / expected < 0.03,
            "throughput {} vs {}",
            r.throughput(),
            expected
        );
    }

    #[test]
    fn more_nodes_scale_nearly_linearly() {
        let t1 = {
            let mut s = sim(10, false);
            run(&mut s, vec![0], 8, 80, 150.0).throughput()
        };
        let t10 = {
            let mut s = sim(10, false);
            run(&mut s, (0..10).collect(), 8, 80, 150.0).throughput()
        };
        let speedup = t10 / t1;
        assert!(
            (6.0..10.0).contains(&speedup),
            "10-node speedup {speedup} (t1={t1:.1}, t10={t10:.1})"
        );
    }

    #[test]
    fn worker_scaling_saturates_on_one_node() {
        let tp = |w: usize| {
            let mut s = sim(1, false);
            run(&mut s, vec![0], w, 128, 150.0).throughput()
        };
        let t1 = tp(1);
        let t8 = tp(8);
        let t32 = tp(32);
        assert!(
            t8 > 3.0 * t1,
            "1→8 workers should speed up ({t1:.1}→{t8:.1})"
        );
        assert!(
            t32 < t8 * 1.15,
            "8→32 workers should saturate ({t8:.1}→{t32:.1})"
        );
    }

    #[test]
    fn headline_12000_tiles_in_about_44s() {
        // 80 granules × 150 tiles = 12 000 tiles on 10 nodes × 8 workers.
        let mut s = sim(10, false);
        let r = run(&mut s, (0..10).collect(), 8, 80, 150.0);
        assert!((r.total_tiles - 12_000.0).abs() < 1e-9);
        let t = r.completion_s();
        assert!(
            (38.0..52.0).contains(&t),
            "12k tiles took {t:.1}s (paper: 44s)"
        );
    }

    #[test]
    fn jitter_changes_completion_but_not_task_count() {
        let mut s = sim(2, true);
        let r = run(&mut s, vec![0, 1], 4, 20, 150.0);
        assert_eq!(r.tasks.len(), 20);
        // Tasks have unequal durations under jitter.
        let durs: Vec<f64> = r
            .tasks
            .iter()
            .map(|t| (t.finished - t.started).as_secs_f64())
            .collect();
        let min = durs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = durs.iter().cloned().fold(0.0, f64::max);
        assert!(max > min * 1.1, "expected spread, got {min}..{max}");
    }

    #[test]
    fn activity_timeline_is_monotone_in_time() {
        let mut s = sim(2, false);
        let r = run(&mut s, vec![0, 1], 3, 10, 100.0);
        for w in r.activity.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert_eq!(r.activity.first().unwrap().1, 0);
    }

    #[test]
    fn crashes_are_retried_and_work_completes() {
        let mut s = sim(2, false);
        run_batch_faulty(&mut s, vec![0, 1], 4, vec![150.0; 20], 0.3, 10, |sim, r| {
            sim.state_mut().report = Some(r)
        });
        s.run();
        let r = s.state().report.clone().expect("report");
        assert_eq!(r.tasks.len(), 20, "all tasks eventually succeed");
        assert!(r.retries > 0, "30% crash rate must trigger retries");
        assert_eq!(r.abandoned, 0);
        assert!((r.total_tiles - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn retry_exhaustion_abandons_tasks() {
        let mut s = sim(1, false);
        run_batch_faulty(&mut s, vec![0], 2, vec![150.0; 4], 0.999, 2, |sim, r| {
            sim.state_mut().report = Some(r)
        });
        s.run();
        let r = s.state().report.clone().expect("report");
        assert!(r.abandoned > 0, "near-certain crashes exhaust retries");
        assert_eq!(r.tasks.len() + r.abandoned, 4);
    }

    #[test]
    fn zero_crash_probability_matches_plain_run_batch() {
        let run_with = |faulty: bool| {
            let mut s = sim(1, false);
            if faulty {
                run_batch_faulty(&mut s, vec![0], 4, vec![150.0; 12], 0.0, 3, |sim, r| {
                    sim.state_mut().report = Some(r)
                });
            } else {
                run_batch(&mut s, vec![0], 4, vec![150.0; 12], |sim, r| {
                    sim.state_mut().report = Some(r)
                });
            }
            s.run();
            s.state().report.clone().expect("report").completion_s()
        };
        assert_eq!(run_with(true), run_with(false));
    }

    #[test]
    fn empty_batch_finishes_immediately() {
        let mut s = sim(1, false);
        let r = run(&mut s, vec![0], 4, 0, 150.0);
        assert!(r.tasks.is_empty());
        assert_eq!(r.started, r.finished);
        assert_eq!(r.throughput(), 0.0);
    }
}

//! `eoml-executor` — a Parsl-like parallel execution layer.
//!
//! Parsl gives the paper two things: a *data-flow kernel* (apps returning
//! futures, dependencies resolved automatically) and *providers* that place
//! workers onto resources (here, the Slurm blocks of `eoml-cluster`). This
//! crate reproduces both, with two interchangeable execution paths:
//!
//! * [`local`] — real execution: a thread-pool executor (rayon under the
//!   hood) with per-task timing, used by the examples, the integration
//!   tests and the kernel benchmarks on this machine;
//! * [`dag`] — a data-flow kernel executing dependency graphs of arbitrary
//!   closures on a bounded worker pool (crossbeam channels), with panic
//!   capture and cycle detection;
//! * [`simexec`] — virtual-time execution: batches of tile-measured tasks
//!   placed onto cluster worker slots, producing the completion-time and
//!   worker-activity records behind Figs. 4–6 and Table I.

pub mod dag;
pub mod local;
pub mod simexec;

pub use dag::{Dag, DagError, NodeId};
pub use local::LocalExecutor;
pub use simexec::{run_batch, run_batch_faulty, BatchReport, TaskTiming};

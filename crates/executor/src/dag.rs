//! A data-flow kernel: dependency graphs of closures on a bounded pool.
//!
//! Parsl's DataFlowKernel launches an app as soon as all of its inputs are
//! ready. This is the same engine reduced to its scheduling core: nodes are
//! `FnOnce` closures, edges are explicit dependencies, and execution uses a
//! coordinator plus `workers` OS threads. Panics in tasks are captured and
//! fail the run (with remaining tasks skipped), and cycles are rejected up
//! front.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;

eoml_util::typed_id!(
    /// Identifier of a DAG node.
    NodeId,
    "node"
);

/// Errors from building or running a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A dependency references a node added later (or not at all).
    UnknownDependency {
        /// The node declaring the dependency.
        node: String,
        /// The missing dependency id.
        dep: NodeId,
    },
    /// The graph has a cycle (detected at run time as a stall).
    Cycle,
    /// A task panicked.
    TaskPanicked {
        /// Name of the panicking node.
        node: String,
        /// Captured panic message.
        message: String,
    },
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::UnknownDependency { node, dep } => {
                write!(f, "node {node:?} depends on unknown node {dep}")
            }
            DagError::Cycle => write!(f, "dependency graph has a cycle"),
            DagError::TaskPanicked { node, message } => {
                write!(f, "task {node:?} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for DagError {}

type TaskFn = Box<dyn FnOnce() + Send>;

struct Node {
    name: String,
    deps: Vec<usize>,
    task: Option<TaskFn>,
}

/// A buildable, runnable dependency graph.
#[derive(Default)]
pub struct Dag {
    nodes: Vec<Node>,
}

impl Dag {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task depending on `deps` (which must already exist).
    /// Use shared state (e.g. `Arc<Mutex<…>>`) to pass data between tasks.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        deps: &[NodeId],
        task: impl FnOnce() + Send + 'static,
    ) -> Result<NodeId, DagError> {
        let name = name.into();
        let mut dep_idx = Vec::with_capacity(deps.len());
        for d in deps {
            let i = (d.raw() - 1) as usize;
            if i >= self.nodes.len() {
                return Err(DagError::UnknownDependency {
                    node: name,
                    dep: *d,
                });
            }
            dep_idx.push(i);
        }
        self.nodes.push(Node {
            name,
            deps: dep_idx,
            task: Some(Box::new(task)),
        });
        Ok(NodeId::from_raw(self.nodes.len() as u64))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Execute the whole graph on `workers` threads. Returns the completion
    /// order (node ids) on success.
    pub fn run(mut self, workers: usize) -> Result<Vec<NodeId>, DagError> {
        assert!(workers > 0);
        let n = self.nodes.len();
        if n == 0 {
            return Ok(Vec::new());
        }

        // Indegrees and reverse edges.
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            indegree[i] = node.deps.len();
            for &d in &node.deps {
                dependents[d].push(i);
            }
        }

        // Worker pool: (index, task) jobs; results (index, Result<(), msg>).
        let (job_tx, job_rx) = unbounded::<(usize, TaskFn)>();
        let (res_tx, res_rx) = unbounded::<(usize, Result<(), String>)>();
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx: Receiver<(usize, TaskFn)> = job_rx.clone();
            let res_tx: Sender<(usize, Result<(), String>)> = res_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok((idx, task)) = job_rx.recv() {
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(task));
                    let res = outcome.map_err(|p| {
                        p.downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| p.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "panic".into())
                    });
                    if res_tx.send((idx, res)).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(job_rx);
        drop(res_tx);

        let mut ready: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        if ready.is_empty() {
            // Every node has a dependency → cycle.
            drop(job_tx);
            for h in handles {
                let _ = h.join();
            }
            return Err(DagError::Cycle);
        }

        let mut completed = Vec::with_capacity(n);
        let mut in_flight = 0usize;
        let mut first_error: Option<DagError> = None;
        loop {
            // Dispatch everything ready (unless failing fast).
            while first_error.is_none() {
                match ready.pop_front() {
                    Some(i) => {
                        let task = self.nodes[i].task.take().expect("dispatched once");
                        job_tx.send((i, task)).expect("workers alive");
                        in_flight += 1;
                    }
                    None => break,
                }
            }
            if in_flight == 0 {
                break;
            }
            let (idx, res) = res_rx.recv().expect("workers alive");
            in_flight -= 1;
            match res {
                Ok(()) => {
                    completed.push(NodeId::from_raw(idx as u64 + 1));
                    for &dep in &dependents[idx] {
                        indegree[dep] -= 1;
                        if indegree[dep] == 0 {
                            ready.push_back(dep);
                        }
                    }
                }
                Err(message) => {
                    if first_error.is_none() {
                        first_error = Some(DagError::TaskPanicked {
                            node: self.nodes[idx].name.clone(),
                            message,
                        });
                    }
                }
            }
        }
        drop(job_tx);
        for h in handles {
            let _ = h.join();
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        if completed.len() != n {
            return Err(DagError::Cycle);
        }
        Ok(completed)
    }
}

impl std::fmt::Debug for Dag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dag")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn linear_chain_runs_in_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut dag = Dag::new();
        let l1 = Arc::clone(&log);
        let a = dag
            .add_task("a", &[], move || l1.lock().unwrap().push("a"))
            .unwrap();
        let l2 = Arc::clone(&log);
        let b = dag
            .add_task("b", &[a], move || l2.lock().unwrap().push("b"))
            .unwrap();
        let l3 = Arc::clone(&log);
        dag.add_task("c", &[b], move || l3.lock().unwrap().push("c"))
            .unwrap();
        let order = dag.run(4).unwrap();
        assert_eq!(order.len(), 3);
        assert_eq!(*log.lock().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn diamond_respects_dependencies() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut dag = Dag::new();
        let push = |log: &Arc<Mutex<Vec<&'static str>>>, s: &'static str| {
            let l = Arc::clone(log);
            move || l.lock().unwrap().push(s)
        };
        let a = dag.add_task("a", &[], push(&log, "a")).unwrap();
        let b = dag.add_task("b", &[a], push(&log, "b")).unwrap();
        let c = dag.add_task("c", &[a], push(&log, "c")).unwrap();
        dag.add_task("d", &[b, c], push(&log, "d")).unwrap();
        dag.run(4).unwrap();
        let log = log.lock().unwrap();
        assert_eq!(log[0], "a");
        assert_eq!(log[3], "d");
        assert!(log[1..3].contains(&"b") && log[1..3].contains(&"c"));
    }

    #[test]
    fn independent_tasks_run_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut dag = Dag::new();
        for i in 0..4 {
            let active = Arc::clone(&active);
            let peak = Arc::clone(&peak);
            dag.add_task(format!("t{i}"), &[], move || {
                let a = active.fetch_add(1, Ordering::AcqRel) + 1;
                peak.fetch_max(a, Ordering::AcqRel);
                std::thread::sleep(std::time::Duration::from_millis(30));
                active.fetch_sub(1, Ordering::AcqRel);
            })
            .unwrap();
        }
        dag.run(4).unwrap();
        assert!(
            peak.load(Ordering::Acquire) >= 2,
            "tasks should overlap, peak {}",
            peak.load(Ordering::Acquire)
        );
    }

    #[test]
    fn unknown_dependency_rejected_at_build() {
        let mut dag = Dag::new();
        let err = dag
            .add_task("x", &[NodeId::from_raw(5)], || {})
            .unwrap_err();
        assert!(matches!(err, DagError::UnknownDependency { .. }));
    }

    #[test]
    fn panic_fails_run_and_skips_dependents() {
        let ran = Arc::new(Mutex::new(false));
        let mut dag = Dag::new();
        let a = dag.add_task("boom", &[], || panic!("exploded")).unwrap();
        let r = Arc::clone(&ran);
        dag.add_task("after", &[a], move || *r.lock().unwrap() = true)
            .unwrap();
        match dag.run(2) {
            Err(DagError::TaskPanicked { node, message }) => {
                assert_eq!(node, "boom");
                assert!(message.contains("exploded"));
            }
            other => panic!("{other:?}"),
        }
        assert!(!*ran.lock().unwrap(), "dependent must not run");
    }

    #[test]
    fn empty_dag_is_ok() {
        assert_eq!(Dag::new().run(2).unwrap(), Vec::new());
        assert!(Dag::new().is_empty());
    }

    #[test]
    fn wide_dag_completes() {
        let counter = Arc::new(Mutex::new(0u32));
        let mut dag = Dag::new();
        let mut roots = Vec::new();
        for i in 0..50 {
            let c = Arc::clone(&counter);
            roots.push(
                dag.add_task(format!("r{i}"), &[], move || *c.lock().unwrap() += 1)
                    .unwrap(),
            );
        }
        let c = Arc::clone(&counter);
        dag.add_task("sink", &roots, move || *c.lock().unwrap() += 100)
            .unwrap();
        dag.run(3).unwrap();
        assert_eq!(*counter.lock().unwrap(), 150);
    }
}

//! Byte-level persistence behind the journal: a real file, plus a shared
//! in-memory buffer for tests (cloning a `MemStorage` models reopening the
//! same "file" after a process death).

use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Append-only byte storage with truncation (for torn-tail repair).
pub trait Storage {
    /// Entire current contents.
    fn read_all(&mut self) -> Result<Vec<u8>, String>;
    /// Append bytes at the end.
    fn append(&mut self, bytes: &[u8]) -> Result<(), String>;
    /// Cut the contents down to `len` bytes.
    fn truncate(&mut self, len: u64) -> Result<(), String>;
    /// Current size in bytes.
    fn len(&mut self) -> Result<u64, String> {
        Ok(self.read_all()?.len() as u64)
    }
    /// Whether the storage holds no bytes yet.
    fn is_empty(&mut self) -> Result<bool, String> {
        Ok(self.len()? == 0)
    }
}

/// Journal bytes in a file on disk. The file is created on first append.
pub struct FileStorage {
    path: PathBuf,
}

impl FileStorage {
    /// Storage at `path`; the file need not exist yet.
    pub fn new(path: impl AsRef<Path>) -> Self {
        Self {
            path: path.as_ref().to_path_buf(),
        }
    }

    /// The backing path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Storage for FileStorage {
    fn read_all(&mut self) -> Result<Vec<u8>, String> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(format!("read {}: {e}", self.path.display())),
        }
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("open {}: {e}", self.path.display()))?;
        f.write_all(bytes)
            .and_then(|_| f.flush())
            .map_err(|e| format!("append {}: {e}", self.path.display()))
    }

    fn truncate(&mut self, len: u64) -> Result<(), String> {
        let f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&self.path)
            .map_err(|e| format!("open {}: {e}", self.path.display()))?;
        f.set_len(len)
            .map_err(|e| format!("truncate {}: {e}", self.path.display()))
    }

    fn len(&mut self) -> Result<u64, String> {
        match std::fs::metadata(&self.path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(format!("stat {}: {e}", self.path.display())),
        }
    }
}

/// Journal bytes in shared memory. Clones alias the same buffer, so a test
/// can "crash" one `Journal` and reopen another over the same bytes.
#[derive(Clone, Default)]
pub struct MemStorage {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemStorage {
    /// Fresh empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of the raw contents (for corruption-injection tests).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.bytes.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Replace the raw contents (for corruption-injection tests).
    pub fn set_bytes(&self, new: Vec<u8>) {
        *self.bytes.lock().unwrap_or_else(|e| e.into_inner()) = new;
    }
}

impl Storage for MemStorage {
    fn read_all(&mut self) -> Result<Vec<u8>, String> {
        Ok(self.snapshot_bytes())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.bytes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(bytes);
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<(), String> {
        let mut b = self.bytes.lock().unwrap_or_else(|e| e.into_inner());
        if (len as usize) < b.len() {
            b.truncate(len as usize);
        }
        Ok(())
    }

    fn len(&mut self) -> Result<u64, String> {
        Ok(self.bytes.lock().unwrap_or_else(|e| e.into_inner()).len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_clones_share_bytes() {
        let mut a = MemStorage::new();
        let mut b = a.clone();
        a.append(b"xyz").unwrap();
        assert_eq!(b.read_all().unwrap(), b"xyz");
        b.truncate(1).unwrap();
        assert_eq!(a.read_all().unwrap(), b"x");
    }

    #[test]
    fn file_storage_roundtrip() {
        let dir = std::env::temp_dir().join(format!("eoml-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let mut s = FileStorage::new(&path);
        assert!(s.is_empty().unwrap());
        s.append(b"abcdef").unwrap();
        s.append(b"gh").unwrap();
        assert_eq!(s.read_all().unwrap(), b"abcdefgh");
        s.truncate(3).unwrap();
        assert_eq!(s.read_all().unwrap(), b"abc");
        assert_eq!(s.len().unwrap(), 3);
        std::fs::remove_file(&path).unwrap();
    }
}

//! Byte-level persistence behind the journal: a real file, plus a shared
//! in-memory buffer for tests (cloning a `MemStorage` models reopening the
//! same "file" after a process death).
//!
//! Durability contract: `append` makes bytes visible to a same-process
//! reader; only `sync` makes them survive a power loss. `sync` reports
//! whether the backend actually reached durable media, so the journal's
//! `fsyncs` metric stays truthful (a `MemStorage` never syncs anything).
//! `replace_all` swaps the entire contents atomically — for files via the
//! classic write-sibling/fsync/rename protocol — so a crash mid-swap leaves
//! either the old or the new contents, never a mix.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Append-only byte storage with truncation (for torn-tail repair) and
/// atomic whole-contents replacement (for compaction).
pub trait Storage {
    /// Entire current contents.
    fn read_all(&mut self) -> Result<Vec<u8>, String>;
    /// Append bytes at the end.
    fn append(&mut self, bytes: &[u8]) -> Result<(), String>;
    /// Cut the contents down to `len` bytes.
    fn truncate(&mut self, len: u64) -> Result<(), String>;
    /// Flush appended bytes to durable media. Returns whether the backend
    /// actually synced (true for a real file's fsync, false for memory),
    /// so callers can keep durability metrics honest.
    fn sync(&mut self) -> Result<bool, String> {
        Ok(false)
    }
    /// Atomically replace the entire contents with `bytes`: after a crash
    /// at any point, a reader sees either the old contents or the new,
    /// never a prefix-mix. The default is NOT atomic (truncate + append);
    /// backends with a real swap override it.
    fn replace_all(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.truncate(0)?;
        self.append(bytes)?;
        self.sync()?;
        Ok(())
    }
    /// Current size in bytes.
    fn len(&mut self) -> Result<u64, String> {
        Ok(self.read_all()?.len() as u64)
    }
    /// Whether the storage holds no bytes yet.
    fn is_empty(&mut self) -> Result<bool, String> {
        Ok(self.len()? == 0)
    }
}

/// Journal bytes in a file on disk. The file is created on first append and
/// the handle is kept open across appends (one open per journal lifetime,
/// not one per frame).
pub struct FileStorage {
    path: PathBuf,
    file: Option<File>,
}

impl FileStorage {
    /// Storage at `path`; the file need not exist yet.
    pub fn new(path: impl AsRef<Path>) -> Self {
        Self {
            path: path.as_ref().to_path_buf(),
            file: None,
        }
    }

    /// The backing path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sibling path compaction stages its rewrite at before the
    /// atomic rename. A crash mid-compaction can leave this file behind;
    /// it is ignored by recovery and overwritten by the next compaction.
    pub fn compact_path(&self) -> PathBuf {
        let mut name = self
            .path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(".compact");
        self.path.with_file_name(name)
    }

    /// The open append handle, opening (and creating) the file on first use.
    fn handle(&mut self) -> Result<&mut File, String> {
        if self.file.is_none() {
            let f = OpenOptions::new()
                .create(true)
                .read(true)
                .append(true)
                .open(&self.path)
                .map_err(|e| format!("open {}: {e}", self.path.display()))?;
            self.file = Some(f);
        }
        Ok(self.file.as_mut().expect("opened above"))
    }

    /// Best-effort fsync of the parent directory, making a rename or
    /// create durable. Failure is ignored: not all platforms allow
    /// opening directories for sync.
    fn sync_dir(&self) {
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
}

impl Storage for FileStorage {
    fn read_all(&mut self) -> Result<Vec<u8>, String> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(format!("read {}: {e}", self.path.display())),
        }
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), String> {
        let path = self.path.clone();
        self.handle()?
            .write_all(bytes)
            .map_err(|e| format!("append {}: {e}", path.display()))
    }

    fn truncate(&mut self, len: u64) -> Result<(), String> {
        // Truncating a journal that was never created is a no-op, not an
        // excuse to create one as a side effect.
        if self.file.is_none() && !self.path.exists() {
            return Ok(());
        }
        let path = self.path.clone();
        let f = self.handle()?;
        f.set_len(len)
            .and_then(|_| f.sync_all())
            .map_err(|e| format!("truncate {}: {e}", path.display()))
    }

    fn sync(&mut self) -> Result<bool, String> {
        let path = self.path.clone();
        self.handle()?
            .sync_data()
            .map_err(|e| format!("fsync {}: {e}", path.display()))?;
        Ok(true)
    }

    fn replace_all(&mut self, bytes: &[u8]) -> Result<(), String> {
        let tmp = self.compact_path();
        let mut f = File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
        f.write_all(bytes)
            .and_then(|_| f.sync_all())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        drop(f);
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), self.path.display()))?;
        self.sync_dir();
        // The cached handle points at the replaced inode; reopen lazily.
        self.file = None;
        Ok(())
    }

    fn len(&mut self) -> Result<u64, String> {
        match std::fs::metadata(&self.path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(format!("stat {}: {e}", self.path.display())),
        }
    }
}

/// Journal bytes in shared memory. Clones alias the same buffer, so a test
/// can "crash" one `Journal` and reopen another over the same bytes.
#[derive(Clone, Default)]
pub struct MemStorage {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemStorage {
    /// Fresh empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of the raw contents (for corruption-injection tests).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.bytes.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Replace the raw contents (for corruption-injection tests).
    pub fn set_bytes(&self, new: Vec<u8>) {
        *self.bytes.lock().unwrap_or_else(|e| e.into_inner()) = new;
    }
}

impl Storage for MemStorage {
    fn read_all(&mut self) -> Result<Vec<u8>, String> {
        Ok(self.snapshot_bytes())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.bytes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(bytes);
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<(), String> {
        let mut b = self.bytes.lock().unwrap_or_else(|e| e.into_inner());
        if (len as usize) < b.len() {
            b.truncate(len as usize);
        }
        Ok(())
    }

    // Memory never reaches durable media; the default `sync` already
    // reports false.

    fn replace_all(&mut self, bytes: &[u8]) -> Result<(), String> {
        // Single swap under the lock: atomic with respect to clones.
        *self.bytes.lock().unwrap_or_else(|e| e.into_inner()) = bytes.to_vec();
        Ok(())
    }

    fn len(&mut self) -> Result<u64, String> {
        Ok(self.bytes.lock().unwrap_or_else(|e| e.into_inner()).len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eoml-journal-storage-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mem_clones_share_bytes() {
        let mut a = MemStorage::new();
        let mut b = a.clone();
        a.append(b"xyz").unwrap();
        assert_eq!(b.read_all().unwrap(), b"xyz");
        b.truncate(1).unwrap();
        assert_eq!(a.read_all().unwrap(), b"x");
        assert!(!a.sync().unwrap(), "memory must not claim durability");
    }

    #[test]
    fn file_storage_roundtrip() {
        let dir = tempdir("roundtrip");
        let path = dir.join("wal.log");
        let mut s = FileStorage::new(&path);
        assert!(s.is_empty().unwrap());
        s.append(b"abcdef").unwrap();
        s.append(b"gh").unwrap();
        assert!(s.sync().unwrap(), "files report a real fsync");
        assert_eq!(s.read_all().unwrap(), b"abcdefgh");
        s.truncate(3).unwrap();
        assert_eq!(s.read_all().unwrap(), b"abc");
        assert_eq!(s.len().unwrap(), 3);
        // Appends after truncation land at the new end, same handle.
        s.append(b"Z").unwrap();
        assert_eq!(s.read_all().unwrap(), b"abcZ");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_missing_file_is_a_noop_not_a_create() {
        let dir = tempdir("noop");
        let path = dir.join("wal.log");
        let mut s = FileStorage::new(&path);
        s.truncate(0).unwrap();
        assert!(!path.exists(), "truncate must not create the file");
        assert_eq!(s.len().unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replace_all_swaps_contents_and_reopens_handle() {
        let dir = tempdir("swap");
        let path = dir.join("wal.log");
        let mut s = FileStorage::new(&path);
        s.append(b"old-old-old").unwrap();
        s.replace_all(b"new").unwrap();
        assert_eq!(s.read_all().unwrap(), b"new");
        assert!(
            !s.compact_path().exists(),
            "temp file consumed by the rename"
        );
        // The handle was refreshed: appends extend the new file.
        s.append(b"+tail").unwrap();
        assert_eq!(s.read_all().unwrap(), b"new+tail");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_replace_all_swaps_for_clones_too() {
        let mut a = MemStorage::new();
        let mut b = a.clone();
        a.append(b"0123456789").unwrap();
        a.replace_all(b"xy").unwrap();
        assert_eq!(b.read_all().unwrap(), b"xy");
    }
}

//! On-disk frame format: `[u32 len][u32 crc32][payload]`, little-endian.
//!
//! The CRC covers the payload only; the length field is sanity-bounded so a
//! corrupted length cannot make recovery read gigabytes. Decoding never
//! fails hard — a bad frame yields `FrameOutcome::Torn`, which recovery
//! treats as "the journal ends here".

/// Upper bound on a single frame's payload. Events are small JSON blobs;
/// anything larger is corruption.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Header size in bytes (length + checksum).
pub const HEADER_LEN: usize = 8;

/// CRC-32 (IEEE 802.3, reflected) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Serialise one frame.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_LEN as usize,
        "frame payload too large"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of attempting to decode the frame starting at some offset.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameOutcome<'a> {
    /// A complete, checksum-valid frame; `next` is the offset just past it.
    Ok { payload: &'a [u8], next: usize },
    /// The buffer ends exactly at a frame boundary.
    End,
    /// Truncated header, truncated payload, implausible length, or checksum
    /// mismatch — a torn tail.
    Torn,
}

/// Decode the frame starting at `offset` in `buf`.
pub fn decode_at(buf: &[u8], offset: usize) -> FrameOutcome<'_> {
    if offset == buf.len() {
        return FrameOutcome::End;
    }
    let Some(header) = buf.get(offset..offset + HEADER_LEN) else {
        return FrameOutcome::Torn;
    };
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return FrameOutcome::Torn;
    }
    let start = offset + HEADER_LEN;
    let Some(payload) = buf.get(start..start + len as usize) else {
        return FrameOutcome::Torn;
    };
    if crc32(payload) != crc {
        return FrameOutcome::Torn;
    }
    FrameOutcome::Ok {
        payload,
        next: start + len as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vector() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_single_frame() {
        let buf = encode(b"hello");
        match decode_at(&buf, 0) {
            FrameOutcome::Ok { payload, next } => {
                assert_eq!(payload, b"hello");
                assert_eq!(next, buf.len());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(decode_at(&buf, buf.len()), FrameOutcome::End);
    }

    #[test]
    fn truncation_and_corruption_are_torn() {
        let buf = encode(b"payload");
        for cut in 0..buf.len() {
            if cut == 0 {
                assert_eq!(decode_at(&buf[..cut], 0), FrameOutcome::End);
            } else {
                assert_eq!(decode_at(&buf[..cut], 0), FrameOutcome::Torn, "cut {cut}");
            }
        }
        let mut bad = buf.clone();
        *bad.last_mut().expect("non-empty") ^= 0xff;
        assert_eq!(decode_at(&bad, 0), FrameOutcome::Torn);
    }

    #[test]
    fn implausible_length_is_torn() {
        let mut buf = vec![0u8; 16];
        buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_at(&buf, 0), FrameOutcome::Torn);
    }
}

//! On-disk frame format: `[u32 len][u32 crc32][payload]`, little-endian.
//!
//! The CRC covers the length field *and* the payload, so corruption of
//! either is detected; the length is additionally sanity-bounded so a
//! corrupted length cannot make recovery read gigabytes. Zero-length
//! frames are rejected outright: a post-power-loss zero-filled region
//! would otherwise decode as an endless run of "valid" empty frames
//! (`crc32(b"") == 0`, and all-zero header bytes spell `len == 0,
//! crc == 0`). Journal events are never empty, so `len == 0` is always
//! corruption. Decoding never fails hard — a bad frame yields
//! `FrameOutcome::Torn`, which recovery treats as "the journal ends here".

/// Upper bound on a single frame's payload. Events are small JSON blobs;
/// anything larger is corruption.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Header size in bytes (length + checksum).
pub const HEADER_LEN: usize = 8;

/// CRC-32 (IEEE 802.3, reflected) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_seeded(0xffff_ffff, data)
}

/// Continue a CRC-32 from an intermediate register value (pass
/// `!previous` to chain; [`crc32`] starts from the standard seed).
fn crc32_seeded(seed: u32, data: &[u8]) -> u32 {
    let mut crc: u32 = seed;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// The frame checksum: CRC-32 chained over the 4 length bytes then the
/// payload, so a frame whose length field was zero-filled (or otherwise
/// altered) fails verification even if the payload bytes still match.
fn frame_crc(len: u32, payload: &[u8]) -> u32 {
    let head = crc32(&len.to_le_bytes());
    crc32_seeded(!head, payload)
}

/// Serialise one frame. Payloads must be non-empty: an empty frame is
/// indistinguishable from zero-filled corruption and is rejected by
/// [`decode_at`].
pub fn encode(payload: &[u8]) -> Vec<u8> {
    assert!(!payload.is_empty(), "frame payload must be non-empty");
    assert!(
        payload.len() <= MAX_FRAME_LEN as usize,
        "frame payload too large"
    );
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&frame_crc(len, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of attempting to decode the frame starting at some offset.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameOutcome<'a> {
    /// A complete, checksum-valid frame; `next` is the offset just past it.
    Ok { payload: &'a [u8], next: usize },
    /// The buffer ends exactly at a frame boundary.
    End,
    /// Truncated header, truncated payload, implausible or zero length, or
    /// checksum mismatch — a torn tail.
    Torn,
}

/// Decode the frame starting at `offset` in `buf`.
pub fn decode_at(buf: &[u8], offset: usize) -> FrameOutcome<'_> {
    if offset == buf.len() {
        return FrameOutcome::End;
    }
    let Some(header) = buf.get(offset..offset + HEADER_LEN) else {
        return FrameOutcome::Torn;
    };
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    // len == 0 is the zero-fill signature (see module docs); real frames
    // always carry a payload.
    if len == 0 || len > MAX_FRAME_LEN {
        return FrameOutcome::Torn;
    }
    let start = offset + HEADER_LEN;
    let Some(payload) = buf.get(start..start + len as usize) else {
        return FrameOutcome::Torn;
    };
    if frame_crc(len, payload) != crc {
        return FrameOutcome::Torn;
    }
    FrameOutcome::Ok {
        payload,
        next: start + len as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vector() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn chained_crc_equals_one_shot() {
        let data = b"abcdefgh12345";
        let (a, b) = data.split_at(5);
        assert_eq!(crc32_seeded(!crc32(a), b), crc32(data));
    }

    #[test]
    fn roundtrip_single_frame() {
        let buf = encode(b"hello");
        match decode_at(&buf, 0) {
            FrameOutcome::Ok { payload, next } => {
                assert_eq!(payload, b"hello");
                assert_eq!(next, buf.len());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(decode_at(&buf, buf.len()), FrameOutcome::End);
    }

    #[test]
    fn truncation_and_corruption_are_torn() {
        let buf = encode(b"payload");
        for cut in 0..buf.len() {
            if cut == 0 {
                assert_eq!(decode_at(&buf[..cut], 0), FrameOutcome::End);
            } else {
                assert_eq!(decode_at(&buf[..cut], 0), FrameOutcome::Torn, "cut {cut}");
            }
        }
        let mut bad = buf.clone();
        *bad.last_mut().expect("non-empty") ^= 0xff;
        assert_eq!(decode_at(&bad, 0), FrameOutcome::Torn);
    }

    #[test]
    fn implausible_length_is_torn() {
        let mut buf = vec![0u8; 16];
        buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_at(&buf, 0), FrameOutcome::Torn);
    }

    #[test]
    fn zero_filled_region_is_torn_not_valid_frames() {
        // Classic post-power-loss block zero-fill: an all-zero region must
        // read as a torn tail, not as checksum-valid empty frames.
        for n in [1, HEADER_LEN, HEADER_LEN + 1, 512, 4096] {
            let zeros = vec![0u8; n];
            assert_eq!(decode_at(&zeros, 0), FrameOutcome::Torn, "{n} zero bytes");
        }
    }

    #[test]
    fn corrupted_length_field_fails_the_checksum() {
        // Same payload bytes, tampered length: the CRC covers the length
        // field, so this cannot decode even if the payload CRC matches.
        let mut buf = encode(b"abcd");
        // Shrink the declared length to 3; payload prefix "abc" is intact.
        buf[0..4].copy_from_slice(&3u32.to_le_bytes());
        assert_eq!(decode_at(&buf, 0), FrameOutcome::Torn);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn encoding_an_empty_payload_panics() {
        let _ = encode(b"");
    }
}

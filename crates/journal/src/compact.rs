//! Journal compaction: rewrite the append-only storage down to
//! latest-snapshot + tail, bounding on-disk growth for long campaigns.
//!
//! The swap is atomic at the [`Storage`] layer — [`FileStorage`] writes the
//! compacted image to a sibling `<wal>.compact` temp file, fsyncs it, and
//! renames it over the journal; `MemStorage` swaps its buffer under one
//! lock. A crash at any point mid-compaction therefore leaves either the
//! old journal or the new one, never a hybrid: recovery of the
//! pre-compaction journal is exercised by the mid-compaction crash tests.
//!
//! [`FileStorage`]: crate::storage::FileStorage
//! [`MemStorage`]: crate::storage::MemStorage

use crate::event::JournalEvent;
use crate::frame;
use crate::storage::Storage;
use crate::wal::{Journal, JournalError};

/// What one [`Journal::compact`] call did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompactionReport {
    /// Storage size before the rewrite.
    pub before_bytes: u64,
    /// Storage size after the rewrite.
    pub after_bytes: u64,
    /// Events dropped from the in-memory log (everything before the
    /// snapshot that now leads the journal).
    pub events_dropped: usize,
    /// Whether a fresh snapshot had to be appended first (the journal had
    /// trailing events after its last snapshot, or no snapshot at all).
    pub snapshot_appended: bool,
}

impl CompactionReport {
    /// Bytes reclaimed by the rewrite (0 when compaction grew the file,
    /// which can happen on a snapshotless journal shorter than one
    /// snapshot frame).
    pub fn reclaimed_bytes(&self) -> u64 {
        self.before_bytes.saturating_sub(self.after_bytes)
    }
}

impl<S: Storage> Journal<S> {
    /// Rewrite storage to latest-snapshot + tail, atomically.
    ///
    /// If events trail the last snapshot (or no snapshot exists yet), a
    /// fresh snapshot of the current state is appended first — it consumes
    /// the injected-crash budget like any append — so the compacted image
    /// always starts with a snapshot and reopening replays at most the
    /// tail written after it. Live state, and what a reopen would rebuild,
    /// are unchanged by compaction.
    pub fn compact(&mut self) -> Result<CompactionReport, JournalError> {
        if self.crashed {
            return Err(JournalError::Crashed);
        }
        let before_bytes = self.storage.len().map_err(JournalError::Io)?;
        // Ensure a snapshot of the current state closes the log.
        let snapshot_appended = self.since_snapshot > 0
            || !matches!(self.events.last(), Some(JournalEvent::Snapshot { .. }));
        if snapshot_appended {
            self.snapshot()?;
        }
        let keep_from = self
            .events
            .iter()
            .rposition(|e| matches!(e, JournalEvent::Snapshot { .. }))
            .expect("snapshot appended above");
        // Re-encode the retained suffix into a fresh image and swap it in.
        let mut image = Vec::new();
        for ev in &self.events[keep_from..] {
            image.extend_from_slice(&frame::encode(&ev.encode()));
        }
        self.storage.replace_all(&image).map_err(JournalError::Io)?;
        self.events.drain(..keep_from);
        self.snapshots_since_compact = 0;
        let after_bytes = self.storage.len().map_err(JournalError::Io)?;
        let report = CompactionReport {
            before_bytes,
            after_bytes,
            events_dropped: keep_from,
            snapshot_appended,
        };
        if let Some(obs) = &self.obs {
            obs.counter_add("compactions", "journal", 1);
            obs.counter_add("compacted_bytes", "journal", report.reclaimed_bytes());
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use crate::wal::RecoveryReport;
    use eoml_obs::Obs;
    use std::sync::Arc;

    fn ev(i: usize) -> JournalEvent {
        JournalEvent::FileDownloaded {
            file: format!("file-{i}.hdf"),
            bytes: 1000 + i as u64,
        }
    }

    #[test]
    fn compact_shrinks_storage_and_preserves_state() {
        let store = MemStorage::new();
        let (mut j, _) = Journal::open_with_snapshot_every(store.clone(), 8).unwrap();
        for i in 0..100 {
            j.append(ev(i)).unwrap();
        }
        let live = j.state().clone();
        let before = j.storage_size().unwrap();
        let report = j.compact().unwrap();
        assert_eq!(report.before_bytes, before);
        assert!(
            report.after_bytes < report.before_bytes,
            "compaction must shrink {} -> {}",
            report.before_bytes,
            report.after_bytes
        );
        // Live state is unchanged apart from the bookkeeping counter the
        // compaction snapshot bumps.
        let mut expect = live;
        expect.events_applied = j.state().events_applied;
        assert_eq!(j.state(), &expect, "live state unchanged");

        // Reopen: same state, bounded replay.
        let (j2, rep) = Journal::open_with_snapshot_every(store, 8).unwrap();
        assert_eq!(j2.state(), &expect);
        assert!(rep.snapshot_used);
        assert!(rep.replayed <= 8 + 1, "replayed {}", rep.replayed);
    }

    #[test]
    fn compact_on_fresh_snapshot_is_stable() {
        let store = MemStorage::new();
        let (mut j, _) = Journal::open_with_snapshot_every(store.clone(), 0).unwrap();
        for i in 0..10 {
            j.append(ev(i)).unwrap();
        }
        let first = j.compact().unwrap();
        assert!(first.snapshot_appended);
        // Compacting again immediately neither appends a snapshot nor
        // changes the size: the journal is already snapshot-only.
        let second = j.compact().unwrap();
        assert!(!second.snapshot_appended);
        assert_eq!(second.before_bytes, second.after_bytes);
        assert_eq!(second.events_dropped, 0);
    }

    #[test]
    fn auto_compact_bounds_storage_growth() {
        let store = MemStorage::new();
        let (j, _) = Journal::open_with_snapshot_every(store.clone(), 4).unwrap();
        let mut j = j.with_auto_compact(2);
        let mut peak = 0u64;
        for i in 0..200 {
            j.append(ev(i)).unwrap();
            peak = peak.max(j.storage_size().unwrap());
        }
        // Without compaction 200 events + 50 snapshots would accumulate;
        // with it, storage stays within a few snapshot-cadence windows.
        let final_size = j.storage_size().unwrap();
        let (j2, rep) = Journal::open_with_snapshot_every(store, 4).unwrap();
        assert_eq!(j2.state(), j.state());
        assert!(rep.replayed <= 4 + 1, "replayed {}", rep.replayed);
        assert!(
            final_size < peak || rep.events < 20,
            "auto-compact never shrank storage (final {final_size}, peak {peak})"
        );
        assert!(
            rep.events < 30,
            "auto-compacted journal still holds {} events",
            rep.events
        );
    }

    #[test]
    fn compact_records_metrics() {
        let obs = Obs::shared();
        let store = MemStorage::new();
        let (mut j, _) = Journal::open_observed(store, Arc::clone(&obs)).unwrap();
        for i in 0..50 {
            j.append(ev(i)).unwrap();
        }
        let report = j.compact().unwrap();
        let counter = |name: &str| obs.metrics().counter_value(name, "journal").unwrap_or(0);
        assert_eq!(counter("compactions"), 1);
        assert_eq!(counter("compacted_bytes"), report.reclaimed_bytes());
        assert!(report.reclaimed_bytes() > 0);
    }

    #[test]
    fn compact_after_crash_is_refused() {
        let store = MemStorage::new();
        let (mut j, _) = Journal::open(store).unwrap();
        j.crash_after(1);
        j.append(ev(0)).unwrap();
        assert_eq!(j.append(ev(1)), Err(JournalError::Crashed));
        assert_eq!(j.compact(), Err(JournalError::Crashed));
    }

    #[test]
    fn compacting_an_empty_journal_starts_it_with_a_snapshot() {
        let store = MemStorage::new();
        let (mut j, _) = Journal::open(store.clone()).unwrap();
        let report = j.compact().unwrap();
        assert!(report.snapshot_appended);
        let (j2, rep) = Journal::open(store).unwrap();
        assert_eq!(rep.snapshots_seen, 1);
        assert!(j2.state().seed.is_none() && j2.state().downloaded.is_empty());
        assert_ne!(rep, RecoveryReport::default());
    }
}

//! The journal proper: append events durably, recover a strict prefix after
//! any crash (torn tails are truncated, never fatal), and maintain the
//! materialised [`CampaignState`] both live and across recovery.
//!
//! Crash injection is built in: [`Journal::crash_after`] arms a countdown
//! after which appends fail as if the process died mid-run. Drivers treat
//! an append error as a hard stop, so tests can kill a campaign at any
//! event index deterministically.

use crate::event::JournalEvent;
use crate::frame::{self, FrameOutcome};
use crate::state::CampaignState;
use crate::storage::Storage;
use eoml_obs::Obs;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Journal failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// Underlying storage failed.
    Io(String),
    /// The injected crash point was reached (or a previous append crashed);
    /// no further events are accepted.
    Crashed,
    /// A campaign namespace fails [`crate::Ledger`]'s naming rules
    /// (`[A-Za-z0-9._-]+`, not dot-led, ≤128 bytes).
    InvalidNamespace(String),
    /// [`crate::Ledger::create`] found the namespace already holds a
    /// journal; callers use this to reject a duplicate submit gracefully.
    DuplicateNamespace(String),
    /// The namespace holds no journal (e.g. [`crate::Ledger::remove`] of a
    /// campaign that was never created or is already gone).
    UnknownNamespace(String),
    /// Another caller in this process holds the exclusive lock on the
    /// ledger root (see [`crate::Ledger::lock_exclusive`]); concurrent
    /// drivers over one root would interleave namespaces unpredictably.
    Busy(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(msg) => write!(f, "journal I/O error: {msg}"),
            JournalError::Crashed => write!(f, "journal crashed (injected kill point)"),
            JournalError::InvalidNamespace(name) => {
                write!(
                    f,
                    "invalid campaign namespace {name:?} (want [A-Za-z0-9._-]+, not dot-led, ≤128 bytes)"
                )
            }
            JournalError::DuplicateNamespace(name) => {
                write!(f, "campaign namespace {name:?} already exists")
            }
            JournalError::UnknownNamespace(name) => {
                write!(f, "campaign namespace {name:?} does not exist")
            }
            JournalError::Busy(root) => {
                write!(f, "ledger root {root:?} is locked by another caller")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// What [`Journal::open`] found.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Events recovered (the strict prefix that was durable).
    pub events: usize,
    /// Torn-tail bytes discarded by truncation.
    pub truncated_bytes: u64,
    /// Events replayed after the snapshot used (equals `events` when no
    /// snapshot was usable) — the O(tail) recovery cost.
    pub replayed: usize,
    /// Snapshot frames seen in the recovered prefix. Only the last valid
    /// one seeds state; the rest are dead weight compaction reclaims.
    pub snapshots_seen: usize,
    /// Whether state was actually rebuilt from a snapshot (false when the
    /// prefix held none, or none parsed — then the whole log replays).
    pub snapshot_used: bool,
}

impl RecoveryReport {
    /// Record this recovery as obs metrics under the `journal` stage:
    /// `frames_replayed`, `torn_tail_bytes_truncated`, `snapshots_seen`,
    /// `snapshots_used` (0/1 per open), `events_recovered`, and a
    /// `recoveries` count. Counters accumulate, so repeated opens against
    /// one hub sum their recovery costs.
    pub fn record(&self, obs: &Obs) {
        obs.counter_add("recoveries", "journal", 1);
        obs.counter_add("events_recovered", "journal", self.events as u64);
        obs.counter_add("frames_replayed", "journal", self.replayed as u64);
        obs.counter_add("torn_tail_bytes_truncated", "journal", self.truncated_bytes);
        obs.counter_add("snapshots_seen", "journal", self.snapshots_seen as u64);
        obs.counter_add("snapshots_used", "journal", self.snapshot_used as u64);
    }
}

/// Append-only, checksummed event journal over any [`Storage`].
pub struct Journal<S: Storage> {
    pub(crate) storage: S,
    pub(crate) events: Vec<JournalEvent>,
    pub(crate) state: CampaignState,
    /// Append a snapshot automatically after this many events (0 = never).
    pub(crate) snapshot_every: usize,
    pub(crate) since_snapshot: usize,
    /// Auto-compact after this many snapshots have accumulated (0 = never).
    pub(crate) compact_every_snapshots: usize,
    pub(crate) snapshots_since_compact: usize,
    /// Remaining appends before the injected crash; `None` = healthy.
    crash_in: Option<usize>,
    pub(crate) crashed: bool,
    /// Optional observability hub: appends, flushed bytes, and sync
    /// latency are recorded under the `journal` stage.
    pub(crate) obs: Option<Arc<Obs>>,
}

impl<S: Storage> Journal<S> {
    /// Open (or create) a journal, recovering any durable prefix. A torn
    /// tail is truncated in storage so subsequent appends extend a valid
    /// frame sequence.
    pub fn open(storage: S) -> Result<(Journal<S>, RecoveryReport), JournalError> {
        Self::open_with_snapshot_every(storage, 64)
    }

    /// Open empty `storage` pre-seeded with `state` — the failover entry
    /// point. A second compute site reconstructs a lost facility's
    /// campaign journal from a synced state payload alone: the state is
    /// written as the journal's first snapshot frame, so a resumed run
    /// replays from exactly the synced work and the reconstruction is
    /// itself durable. Refuses storage that already holds events — a real
    /// journal must never be silently overwritten by a failover seed.
    pub fn open_seeded(
        storage: S,
        state: CampaignState,
    ) -> Result<(Journal<S>, RecoveryReport), JournalError> {
        let (mut journal, report) = Self::open(storage)?;
        if !journal.is_empty() {
            return Err(JournalError::Io(format!(
                "open_seeded: storage already holds {} journaled events; refusing to overwrite",
                journal.len()
            )));
        }
        journal.state = state;
        journal.snapshot()?;
        Ok((journal, report))
    }

    /// [`Journal::open`] with an explicit auto-snapshot cadence.
    pub fn open_with_snapshot_every(
        mut storage: S,
        snapshot_every: usize,
    ) -> Result<(Journal<S>, RecoveryReport), JournalError> {
        let bytes = storage.read_all().map_err(JournalError::Io)?;
        let mut events = Vec::new();
        let mut offset = 0usize;
        loop {
            match frame::decode_at(&bytes, offset) {
                FrameOutcome::Ok { payload, next } => match JournalEvent::decode(payload) {
                    Ok(ev) => {
                        events.push(ev);
                        offset = next;
                    }
                    // Checksum-valid but unparseable: treat like a torn
                    // tail — keep the strict prefix before it.
                    Err(_) => break,
                },
                FrameOutcome::End => break,
                FrameOutcome::Torn => break,
            }
        }
        let truncated_bytes = (bytes.len() - offset) as u64;
        if truncated_bytes > 0 {
            // Make the repair itself durable: a power loss right after
            // recovery must not resurrect the torn tail under fresh
            // appends.
            storage.truncate(offset as u64).map_err(JournalError::Io)?;
            storage.sync().map_err(JournalError::Io)?;
        }
        // Rebuild state from the latest usable snapshot; O(tail) replay.
        let snapshot_at = events.iter().rposition(|e| {
            matches!(e, JournalEvent::Snapshot { state }
                     if CampaignState::from_json(state).is_ok())
        });
        let (mut state, replay_from) = match snapshot_at {
            Some(i) => match &events[i] {
                JournalEvent::Snapshot { state } => {
                    (CampaignState::from_json(state).expect("validated above"), i)
                }
                _ => unreachable!("rposition matched a snapshot"),
            },
            None => (CampaignState::new(), 0),
        };
        for ev in &events[replay_from..] {
            state.apply(ev);
        }
        let report = RecoveryReport {
            events: events.len(),
            truncated_bytes,
            replayed: events.len() - replay_from,
            snapshots_seen: events
                .iter()
                .filter(|e| matches!(e, JournalEvent::Snapshot { .. }))
                .count(),
            snapshot_used: snapshot_at.is_some(),
        };
        let since_snapshot = events.len() - snapshot_at.map_or(0, |i| i + 1);
        Ok((
            Journal {
                storage,
                events,
                state,
                snapshot_every,
                since_snapshot,
                compact_every_snapshots: 0,
                snapshots_since_compact: 0,
                crash_in: None,
                crashed: false,
                obs: None,
            },
            report,
        ))
    }

    /// [`Journal::open`] wired to an observability hub: the recovery
    /// report is recorded as `journal` metrics (see
    /// [`RecoveryReport::record`]) and subsequent appends are counted
    /// and timed under the same stage.
    pub fn open_observed(
        storage: S,
        obs: Arc<Obs>,
    ) -> Result<(Journal<S>, RecoveryReport), JournalError> {
        let (mut journal, report) = Self::open(storage)?;
        report.record(&obs);
        journal.obs = Some(obs);
        Ok((journal, report))
    }

    /// Attach an observability hub to an already-open journal (appends
    /// from now on are counted and timed under the `journal` stage).
    pub fn attach_obs(&mut self, obs: Arc<Obs>) {
        self.obs = Some(obs);
    }

    /// Enable auto-compaction: after every `every_snapshots` snapshot
    /// frames accumulate, the journal rewrites its storage to the latest
    /// snapshot + tail (see [`Journal::compact`]). 0 disables (default).
    pub fn with_auto_compact(mut self, every_snapshots: usize) -> Self {
        self.compact_every_snapshots = every_snapshots;
        self
    }

    /// Current size of the backing storage in bytes.
    pub fn storage_size(&mut self) -> Result<u64, JournalError> {
        self.storage.len().map_err(JournalError::Io)
    }

    /// Arm the kill switch: the next `n` appends succeed, every append
    /// after that fails with [`JournalError::Crashed`]. Automatic snapshot
    /// frames consume the budget too, making kill points byte-deterministic.
    pub fn crash_after(&mut self, n: usize) {
        self.crash_in = Some(n);
    }

    /// Whether the injected crash point has been reached.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Durable events, in append order.
    pub fn events(&self) -> &[JournalEvent] {
        &self.events
    }

    /// Number of durable events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been journaled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Live materialised state (identical to what recovery would rebuild).
    pub fn state(&self) -> &CampaignState {
        &self.state
    }

    /// `(events, checksum)` digest of this journal for shipment
    /// manifests. The checksum is FNV-1a over the *materialised state's*
    /// canonical JSON, so it is invariant under compaction: a compacted
    /// journal and the full history it summarises digest identically
    /// (event count aside — which is why both numbers travel). Two
    /// campaigns that durably completed the same work agree; any
    /// divergence in completed work changes the checksum.
    pub fn state_digest(&self) -> (u64, u64) {
        (self.events.len() as u64, self.state.work_checksum())
    }

    /// Append one event durably (written and fsynced before this returns,
    /// for storage that can sync at all).
    pub fn append(&mut self, event: JournalEvent) -> Result<(), JournalError> {
        self.write_frame(event)?;
        if self.snapshot_every > 0 && self.since_snapshot >= self.snapshot_every {
            self.snapshot()?;
            if self.compact_every_snapshots > 0
                && self.snapshots_since_compact >= self.compact_every_snapshots
            {
                self.compact()?;
            }
        }
        Ok(())
    }

    /// Append a snapshot of the current state, resetting the auto-snapshot
    /// counter.
    pub fn snapshot(&mut self) -> Result<(), JournalError> {
        let snap = JournalEvent::Snapshot {
            state: self.state.to_json(),
        };
        self.write_frame(snap)?;
        self.since_snapshot = 0;
        self.snapshots_since_compact += 1;
        if let Some(obs) = &self.obs {
            obs.counter_add("snapshots_written", "journal", 1);
        }
        Ok(())
    }

    fn write_frame(&mut self, event: JournalEvent) -> Result<(), JournalError> {
        if self.crashed {
            return Err(JournalError::Crashed);
        }
        if let Some(left) = self.crash_in {
            if left == 0 {
                self.crashed = true;
                return Err(JournalError::Crashed);
            }
            self.crash_in = Some(left - 1);
        }
        let bytes = frame::encode(&event.encode());
        let start = Instant::now();
        self.storage.append(&bytes).map_err(JournalError::Io)?;
        // The frame is not durable until storage confirms a sync; only a
        // confirmed sync counts as an fsync in the metrics (MemStorage,
        // for instance, never syncs anything).
        let synced = self.storage.sync().map_err(JournalError::Io)?;
        if let Some(obs) = &self.obs {
            obs.counter_add("appends", "journal", 1);
            obs.counter_add("appended_bytes", "journal", bytes.len() as u64);
            if synced {
                obs.counter_add("fsyncs", "journal", 1);
                obs.observe("fsync_seconds", "journal", start.elapsed().as_secs_f64());
            }
        }
        self.state.apply(&event);
        self.events.push(event);
        self.since_snapshot += 1;
        Ok(())
    }

    /// Tear down, returning the storage (tests reuse it to reopen).
    pub fn into_storage(self) -> S {
        self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn ev(i: usize) -> JournalEvent {
        JournalEvent::FileDownloaded {
            file: format!("file-{i}.hdf"),
            bytes: 1000 + i as u64,
        }
    }

    #[test]
    fn reopen_recovers_everything() {
        let store = MemStorage::new();
        let (mut j, rep) = Journal::open(store.clone()).unwrap();
        assert_eq!(rep, RecoveryReport::default());
        for i in 0..10 {
            j.append(ev(i)).unwrap();
        }
        let (j2, rep2) = Journal::open(store).unwrap();
        assert_eq!(rep2.events, 10);
        assert_eq!(rep2.truncated_bytes, 0);
        assert_eq!(j2.events(), j.events());
        assert_eq!(j2.state(), j.state());
    }

    #[test]
    fn state_digest_tracks_work_and_survives_compaction() {
        let store = MemStorage::new();
        let (mut j, _) = Journal::open(store.clone()).unwrap();
        for i in 0..20 {
            j.append(ev(i)).unwrap();
        }
        let (events, checksum) = j.state_digest();
        assert_eq!(events, j.len() as u64);
        // A second journal that did the same work digests identically.
        let (mut twin, _) = Journal::open(MemStorage::new()).unwrap();
        for i in 0..20 {
            twin.append(ev(i)).unwrap();
        }
        assert_eq!(twin.state_digest().1, checksum);
        // Different completed work → different checksum.
        twin.append(ev(99)).unwrap();
        assert_ne!(twin.state_digest().1, checksum);
        // Compaction rewrites history but not the work: the checksum is
        // invariant (the event count legitimately shrinks).
        j.compact().unwrap();
        let (events_after, checksum_after) = j.state_digest();
        assert_eq!(checksum_after, checksum);
        assert!(events_after < events);
    }

    #[test]
    fn open_seeded_reconstructs_a_journal_from_synced_state() {
        // A "source facility" does some work, then is lost for good; only
        // its materialised state survives (synced over the WAN).
        let (mut src, _) = Journal::open(MemStorage::new()).unwrap();
        for i in 0..12 {
            src.append(ev(i)).unwrap();
        }
        let synced = src.state().clone();
        let work = synced.work_checksum();

        // A second site seeds a fresh journal from the synced state alone.
        let store = MemStorage::new();
        let (j, rep) = Journal::open_seeded(store.clone(), synced).unwrap();
        assert_eq!(rep.events, 0);
        assert!(j.state().is_downloaded("file-11.hdf"));
        assert_eq!(j.state_digest().1, work);

        // The seed is durable: reopening replays the same work, and the
        // journal accepts new events on top of it.
        let (mut j2, rep2) = Journal::open(store.clone()).unwrap();
        assert!(rep2.snapshot_used, "seed snapshot must drive recovery");
        assert_eq!(j2.state_digest().1, work);
        j2.append(ev(12)).unwrap();
        assert_ne!(j2.state_digest().1, work);

        // Refuses to clobber a journal that already holds events.
        match Journal::open_seeded(store, CampaignState::default()) {
            Err(JournalError::Io(msg)) => assert!(msg.contains("refusing"), "{msg}"),
            Err(e) => panic!("unexpected error {e:?}"),
            Ok(_) => panic!("open_seeded must refuse a non-empty journal"),
        }
    }

    #[test]
    fn torn_tail_is_truncated_and_journal_stays_usable() {
        let store = MemStorage::new();
        let (mut j, _) = Journal::open(store.clone()).unwrap();
        for i in 0..5 {
            j.append(ev(i)).unwrap();
        }
        let full = store.snapshot_bytes();
        // Chop 3 bytes off the final frame.
        store.set_bytes(full[..full.len() - 3].to_vec());
        let (mut j2, rep) = Journal::open(store.clone()).unwrap();
        assert_eq!(rep.events, 4);
        assert!(rep.truncated_bytes > 0);
        assert!(j2.state().is_downloaded("file-3.hdf"));
        assert!(!j2.state().is_downloaded("file-4.hdf"));
        // The torn bytes are gone from storage and appends work again.
        j2.append(ev(4)).unwrap();
        let (j3, rep3) = Journal::open(store).unwrap();
        assert_eq!(rep3.events, 5);
        assert_eq!(rep3.truncated_bytes, 0);
        assert!(j3.state().is_downloaded("file-4.hdf"));
    }

    #[test]
    fn crash_after_stops_appends_deterministically() {
        let store = MemStorage::new();
        let (mut j, _) = Journal::open(store.clone()).unwrap();
        j.crash_after(3);
        assert!(j.append(ev(0)).is_ok());
        assert!(j.append(ev(1)).is_ok());
        assert!(j.append(ev(2)).is_ok());
        assert_eq!(j.append(ev(3)), Err(JournalError::Crashed));
        assert!(j.is_crashed());
        assert_eq!(j.append(ev(4)), Err(JournalError::Crashed));
        let (j2, rep) = Journal::open(store).unwrap();
        assert_eq!(rep.events, 3);
        assert_eq!(j2.len(), 3);
    }

    #[test]
    fn snapshots_bound_replay_cost() {
        let store = MemStorage::new();
        let (mut j, _) = Journal::open_with_snapshot_every(store.clone(), 10).unwrap();
        for i in 0..57 {
            j.append(ev(i)).unwrap();
        }
        let live_state = j.state().clone();
        let (j2, rep) = Journal::open_with_snapshot_every(store, 10).unwrap();
        assert_eq!(j2.state(), &live_state);
        // 57 events + interleaved snapshots; replay must start at the last
        // snapshot, not the beginning.
        assert!(rep.replayed < 15, "replayed {} events", rep.replayed);
        assert!(rep.events > 57);
    }

    #[test]
    fn open_observed_records_recovery_and_append_metrics() {
        let store = MemStorage::new();
        let (mut j, _) = Journal::open_with_snapshot_every(store.clone(), 5).unwrap();
        for i in 0..12 {
            j.append(ev(i)).unwrap();
        }
        // Tear the tail so recovery has bytes to truncate.
        let full = store.snapshot_bytes();
        store.set_bytes(full[..full.len() - 2].to_vec());

        let obs = Obs::shared();
        let (mut j2, rep) = Journal::open_observed(store.clone(), Arc::clone(&obs)).unwrap();
        assert!(rep.snapshots_seen >= 1, "snapshots in prefix: {rep:?}");
        assert!(rep.snapshot_used, "state must seed from a snapshot");
        let counter = |name: &str| obs.metrics().counter_value(name, "journal").unwrap_or(0);
        assert_eq!(counter("recoveries"), 1);
        assert_eq!(counter("events_recovered"), rep.events as u64);
        assert_eq!(counter("frames_replayed"), rep.replayed as u64);
        assert_eq!(counter("torn_tail_bytes_truncated"), rep.truncated_bytes);
        assert_eq!(counter("snapshots_seen"), rep.snapshots_seen as u64);
        assert_eq!(counter("snapshots_used"), 1);
        assert!(rep.truncated_bytes > 0);

        // Appends through the observed journal are counted — but memory
        // storage never reaches durable media, so no fsync is claimed.
        j2.append(ev(100)).unwrap();
        j2.append(ev(101)).unwrap();
        assert_eq!(counter("appends"), 2);
        assert_eq!(counter("fsyncs"), 0, "MemStorage must not count fsyncs");
        assert!(counter("appended_bytes") > 0);
        assert!(
            obs.metrics()
                .histogram("fsync_seconds", "journal")
                .is_none(),
            "no sync happened, so no sync latency may be recorded"
        );
    }

    #[test]
    fn snapshotless_recovery_reports_no_snapshot_used() {
        let store = MemStorage::new();
        let (mut j, _) = Journal::open_with_snapshot_every(store.clone(), 0).unwrap();
        for i in 0..6 {
            j.append(ev(i)).unwrap();
        }
        let (_, rep) = Journal::open_with_snapshot_every(store, 0).unwrap();
        assert_eq!(rep.snapshots_seen, 0);
        assert!(!rep.snapshot_used);
        assert_eq!(rep.replayed, rep.events, "whole log replays");
    }

    #[test]
    fn file_backed_journal_counts_real_fsyncs() {
        let dir = std::env::temp_dir().join(format!(
            "eoml-journal-fsync-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let obs = Obs::shared();
        let (mut j, _) = Journal::open_observed(
            crate::storage::FileStorage::new(dir.join("wal.log")),
            Arc::clone(&obs),
        )
        .unwrap();
        j.append(ev(0)).unwrap();
        j.append(ev(1)).unwrap();
        let counter = |name: &str| obs.metrics().counter_value(name, "journal").unwrap_or(0);
        assert_eq!(counter("appends"), 2);
        assert_eq!(counter("fsyncs"), 2, "file storage really syncs");
        let h = obs.metrics().histogram("fsync_seconds", "journal").unwrap();
        assert_eq!(h.count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_state_matches_full_replay() {
        let store = MemStorage::new();
        let (mut j, _) = Journal::open_with_snapshot_every(store.clone(), 7).unwrap();
        for i in 0..40 {
            j.append(ev(i)).unwrap();
            if i % 11 == 0 {
                j.append(JournalEvent::StageFinished {
                    stage: format!("stage-{i}"),
                })
                .unwrap();
            }
        }
        let (j2, _) = Journal::open(store).unwrap();
        let mut scratch = CampaignState::new();
        for e in j2.events() {
            scratch.apply(e);
        }
        assert_eq!(&scratch, j2.state());
    }
}

//! Campaign lifecycle events. Each journal frame carries exactly one event
//! as a JSON object tagged by `"type"`; the JSON form is the stable on-disk
//! schema, so encoding is explicit rather than derived.

use serde_json::{json, Value};

/// Everything a campaign (batch or streaming) or flow run records.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A campaign began; identifies the deterministic world it runs in.
    CampaignStarted {
        /// World seed — resume must match it.
        seed: u64,
        /// Human-readable campaign label.
        label: String,
    },
    /// A pipeline stage began.
    StageStarted {
        /// Stage name ("download", "preprocess", ...).
        stage: String,
    },
    /// A pipeline stage completed.
    StageFinished {
        /// Stage name.
        stage: String,
    },
    /// One granule file finished downloading.
    FileDownloaded {
        /// Remote file name.
        file: String,
        /// Payload size.
        bytes: u64,
    },
    /// Preprocessing emitted a tile file for a granule.
    TileFileWritten {
        /// Output tile file name.
        file: String,
        /// Tiles contained.
        tiles: u64,
    },
    /// The data crawler announced a fresh file to inference.
    MonitorTriggered {
        /// File surfaced by the monitor.
        file: String,
    },
    /// Inference labels were appended to a tile file.
    LabelsAppended {
        /// Tile file name.
        file: String,
        /// Labels written.
        labels: u64,
        /// File payload size (needed to rebuild the shipment manifest).
        bytes: u64,
    },
    /// The final shipment transfer completed.
    ShipmentFinished {
        /// Files shipped.
        files: u64,
        /// Bytes shipped.
        bytes: u64,
    },
    /// A destination facility verified a shipment manifest end-to-end
    /// and acknowledged it. Replaying this makes re-ships idempotent.
    IngestAcked {
        /// Manifest id (stable across re-ships of the same content).
        manifest: String,
        /// Acknowledging (destination) facility.
        facility: String,
        /// Artifacts verified.
        files: u64,
        /// Bytes verified.
        bytes: u64,
    },
    /// A destination facility rejected a shipment (digest mismatch,
    /// missing artifact, ...). Recorded so the failure is durable and
    /// auditable — a rejected manifest is *not* acked.
    IngestRejected {
        /// Manifest id.
        manifest: String,
        /// Rejecting facility.
        facility: String,
        /// First verification error, human-readable.
        reason: String,
    },
    /// A flow run moved to a new state with its post-transition context.
    FlowTransition {
        /// Flow run id.
        run: u64,
        /// State just entered.
        state: String,
        /// Context after the transition (for resume).
        context: Value,
    },
    /// A flow run finished.
    FlowFinished {
        /// Flow run id.
        run: u64,
        /// "succeeded" or "failed: reason".
        status: String,
    },
    /// Generic keyed record for long-lived services layered on the journal
    /// (tenant registries, campaign lifecycle state, ...). The journal
    /// treats the value as opaque: a non-null value upserts the key, a
    /// `null` value deletes it. Interpretation lives with the service.
    ServiceRecord {
        /// Record key (e.g. `tenant/<id>`, `campaign/<tenant>/<name>`).
        key: String,
        /// Record payload; `Value::Null` removes the key.
        value: Value,
    },
    /// Periodic state snapshot; recovery replays only events after the
    /// latest one.
    Snapshot {
        /// Serialised [`crate::CampaignState`].
        state: Value,
    },
}

impl JournalEvent {
    /// The on-disk JSON form.
    pub fn to_json(&self) -> Value {
        match self {
            JournalEvent::CampaignStarted { seed, label } => {
                json!({ "type": "campaign_started", "seed": *seed, "label": label })
            }
            JournalEvent::StageStarted { stage } => {
                json!({ "type": "stage_started", "stage": stage })
            }
            JournalEvent::StageFinished { stage } => {
                json!({ "type": "stage_finished", "stage": stage })
            }
            JournalEvent::FileDownloaded { file, bytes } => {
                json!({ "type": "file_downloaded", "file": file, "bytes": *bytes })
            }
            JournalEvent::TileFileWritten { file, tiles } => {
                json!({ "type": "tile_file_written", "file": file, "tiles": *tiles })
            }
            JournalEvent::MonitorTriggered { file } => {
                json!({ "type": "monitor_triggered", "file": file })
            }
            JournalEvent::LabelsAppended {
                file,
                labels,
                bytes,
            } => {
                json!({ "type": "labels_appended", "file": file, "labels": *labels, "bytes": *bytes })
            }
            JournalEvent::ShipmentFinished { files, bytes } => {
                json!({ "type": "shipment_finished", "files": *files, "bytes": *bytes })
            }
            JournalEvent::IngestAcked {
                manifest,
                facility,
                files,
                bytes,
            } => {
                json!({ "type": "ingest_acked", "manifest": manifest, "facility": facility, "files": *files, "bytes": *bytes })
            }
            JournalEvent::IngestRejected {
                manifest,
                facility,
                reason,
            } => {
                json!({ "type": "ingest_rejected", "manifest": manifest, "facility": facility, "reason": reason })
            }
            JournalEvent::FlowTransition {
                run,
                state,
                context,
            } => {
                json!({ "type": "flow_transition", "run": *run, "state": state, "context": context })
            }
            JournalEvent::FlowFinished { run, status } => {
                json!({ "type": "flow_finished", "run": *run, "status": status })
            }
            JournalEvent::ServiceRecord { key, value } => {
                json!({ "type": "service_record", "key": key, "value": value })
            }
            JournalEvent::Snapshot { state } => {
                json!({ "type": "snapshot", "state": state })
            }
        }
    }

    /// Parse the on-disk JSON form; `Err` names the missing/invalid field.
    pub fn from_json(v: &Value) -> Result<JournalEvent, String> {
        let typ = v["type"].as_str().ok_or("event missing 'type'")?;
        let str_field = |k: &str| -> Result<String, String> {
            v[k].as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{typ}: missing '{k}'"))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            v[k].as_u64().ok_or_else(|| format!("{typ}: missing '{k}'"))
        };
        Ok(match typ {
            "campaign_started" => JournalEvent::CampaignStarted {
                seed: u64_field("seed")?,
                label: str_field("label")?,
            },
            "stage_started" => JournalEvent::StageStarted {
                stage: str_field("stage")?,
            },
            "stage_finished" => JournalEvent::StageFinished {
                stage: str_field("stage")?,
            },
            "file_downloaded" => JournalEvent::FileDownloaded {
                file: str_field("file")?,
                bytes: u64_field("bytes")?,
            },
            "tile_file_written" => JournalEvent::TileFileWritten {
                file: str_field("file")?,
                tiles: u64_field("tiles")?,
            },
            "monitor_triggered" => JournalEvent::MonitorTriggered {
                file: str_field("file")?,
            },
            "labels_appended" => JournalEvent::LabelsAppended {
                file: str_field("file")?,
                labels: u64_field("labels")?,
                bytes: u64_field("bytes")?,
            },
            "shipment_finished" => JournalEvent::ShipmentFinished {
                files: u64_field("files")?,
                bytes: u64_field("bytes")?,
            },
            "ingest_acked" => JournalEvent::IngestAcked {
                manifest: str_field("manifest")?,
                facility: str_field("facility")?,
                files: u64_field("files")?,
                bytes: u64_field("bytes")?,
            },
            "ingest_rejected" => JournalEvent::IngestRejected {
                manifest: str_field("manifest")?,
                facility: str_field("facility")?,
                reason: str_field("reason")?,
            },
            "flow_transition" => JournalEvent::FlowTransition {
                run: u64_field("run")?,
                state: str_field("state")?,
                context: v["context"].clone(),
            },
            "flow_finished" => JournalEvent::FlowFinished {
                run: u64_field("run")?,
                status: str_field("status")?,
            },
            "service_record" => JournalEvent::ServiceRecord {
                key: str_field("key")?,
                value: v["value"].clone(),
            },
            "snapshot" => JournalEvent::Snapshot {
                state: v["state"].clone(),
            },
            other => return Err(format!("unknown event type '{other}'")),
        })
    }

    /// Serialise to frame payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        self.to_json().to_string().into_bytes()
    }

    /// Parse frame payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<JournalEvent, String> {
        let text = std::str::from_utf8(bytes).map_err(|_| "event is not UTF-8".to_string())?;
        let v = serde_json::from_str(text).map_err(|e| format!("event is not JSON: {e}"))?;
        JournalEvent::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<JournalEvent> {
        vec![
            JournalEvent::CampaignStarted {
                seed: 42,
                label: "paper_demo".into(),
            },
            JournalEvent::StageStarted {
                stage: "download".into(),
            },
            JournalEvent::StageFinished {
                stage: "download".into(),
            },
            JournalEvent::FileDownloaded {
                file: "MOD021KM.A2022001.0000.hdf".into(),
                bytes: 170_000_000,
            },
            JournalEvent::TileFileWritten {
                file: "tiles_0001.nc".into(),
                tiles: 324,
            },
            JournalEvent::MonitorTriggered {
                file: "tiles_0001.nc".into(),
            },
            JournalEvent::LabelsAppended {
                file: "tiles_0001.nc".into(),
                labels: 324,
                bytes: 5_000_000,
            },
            JournalEvent::ShipmentFinished {
                files: 12,
                bytes: 60_000_000,
            },
            JournalEvent::IngestAcked {
                manifest: "ace-defiant-00ab54a98ceb1f0a".into(),
                facility: "frontier-orion".into(),
                files: 12,
                bytes: 60_000_000,
            },
            JournalEvent::IngestRejected {
                manifest: "ace-defiant-00ab54a98ceb1f0a".into(),
                facility: "frontier-orion".into(),
                reason: "digest mismatch on tiles_0001.nc".into(),
            },
            JournalEvent::FlowTransition {
                run: 7,
                state: "Infer".into(),
                context: json!({ "input": { "file": "x.nc" } }),
            },
            JournalEvent::FlowFinished {
                run: 7,
                status: "succeeded".into(),
            },
            JournalEvent::ServiceRecord {
                key: "campaign/acme/winter".into(),
                value: json!({ "status": "queued", "days_done": 0 }),
            },
            JournalEvent::ServiceRecord {
                key: "campaign/acme/winter".into(),
                value: Value::Null,
            },
            JournalEvent::Snapshot {
                state: json!({ "downloaded": ["a"] }),
            },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for ev in samples() {
            let bytes = ev.encode();
            assert_eq!(JournalEvent::decode(&bytes).unwrap(), ev, "{ev:?}");
        }
    }

    #[test]
    fn unknown_and_malformed_are_errors() {
        assert!(JournalEvent::from_json(&json!({ "type": "warp" })).is_err());
        assert!(JournalEvent::from_json(&json!({ "type": "stage_started" })).is_err());
        assert!(JournalEvent::decode(b"not json").is_err());
    }
}

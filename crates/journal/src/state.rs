//! Materialised journal state: the completed-work sets a resuming driver
//! consults to skip finished granules, tiles, labels, and shipments. Also
//! the payload of snapshot events, so recovery is O(tail) instead of
//! O(whole journal).

use crate::event::JournalEvent;
use serde_json::{json, Map, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Everything a driver needs to know about work already durably completed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignState {
    /// World seed of the campaign that wrote the journal.
    pub seed: Option<u64>,
    /// Campaign label.
    pub label: Option<String>,
    /// Stages that have started.
    pub stages_started: BTreeSet<String>,
    /// Stages that have finished.
    pub stages_finished: BTreeSet<String>,
    /// Downloaded files → payload bytes.
    pub downloaded: BTreeMap<String, u64>,
    /// Written tile files → tile count.
    pub tile_files: BTreeMap<String, u64>,
    /// Files the monitor has already surfaced (dedups triggers on resume).
    pub monitor_seen: BTreeSet<String>,
    /// Labeled files → (labels, file bytes).
    pub labeled: BTreeMap<String, (u64, u64)>,
    /// Completed final shipment, if any: (files, bytes).
    pub shipped: Option<(u64, u64)>,
    /// Acknowledged ingest manifests → (files, bytes) verified. Keyed by
    /// manifest id; re-ships of an acked manifest are idempotent no-ops.
    pub ingests_acked: BTreeMap<String, (u64, u64)>,
    /// Ingest rejections per facility (durable audit of loud failures).
    pub ingest_rejections: BTreeMap<String, u64>,
    /// Last recorded state + context per in-flight flow run.
    pub flow_states: BTreeMap<u64, (String, Value)>,
    /// Terminal status per finished flow run.
    pub flows_finished: BTreeMap<u64, String>,
    /// Keyed service records (tenant registries, campaign lifecycle, ...):
    /// last write wins, `null` deletes. Opaque to the journal.
    pub service_records: BTreeMap<String, Value>,
    /// Events folded into this state (snapshot bookkeeping).
    pub events_applied: u64,
}

impl CampaignState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one event in.
    pub fn apply(&mut self, event: &JournalEvent) {
        self.events_applied += 1;
        match event {
            JournalEvent::CampaignStarted { seed, label } => {
                self.seed = Some(*seed);
                self.label = Some(label.clone());
            }
            JournalEvent::StageStarted { stage } => {
                self.stages_started.insert(stage.clone());
            }
            JournalEvent::StageFinished { stage } => {
                self.stages_finished.insert(stage.clone());
            }
            JournalEvent::FileDownloaded { file, bytes } => {
                self.downloaded.insert(file.clone(), *bytes);
            }
            JournalEvent::TileFileWritten { file, tiles } => {
                self.tile_files.insert(file.clone(), *tiles);
            }
            JournalEvent::MonitorTriggered { file } => {
                self.monitor_seen.insert(file.clone());
            }
            JournalEvent::LabelsAppended {
                file,
                labels,
                bytes,
            } => {
                self.labeled.insert(file.clone(), (*labels, *bytes));
            }
            JournalEvent::ShipmentFinished { files, bytes } => {
                self.shipped = Some((*files, *bytes));
            }
            JournalEvent::IngestAcked {
                manifest,
                files,
                bytes,
                ..
            } => {
                self.ingests_acked
                    .insert(manifest.clone(), (*files, *bytes));
            }
            JournalEvent::IngestRejected { facility, .. } => {
                *self.ingest_rejections.entry(facility.clone()).or_insert(0) += 1;
            }
            JournalEvent::FlowTransition {
                run,
                state,
                context,
            } => {
                self.flow_states
                    .insert(*run, (state.clone(), context.clone()));
            }
            JournalEvent::FlowFinished { run, status } => {
                self.flow_states.remove(run);
                self.flows_finished.insert(*run, status.clone());
            }
            JournalEvent::ServiceRecord { key, value } => {
                if value.is_null() {
                    self.service_records.remove(key);
                } else {
                    self.service_records.insert(key.clone(), value.clone());
                }
            }
            JournalEvent::Snapshot { .. } => {
                // Snapshots carry state; they do not change it.
            }
        }
    }

    /// Whether a download already completed durably.
    pub fn is_downloaded(&self, file: &str) -> bool {
        self.downloaded.contains_key(file)
    }

    /// Whether a tile file was already written.
    pub fn has_tile_file(&self, file: &str) -> bool {
        self.tile_files.contains_key(file)
    }

    /// Whether the monitor already surfaced this file.
    pub fn monitor_saw(&self, file: &str) -> bool {
        self.monitor_seen.contains(file)
    }

    /// Whether labels were already appended to this file.
    pub fn is_labeled(&self, file: &str) -> bool {
        self.labeled.contains_key(file)
    }

    /// Whether a stage already ran to completion.
    pub fn stage_done(&self, stage: &str) -> bool {
        self.stages_finished.contains(stage)
    }

    /// Whether a shipment manifest was already acknowledged by its
    /// destination (the idempotency check for re-ships).
    pub fn is_ingest_acked(&self, manifest: &str) -> bool {
        self.ingests_acked.contains_key(manifest)
    }

    /// FNV-1a checksum of this state's canonical JSON with
    /// `events_applied` zeroed — the *work checksum* behind
    /// [`Journal::state_digest`](crate::Journal::state_digest) and the
    /// shipment-manifest `JournalDigest`. Replay bookkeeping is excluded,
    /// so the checksum is invariant under compaction and crash/resume:
    /// two journals that durably completed the same work agree, and any
    /// divergence in completed work changes it. A destination facility
    /// recomputes this over a synced state payload to detect tampering or
    /// truncation before trusting it for failover.
    pub fn work_checksum(&self) -> u64 {
        let mut canon = self.clone();
        canon.events_applied = 0;
        let canon = canon.to_json().to_string();
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in canon.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Serialise for a snapshot event.
    pub fn to_json(&self) -> Value {
        let pairs = |m: &BTreeMap<String, u64>| -> Value {
            Value::Object(m.iter().map(|(k, v)| (k.clone(), json!(*v))).collect())
        };
        json!({
            "seed": self.seed.map(|s| json!(s)).unwrap_or(Value::Null),
            "label": self.label.clone().map(Value::String).unwrap_or(Value::Null),
            "stages_started": self.stages_started.iter().cloned().collect::<Vec<_>>(),
            "stages_finished": self.stages_finished.iter().cloned().collect::<Vec<_>>(),
            "downloaded": pairs(&self.downloaded),
            "tile_files": pairs(&self.tile_files),
            "monitor_seen": self.monitor_seen.iter().cloned().collect::<Vec<_>>(),
            "labeled": Value::Object(
                self.labeled
                    .iter()
                    .map(|(k, (labels, bytes))| {
                        (k.clone(), json!({ "labels": *labels, "bytes": *bytes }))
                    })
                    .collect::<Map>(),
            ),
            "shipped": self
                .shipped
                .map(|(files, bytes)| json!({ "files": files, "bytes": bytes }))
                .unwrap_or(Value::Null),
            "ingests_acked": Value::Object(
                self.ingests_acked
                    .iter()
                    .map(|(k, (files, bytes))| {
                        (k.clone(), json!({ "files": *files, "bytes": *bytes }))
                    })
                    .collect::<Map>(),
            ),
            "ingest_rejections": pairs(&self.ingest_rejections),
            "flow_states": Value::Object(
                self.flow_states
                    .iter()
                    .map(|(run, (state, ctx))| {
                        (run.to_string(), json!({ "state": state, "context": ctx }))
                    })
                    .collect::<Map>(),
            ),
            "flows_finished": Value::Object(
                self.flows_finished
                    .iter()
                    .map(|(run, status)| (run.to_string(), Value::String(status.clone())))
                    .collect::<Map>(),
            ),
            "service_records": Value::Object(
                self.service_records
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Map>(),
            ),
            "events_applied": self.events_applied,
        })
    }

    /// Rebuild from a snapshot payload.
    pub fn from_json(v: &Value) -> Result<CampaignState, String> {
        let mut s = CampaignState::new();
        s.seed = v["seed"].as_u64();
        s.label = v["label"].as_str().map(str::to_string);
        let str_set = |key: &str| -> BTreeSet<String> {
            v[key]
                .as_array()
                .map(|a| {
                    a.iter()
                        .filter_map(Value::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default()
        };
        s.stages_started = str_set("stages_started");
        s.stages_finished = str_set("stages_finished");
        s.monitor_seen = str_set("monitor_seen");
        let u64_map = |key: &str| -> Result<BTreeMap<String, u64>, String> {
            match v[key].as_object() {
                None => Ok(BTreeMap::new()),
                Some(obj) => obj
                    .iter()
                    .map(|(k, val)| {
                        val.as_u64()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| format!("snapshot {key}[{k}] not a count"))
                    })
                    .collect(),
            }
        };
        s.downloaded = u64_map("downloaded")?;
        s.tile_files = u64_map("tile_files")?;
        if let Some(obj) = v["labeled"].as_object() {
            for (k, entry) in obj.iter() {
                let labels = entry["labels"]
                    .as_u64()
                    .ok_or_else(|| format!("snapshot labeled[{k}] missing labels"))?;
                let bytes = entry["bytes"]
                    .as_u64()
                    .ok_or_else(|| format!("snapshot labeled[{k}] missing bytes"))?;
                s.labeled.insert(k.clone(), (labels, bytes));
            }
        }
        if !v["shipped"].is_null() {
            let files = v["shipped"]["files"]
                .as_u64()
                .ok_or("snapshot shipped missing files")?;
            let bytes = v["shipped"]["bytes"]
                .as_u64()
                .ok_or("snapshot shipped missing bytes")?;
            s.shipped = Some((files, bytes));
        }
        if let Some(obj) = v["ingests_acked"].as_object() {
            for (k, entry) in obj.iter() {
                let files = entry["files"]
                    .as_u64()
                    .ok_or_else(|| format!("snapshot ingests_acked[{k}] missing files"))?;
                let bytes = entry["bytes"]
                    .as_u64()
                    .ok_or_else(|| format!("snapshot ingests_acked[{k}] missing bytes"))?;
                s.ingests_acked.insert(k.clone(), (files, bytes));
            }
        }
        s.ingest_rejections = u64_map("ingest_rejections")?;
        if let Some(obj) = v["flow_states"].as_object() {
            for (k, entry) in obj.iter() {
                let run: u64 = k.parse().map_err(|_| format!("bad flow run id {k}"))?;
                let state = entry["state"]
                    .as_str()
                    .ok_or_else(|| format!("snapshot flow_states[{k}] missing state"))?;
                s.flow_states
                    .insert(run, (state.to_string(), entry["context"].clone()));
            }
        }
        if let Some(obj) = v["flows_finished"].as_object() {
            for (k, entry) in obj.iter() {
                let run: u64 = k.parse().map_err(|_| format!("bad flow run id {k}"))?;
                let status = entry
                    .as_str()
                    .ok_or_else(|| format!("snapshot flows_finished[{k}] not a string"))?;
                s.flows_finished.insert(run, status.to_string());
            }
        }
        if let Some(obj) = v["service_records"].as_object() {
            for (k, entry) in obj.iter() {
                s.service_records.insert(k.clone(), entry.clone());
            }
        }
        s.events_applied = v["events_applied"].as_u64().unwrap_or(0);
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> CampaignState {
        let mut s = CampaignState::new();
        for ev in [
            JournalEvent::CampaignStarted {
                seed: 9,
                label: "demo".into(),
            },
            JournalEvent::StageStarted {
                stage: "download".into(),
            },
            JournalEvent::FileDownloaded {
                file: "a.hdf".into(),
                bytes: 100,
            },
            JournalEvent::StageFinished {
                stage: "download".into(),
            },
            JournalEvent::TileFileWritten {
                file: "t.nc".into(),
                tiles: 5,
            },
            JournalEvent::MonitorTriggered {
                file: "t.nc".into(),
            },
            JournalEvent::LabelsAppended {
                file: "t.nc".into(),
                labels: 5,
                bytes: 777,
            },
            JournalEvent::FlowTransition {
                run: 3,
                state: "Infer".into(),
                context: json!({ "file": "t.nc" }),
            },
            JournalEvent::ShipmentFinished {
                files: 1,
                bytes: 777,
            },
        ] {
            s.apply(&ev);
        }
        s
    }

    #[test]
    fn apply_builds_completed_sets() {
        let s = populated();
        assert!(s.is_downloaded("a.hdf"));
        assert!(!s.is_downloaded("b.hdf"));
        assert!(s.stage_done("download"));
        assert!(s.has_tile_file("t.nc"));
        assert!(s.monitor_saw("t.nc"));
        assert!(s.is_labeled("t.nc"));
        assert_eq!(s.shipped, Some((1, 777)));
        assert_eq!(
            s.flow_states.get(&3).map(|(st, _)| st.as_str()),
            Some("Infer")
        );
        assert_eq!(s.events_applied, 9);
    }

    #[test]
    fn flow_finish_clears_inflight_state() {
        let mut s = populated();
        s.apply(&JournalEvent::FlowFinished {
            run: 3,
            status: "succeeded".into(),
        });
        assert!(s.flow_states.is_empty());
        assert_eq!(
            s.flows_finished.get(&3).map(String::as_str),
            Some("succeeded")
        );
    }

    #[test]
    fn service_records_upsert_delete_and_round_trip() {
        let mut s = CampaignState::new();
        s.apply(&JournalEvent::ServiceRecord {
            key: "tenant/acme".into(),
            value: json!({ "weight": 4 }),
        });
        s.apply(&JournalEvent::ServiceRecord {
            key: "campaign/acme/winter".into(),
            value: json!({ "status": "queued" }),
        });
        // Last write wins.
        s.apply(&JournalEvent::ServiceRecord {
            key: "campaign/acme/winter".into(),
            value: json!({ "status": "running" }),
        });
        assert_eq!(
            s.service_records["campaign/acme/winter"]["status"].as_str(),
            Some("running")
        );
        // Round-trips through the snapshot form.
        let back = CampaignState::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // Null deletes.
        s.apply(&JournalEvent::ServiceRecord {
            key: "campaign/acme/winter".into(),
            value: Value::Null,
        });
        assert!(!s.service_records.contains_key("campaign/acme/winter"));
        assert!(s.service_records.contains_key("tenant/acme"));
    }

    #[test]
    fn ingest_acks_and_rejections_fold_and_round_trip() {
        let mut s = populated();
        assert!(!s.is_ingest_acked("ace-defiant-0001"));
        s.apply(&JournalEvent::IngestRejected {
            manifest: "ace-defiant-0001".into(),
            facility: "frontier-orion".into(),
            reason: "digest mismatch on t.nc".into(),
        });
        assert!(
            !s.is_ingest_acked("ace-defiant-0001"),
            "rejection is not an ack"
        );
        assert_eq!(s.ingest_rejections["frontier-orion"], 1);
        s.apply(&JournalEvent::IngestAcked {
            manifest: "ace-defiant-0001".into(),
            facility: "frontier-orion".into(),
            files: 1,
            bytes: 777,
        });
        assert!(s.is_ingest_acked("ace-defiant-0001"));
        assert_eq!(s.ingests_acked["ace-defiant-0001"], (1, 777));
        // Replaying the same ack is idempotent on the map.
        s.apply(&JournalEvent::IngestAcked {
            manifest: "ace-defiant-0001".into(),
            facility: "frontier-orion".into(),
            files: 1,
            bytes: 777,
        });
        assert_eq!(s.ingests_acked.len(), 1);
        let back = CampaignState::from_json(&s.to_json()).unwrap();
        assert_eq!(back.ingests_acked, s.ingests_acked);
        assert_eq!(back.ingest_rejections, s.ingest_rejections);
    }

    #[test]
    fn snapshot_round_trips() {
        let s = populated();
        let back = CampaignState::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_state_round_trips() {
        let s = CampaignState::new();
        assert_eq!(CampaignState::from_json(&s.to_json()).unwrap(), s);
    }
}

//! Multi-campaign ledger: a directory of per-campaign namespaced journals.
//!
//! Layout (one subdirectory per campaign namespace):
//!
//! ```text
//! <root>/
//!   day-2022-01-01/wal.log            one campaign's journal
//!   day-2022-01-02/wal.log
//!   day-2022-01-02/wal.log.compact    (transient; mid-compaction staging)
//! ```
//!
//! A [`Ledger`] hands out [`FileStorage`]-backed journals keyed by
//! namespace, so consecutive days of a multi-day schedule (or unrelated
//! campaigns sharing a disk) never interleave events. Operations are
//! list, open, compact-all, and total-size — everything the multi-day
//! scheduler needs to keep an unattended campaign's disk usage bounded.

use crate::storage::FileStorage;
use crate::wal::{Journal, JournalError, RecoveryReport};
use crate::CompactionReport;
use eoml_obs::Obs;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// File name of every campaign journal inside its namespace directory.
pub const WAL_FILE: &str = "wal.log";

/// In-process registry of exclusively locked ledger roots (canonicalised).
/// The lock is advisory and process-local: it catches two drivers in one
/// process racing the same root (the common multi-tenant-service and
/// multi-day-scheduler mistake); cross-process exclusion would need OS file
/// locks and is out of scope.
fn locked_roots() -> &'static Mutex<BTreeSet<PathBuf>> {
    static ROOTS: OnceLock<Mutex<BTreeSet<PathBuf>>> = OnceLock::new();
    ROOTS.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Exclusive in-process lock on a ledger root; released on drop.
#[derive(Debug)]
pub struct LedgerLock {
    root: PathBuf,
}

impl Drop for LedgerLock {
    fn drop(&mut self) {
        // Never panic in Drop: a poisoned registry during unwind would turn
        // one panic into an abort. The set itself is always valid (BTreeSet
        // ops can't leave it half-mutated), so poison recovery is safe.
        locked_roots()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.root);
    }
}

/// A directory of per-campaign journals.
pub struct Ledger {
    root: PathBuf,
    snapshot_every: usize,
    compact_every_snapshots: usize,
    obs: Option<Arc<Obs>>,
}

impl Ledger {
    /// Open (or create) a ledger rooted at `root`.
    pub fn new(root: impl AsRef<Path>) -> Result<Self, JournalError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)
            .map_err(|e| JournalError::Io(format!("create ledger {}: {e}", root.display())))?;
        Ok(Self {
            root,
            snapshot_every: 64,
            compact_every_snapshots: 0,
            obs: None,
        })
    }

    /// Override the auto-snapshot cadence applied to every journal opened
    /// through this ledger.
    pub fn with_snapshot_every(mut self, snapshot_every: usize) -> Self {
        self.snapshot_every = snapshot_every;
        self
    }

    /// Auto-compact journals opened through this ledger after this many
    /// snapshots accumulate (0 = never; see [`Journal::with_auto_compact`]).
    pub fn with_auto_compact(mut self, every_snapshots: usize) -> Self {
        self.compact_every_snapshots = every_snapshots;
        self
    }

    /// Attach an observability hub; opens record recovery metrics and
    /// appends are counted under the `journal` stage.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The ledger's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Validate a campaign namespace: path-safe, non-empty, no separators.
    fn check_name(name: &str) -> Result<(), JournalError> {
        let ok = !name.is_empty()
            && name.len() <= 128
            && !name.starts_with('.')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
        if ok {
            Ok(())
        } else {
            Err(JournalError::InvalidNamespace(name.to_string()))
        }
    }

    /// Take the exclusive in-process lock on this ledger's root. Returns
    /// [`JournalError::Busy`] if another live [`LedgerLock`] (any `Ledger`
    /// value, any thread) already covers the same root. Multi-campaign
    /// drivers take this before interleaving namespaces so two concurrent
    /// callers conflict with a typed error instead of corrupting each
    /// other's day/campaign layout.
    pub fn lock_exclusive(&self) -> Result<LedgerLock, JournalError> {
        // Canonicalise so `./ledger` and `ledger` collide; the root exists
        // (created by `new`), so canonicalisation only fails on I/O errors.
        let root = self
            .root
            .canonicalize()
            .map_err(|e| JournalError::Io(format!("canonicalize {}: {e}", self.root.display())))?;
        // Recover from poisoning rather than panic: the registry is a plain
        // BTreeSet, so a panic elsewhere while holding the mutex cannot have
        // left it inconsistent.
        let mut held = locked_roots().lock().unwrap_or_else(|e| e.into_inner());
        if !held.insert(root.clone()) {
            return Err(JournalError::Busy(root.display().to_string()));
        }
        Ok(LedgerLock { root })
    }

    /// The journal path a namespace maps to (`<root>/<campaign>/wal.log`).
    pub fn journal_path(&self, campaign: &str) -> PathBuf {
        self.root.join(campaign).join(WAL_FILE)
    }

    /// Whether a namespace already holds a journal.
    pub fn contains(&self, campaign: &str) -> bool {
        self.journal_path(campaign).exists()
    }

    /// Campaign namespaces with a journal on disk.
    ///
    /// **Ordering guarantee:** the result is always sorted ascending by
    /// byte-wise (lexicographic) namespace comparison, independent of
    /// directory-entry order, creation order, or platform. Service `list`
    /// APIs and tests rely on this being deterministic across calls and
    /// across restarts.
    pub fn list(&self) -> Result<Vec<String>, JournalError> {
        let mut out = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| JournalError::Io(format!("list {}: {e}", self.root.display())))?;
        for entry in entries {
            let entry = entry
                .map_err(|e| JournalError::Io(format!("list {}: {e}", self.root.display())))?;
            let name = match entry.file_name().into_string() {
                Ok(n) => n,
                Err(_) => continue,
            };
            if Self::check_name(&name).is_ok() && entry.path().join(WAL_FILE).exists() {
                out.push(name);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Alias for [`Ledger::list`] (kept for existing callers); same sorted
    /// deterministic ordering guarantee.
    pub fn campaigns(&self) -> Result<Vec<String>, JournalError> {
        self.list()
    }

    /// Open (or create) the journal for `campaign`, recovering any durable
    /// prefix; the namespace directory is created on demand.
    pub fn open(
        &self,
        campaign: &str,
    ) -> Result<(Journal<FileStorage>, RecoveryReport), JournalError> {
        Self::check_name(campaign)?;
        let dir = self.root.join(campaign);
        std::fs::create_dir_all(&dir)
            .map_err(|e| JournalError::Io(format!("create {}: {e}", dir.display())))?;
        let storage = FileStorage::new(dir.join(WAL_FILE));
        let (journal, report) = match &self.obs {
            Some(obs) => {
                let (j, r) = Journal::open_with_snapshot_every(storage, self.snapshot_every)?;
                r.record(obs);
                let mut j = j;
                j.attach_obs(Arc::clone(obs));
                (j, r)
            }
            None => Journal::open_with_snapshot_every(storage, self.snapshot_every)?,
        };
        Ok((
            journal.with_auto_compact(self.compact_every_snapshots),
            report,
        ))
    }

    /// Create the journal for a *new* campaign namespace. Unlike
    /// [`Ledger::open`] (create-or-recover), this rejects a namespace that
    /// already holds a journal with [`JournalError::DuplicateNamespace`],
    /// so a service can refuse a duplicate `submit` gracefully instead of
    /// silently resuming the earlier campaign's journal.
    pub fn create(
        &self,
        campaign: &str,
    ) -> Result<(Journal<FileStorage>, RecoveryReport), JournalError> {
        Self::check_name(campaign)?;
        if self.contains(campaign) {
            return Err(JournalError::DuplicateNamespace(campaign.to_string()));
        }
        self.open(campaign)
    }

    /// Remove a campaign's namespace directory (journal, compaction
    /// staging, everything) — the cleanup path for cancelled campaigns.
    ///
    /// The removal is atomic with respect to [`Ledger::list`]: the
    /// directory is first renamed to a dot-led staging name (never listed),
    /// then deleted, and the parent (root) directory is fsynced so the
    /// disappearance is durable before this returns. Returns
    /// [`JournalError::UnknownNamespace`] when the namespace holds no
    /// journal.
    pub fn remove(&self, campaign: &str) -> Result<(), JournalError> {
        Self::check_name(campaign)?;
        if !self.contains(campaign) {
            return Err(JournalError::UnknownNamespace(campaign.to_string()));
        }
        let dir = self.root.join(campaign);
        // Dot-led names fail `check_name`, so the staging directory can
        // never appear in `list()` even if we crash between rename and
        // delete; a unique-enough suffix avoids colliding with a previous
        // crashed removal of the same namespace.
        let staging = self.root.join(format!(
            ".removing-{campaign}-{}",
            std::process::id() as u64 ^ (dir.as_os_str().len() as u64) << 32
        ));
        if staging.exists() {
            std::fs::remove_dir_all(&staging)
                .map_err(|e| JournalError::Io(format!("clear {}: {e}", staging.display())))?;
        }
        std::fs::rename(&dir, &staging).map_err(|e| {
            JournalError::Io(format!(
                "stage removal {} -> {}: {e}",
                dir.display(),
                staging.display()
            ))
        })?;
        std::fs::remove_dir_all(&staging)
            .map_err(|e| JournalError::Io(format!("remove {}: {e}", staging.display())))?;
        // Make the rename durable: fsync the parent directory.
        let root = std::fs::File::open(&self.root)
            .map_err(|e| JournalError::Io(format!("open {}: {e}", self.root.display())))?;
        root.sync_all()
            .map_err(|e| JournalError::Io(format!("fsync {}: {e}", self.root.display())))?;
        Ok(())
    }

    /// Compact every journal in the ledger; returns per-campaign reports.
    pub fn compact_all(&self) -> Result<Vec<(String, CompactionReport)>, JournalError> {
        let mut out = Vec::new();
        for campaign in self.campaigns()? {
            let (mut journal, _) = self.open(&campaign)?;
            out.push((campaign, journal.compact()?));
        }
        Ok(out)
    }

    /// Total bytes across every campaign journal (compaction staging files
    /// included, since they consume disk too).
    pub fn total_size(&self) -> Result<u64, JournalError> {
        let mut total = 0u64;
        for campaign in self.campaigns()? {
            let dir = self.root.join(campaign);
            let entries = std::fs::read_dir(&dir)
                .map_err(|e| JournalError::Io(format!("list {}: {e}", dir.display())))?;
            for entry in entries.flatten() {
                if let Ok(meta) = entry.metadata() {
                    if meta.is_file() {
                        total += meta.len();
                    }
                }
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JournalEvent;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eoml-ledger-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ev(i: usize) -> JournalEvent {
        JournalEvent::FileDownloaded {
            file: format!("file-{i}.hdf"),
            bytes: i as u64,
        }
    }

    #[test]
    fn namespaces_are_isolated_and_listed_sorted() {
        let root = tempdir("iso");
        let ledger = Ledger::new(&root).unwrap();
        assert_eq!(ledger.campaigns().unwrap(), Vec::<String>::new());

        let (mut day2, _) = ledger.open("day-2022-01-02").unwrap();
        day2.append(ev(2)).unwrap();
        let (mut day1, _) = ledger.open("day-2022-01-01").unwrap();
        day1.append(ev(1)).unwrap();
        drop((day1, day2));

        assert_eq!(
            ledger.campaigns().unwrap(),
            vec!["day-2022-01-01".to_string(), "day-2022-01-02".to_string()]
        );
        assert!(ledger.contains("day-2022-01-01"));
        assert!(!ledger.contains("day-2022-01-03"));

        // Reopening a namespace recovers only its own events.
        let (j, rep) = ledger.open("day-2022-01-01").unwrap();
        assert_eq!(rep.events, 1);
        assert!(j.state().is_downloaded("file-1.hdf"));
        assert!(!j.state().is_downloaded("file-2.hdf"));
    }

    #[test]
    fn bad_namespaces_are_rejected() {
        let root = tempdir("bad");
        let ledger = Ledger::new(&root).unwrap();
        for name in ["", "a/b", "..", ".hidden", "a b", "x\u{e9}"] {
            assert!(ledger.open(name).is_err(), "accepted {name:?}");
        }
        // Nothing was created as a side effect.
        assert_eq!(ledger.campaigns().unwrap(), Vec::<String>::new());
    }

    #[test]
    fn create_rejects_duplicate_namespace_with_typed_error() {
        let root = tempdir("create");
        let ledger = Ledger::new(&root).unwrap();
        let (mut j, _) = ledger.create("winter").unwrap();
        j.append(ev(0)).unwrap();
        drop(j);
        match ledger.create("winter") {
            Err(JournalError::DuplicateNamespace(name)) => assert_eq!(name, "winter"),
            Err(other) => panic!("expected DuplicateNamespace, got {other:?}"),
            Ok(_) => panic!("duplicate create must fail"),
        }
        match ledger.create("a/b") {
            Err(JournalError::InvalidNamespace(name)) => assert_eq!(name, "a/b"),
            Err(other) => panic!("expected InvalidNamespace, got {other:?}"),
            Ok(_) => panic!("invalid create must fail"),
        }
        // The duplicate rejection did not disturb the existing journal.
        let (j, rep) = ledger.open("winter").unwrap();
        assert_eq!(rep.events, 1);
        assert!(j.state().is_downloaded("file-0.hdf"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn remove_drops_namespace_from_list_and_frees_size() {
        let root = tempdir("remove");
        let ledger = Ledger::new(&root).unwrap();
        for ns in ["keep", "gone"] {
            let (mut j, _) = ledger.open(ns).unwrap();
            for i in 0..20 {
                j.append(ev(i)).unwrap();
            }
        }
        let before = ledger.total_size().unwrap();
        assert_eq!(ledger.list().unwrap(), vec!["gone", "keep"]);

        ledger.remove("gone").unwrap();
        assert_eq!(ledger.list().unwrap(), vec!["keep"]);
        assert!(!ledger.contains("gone"));
        let after = ledger.total_size().unwrap();
        assert!(after < before, "total size {before} -> {after}");
        // Removing again (or removing a namespace that never existed) is a
        // typed error, not a panic.
        assert_eq!(
            ledger.remove("gone").unwrap_err(),
            JournalError::UnknownNamespace("gone".into())
        );
        assert_eq!(
            ledger.remove("never").unwrap_err(),
            JournalError::UnknownNamespace("never".into())
        );
        // The namespace is reusable after removal, starting empty.
        let (j, rep) = ledger.open("gone").unwrap();
        assert_eq!(rep.events, 0);
        assert!(j.is_empty());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn lock_exclusive_conflicts_until_released() {
        let root = tempdir("lock");
        let ledger = Ledger::new(&root).unwrap();
        // A second Ledger value over the same root (even via a relative
        // alias) conflicts while the guard lives.
        let alias = Ledger::new(&root).unwrap();
        let guard = ledger.lock_exclusive().unwrap();
        match alias.lock_exclusive() {
            Err(JournalError::Busy(_)) => {}
            other => panic!("expected Busy, got {other:?}"),
        }
        drop(guard);
        let again = alias.lock_exclusive().unwrap();
        drop(again);
        // Different roots never conflict.
        let other_root = tempdir("lock2");
        let other = Ledger::new(&other_root).unwrap();
        let _a = ledger.lock_exclusive().unwrap();
        let _b = other.lock_exclusive().unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        std::fs::remove_dir_all(&other_root).unwrap();
    }

    #[test]
    fn compact_all_shrinks_every_journal_and_total_size() {
        let root = tempdir("compact");
        let ledger = Ledger::new(&root).unwrap().with_snapshot_every(4);
        for ns in ["a", "b"] {
            let (mut j, _) = ledger.open(ns).unwrap();
            for i in 0..60 {
                j.append(ev(i)).unwrap();
            }
        }
        let before = ledger.total_size().unwrap();
        let reports = ledger.compact_all().unwrap();
        assert_eq!(reports.len(), 2);
        for (ns, rep) in &reports {
            assert!(
                rep.after_bytes < rep.before_bytes,
                "{ns}: {} -> {}",
                rep.before_bytes,
                rep.after_bytes
            );
        }
        let after = ledger.total_size().unwrap();
        assert!(after < before, "total size {before} -> {after}");

        // Every namespace reopens to its pre-compaction state with a
        // bounded replay.
        for ns in ["a", "b"] {
            let (j, rep) = ledger.open(ns).unwrap();
            assert!(j.state().is_downloaded("file-59.hdf"));
            assert!(rep.replayed <= 4 + 1, "{ns}: replayed {}", rep.replayed);
        }
    }

    #[test]
    fn lock_registry_recovers_from_poisoning() {
        // Poison the global registry mutex: panic while holding its guard.
        let _ = std::panic::catch_unwind(|| {
            let _guard = locked_roots().lock().unwrap();
            panic!("poison the ledger lock registry");
        });
        assert!(locked_roots().is_poisoned());

        // Locking still works through the poison, and releasing the lock in
        // Drop neither panics nor aborts.
        let root = tempdir("poisoned");
        let ledger = Ledger::new(&root).unwrap();
        let lock = ledger.lock_exclusive().expect("lock through poison");
        assert!(matches!(
            ledger.lock_exclusive(),
            Err(JournalError::Busy(_))
        ));
        drop(lock);
        // Root released: a fresh lock succeeds again.
        let relock = ledger.lock_exclusive().expect("relock after drop");
        drop(relock);
        std::fs::remove_dir_all(&root).unwrap();
    }
}

//! Multi-campaign ledger: a directory of per-campaign namespaced journals.
//!
//! Layout (one subdirectory per campaign namespace):
//!
//! ```text
//! <root>/
//!   day-2022-01-01/wal.log            one campaign's journal
//!   day-2022-01-02/wal.log
//!   day-2022-01-02/wal.log.compact    (transient; mid-compaction staging)
//! ```
//!
//! A [`Ledger`] hands out [`FileStorage`]-backed journals keyed by
//! namespace, so consecutive days of a multi-day schedule (or unrelated
//! campaigns sharing a disk) never interleave events. Operations are
//! list, open, compact-all, and total-size — everything the multi-day
//! scheduler needs to keep an unattended campaign's disk usage bounded.

use crate::storage::FileStorage;
use crate::wal::{Journal, JournalError, RecoveryReport};
use crate::CompactionReport;
use eoml_obs::Obs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of every campaign journal inside its namespace directory.
pub const WAL_FILE: &str = "wal.log";

/// A directory of per-campaign journals.
pub struct Ledger {
    root: PathBuf,
    snapshot_every: usize,
    compact_every_snapshots: usize,
    obs: Option<Arc<Obs>>,
}

impl Ledger {
    /// Open (or create) a ledger rooted at `root`.
    pub fn new(root: impl AsRef<Path>) -> Result<Self, JournalError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)
            .map_err(|e| JournalError::Io(format!("create ledger {}: {e}", root.display())))?;
        Ok(Self {
            root,
            snapshot_every: 64,
            compact_every_snapshots: 0,
            obs: None,
        })
    }

    /// Override the auto-snapshot cadence applied to every journal opened
    /// through this ledger.
    pub fn with_snapshot_every(mut self, snapshot_every: usize) -> Self {
        self.snapshot_every = snapshot_every;
        self
    }

    /// Auto-compact journals opened through this ledger after this many
    /// snapshots accumulate (0 = never; see [`Journal::with_auto_compact`]).
    pub fn with_auto_compact(mut self, every_snapshots: usize) -> Self {
        self.compact_every_snapshots = every_snapshots;
        self
    }

    /// Attach an observability hub; opens record recovery metrics and
    /// appends are counted under the `journal` stage.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The ledger's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Validate a campaign namespace: path-safe, non-empty, no separators.
    fn check_name(name: &str) -> Result<(), JournalError> {
        let ok = !name.is_empty()
            && name.len() <= 128
            && !name.starts_with('.')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
        if ok {
            Ok(())
        } else {
            Err(JournalError::Io(format!(
                "invalid campaign namespace {name:?} (want [A-Za-z0-9._-]+, not dot-led)"
            )))
        }
    }

    /// The journal path a namespace maps to (`<root>/<campaign>/wal.log`).
    pub fn journal_path(&self, campaign: &str) -> PathBuf {
        self.root.join(campaign).join(WAL_FILE)
    }

    /// Whether a namespace already holds a journal.
    pub fn contains(&self, campaign: &str) -> bool {
        self.journal_path(campaign).exists()
    }

    /// Campaign namespaces with a journal on disk, sorted.
    pub fn campaigns(&self) -> Result<Vec<String>, JournalError> {
        let mut out = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| JournalError::Io(format!("list {}: {e}", self.root.display())))?;
        for entry in entries {
            let entry = entry
                .map_err(|e| JournalError::Io(format!("list {}: {e}", self.root.display())))?;
            let name = match entry.file_name().into_string() {
                Ok(n) => n,
                Err(_) => continue,
            };
            if Self::check_name(&name).is_ok() && entry.path().join(WAL_FILE).exists() {
                out.push(name);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Open (or create) the journal for `campaign`, recovering any durable
    /// prefix; the namespace directory is created on demand.
    pub fn open(
        &self,
        campaign: &str,
    ) -> Result<(Journal<FileStorage>, RecoveryReport), JournalError> {
        Self::check_name(campaign)?;
        let dir = self.root.join(campaign);
        std::fs::create_dir_all(&dir)
            .map_err(|e| JournalError::Io(format!("create {}: {e}", dir.display())))?;
        let storage = FileStorage::new(dir.join(WAL_FILE));
        let (journal, report) = match &self.obs {
            Some(obs) => {
                let (j, r) = Journal::open_with_snapshot_every(storage, self.snapshot_every)?;
                r.record(obs);
                let mut j = j;
                j.attach_obs(Arc::clone(obs));
                (j, r)
            }
            None => Journal::open_with_snapshot_every(storage, self.snapshot_every)?,
        };
        Ok((
            journal.with_auto_compact(self.compact_every_snapshots),
            report,
        ))
    }

    /// Compact every journal in the ledger; returns per-campaign reports.
    pub fn compact_all(&self) -> Result<Vec<(String, CompactionReport)>, JournalError> {
        let mut out = Vec::new();
        for campaign in self.campaigns()? {
            let (mut journal, _) = self.open(&campaign)?;
            out.push((campaign, journal.compact()?));
        }
        Ok(out)
    }

    /// Total bytes across every campaign journal (compaction staging files
    /// included, since they consume disk too).
    pub fn total_size(&self) -> Result<u64, JournalError> {
        let mut total = 0u64;
        for campaign in self.campaigns()? {
            let dir = self.root.join(campaign);
            let entries = std::fs::read_dir(&dir)
                .map_err(|e| JournalError::Io(format!("list {}: {e}", dir.display())))?;
            for entry in entries.flatten() {
                if let Ok(meta) = entry.metadata() {
                    if meta.is_file() {
                        total += meta.len();
                    }
                }
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JournalEvent;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eoml-ledger-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ev(i: usize) -> JournalEvent {
        JournalEvent::FileDownloaded {
            file: format!("file-{i}.hdf"),
            bytes: i as u64,
        }
    }

    #[test]
    fn namespaces_are_isolated_and_listed_sorted() {
        let root = tempdir("iso");
        let ledger = Ledger::new(&root).unwrap();
        assert_eq!(ledger.campaigns().unwrap(), Vec::<String>::new());

        let (mut day2, _) = ledger.open("day-2022-01-02").unwrap();
        day2.append(ev(2)).unwrap();
        let (mut day1, _) = ledger.open("day-2022-01-01").unwrap();
        day1.append(ev(1)).unwrap();
        drop((day1, day2));

        assert_eq!(
            ledger.campaigns().unwrap(),
            vec!["day-2022-01-01".to_string(), "day-2022-01-02".to_string()]
        );
        assert!(ledger.contains("day-2022-01-01"));
        assert!(!ledger.contains("day-2022-01-03"));

        // Reopening a namespace recovers only its own events.
        let (j, rep) = ledger.open("day-2022-01-01").unwrap();
        assert_eq!(rep.events, 1);
        assert!(j.state().is_downloaded("file-1.hdf"));
        assert!(!j.state().is_downloaded("file-2.hdf"));
    }

    #[test]
    fn bad_namespaces_are_rejected() {
        let root = tempdir("bad");
        let ledger = Ledger::new(&root).unwrap();
        for name in ["", "a/b", "..", ".hidden", "a b", "x\u{e9}"] {
            assert!(ledger.open(name).is_err(), "accepted {name:?}");
        }
        // Nothing was created as a side effect.
        assert_eq!(ledger.campaigns().unwrap(), Vec::<String>::new());
    }

    #[test]
    fn compact_all_shrinks_every_journal_and_total_size() {
        let root = tempdir("compact");
        let ledger = Ledger::new(&root).unwrap().with_snapshot_every(4);
        for ns in ["a", "b"] {
            let (mut j, _) = ledger.open(ns).unwrap();
            for i in 0..60 {
                j.append(ev(i)).unwrap();
            }
        }
        let before = ledger.total_size().unwrap();
        let reports = ledger.compact_all().unwrap();
        assert_eq!(reports.len(), 2);
        for (ns, rep) in &reports {
            assert!(
                rep.after_bytes < rep.before_bytes,
                "{ns}: {} -> {}",
                rep.before_bytes,
                rep.after_bytes
            );
        }
        let after = ledger.total_size().unwrap();
        assert!(after < before, "total size {before} -> {after}");

        // Every namespace reopens to its pre-compaction state with a
        // bounded replay.
        for ns in ["a", "b"] {
            let (j, rep) = ledger.open(ns).unwrap();
            assert!(j.state().is_downloaded("file-59.hdf"));
            assert!(rep.replayed <= 4 + 1, "{ns}: replayed {}", rep.replayed);
        }
    }
}

//! eoml-journal: durable write-ahead event journal for campaign recovery.

pub mod event;
pub mod frame;
pub mod state;
pub mod storage;
pub mod wal;

pub use event::JournalEvent;
pub use state::CampaignState;
pub use storage::{FileStorage, MemStorage, Storage};
pub use wal::{Journal, JournalError, RecoveryReport};

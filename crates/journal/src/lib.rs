//! eoml-journal: durable write-ahead event journal for campaign recovery,
//! with snapshot+tail compaction and a multi-campaign file ledger.

pub mod compact;
pub mod event;
pub mod frame;
pub mod ledger;
pub mod state;
pub mod storage;
pub mod wal;

pub use compact::CompactionReport;
pub use event::JournalEvent;
pub use ledger::{Ledger, LedgerLock};
pub use state::CampaignState;
pub use storage::{FileStorage, MemStorage, Storage};
pub use wal::{Journal, JournalError, RecoveryReport};

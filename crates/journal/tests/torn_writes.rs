//! Property tests of crash safety: truncate or corrupt the journal's bytes
//! at an *arbitrary* offset, and recovery must never panic, must recover a
//! strict prefix of the appended events, and must leave storage in a state
//! that accepts further appends.

use eoml_journal::{Journal, JournalEvent, MemStorage};
use proptest::prelude::*;

/// A small vocabulary of events, decoded from a generator byte + payload.
fn event(kind: u8, n: u64) -> JournalEvent {
    match kind % 5 {
        0 => JournalEvent::FileDownloaded {
            file: format!("f{n}.hdf"),
            bytes: n.wrapping_mul(131) % 1_000_000,
        },
        1 => JournalEvent::TileFileWritten {
            file: format!("tiles-{n}.nc"),
            tiles: n % 150,
        },
        2 => JournalEvent::MonitorTriggered {
            file: format!("tiles-{n}.nc"),
        },
        3 => JournalEvent::LabelsAppended {
            file: format!("tiles-{n}.nc"),
            labels: n % 150,
            bytes: n.wrapping_mul(4096) % 10_000_000,
        },
        _ => JournalEvent::StageStarted {
            stage: format!("stage-{}", n % 7),
        },
    }
}

fn write_journal(events: &[JournalEvent], snapshot_every: usize) -> MemStorage {
    let store = MemStorage::new();
    let (mut journal, _) =
        Journal::open_with_snapshot_every(store.clone(), snapshot_every).unwrap();
    for ev in events {
        journal.append(ev.clone()).unwrap();
    }
    store
}

/// Durable events of a journal, with auto-snapshot frames filtered out so
/// they can be compared against what the test appended.
fn non_snapshot_events(store: MemStorage) -> Vec<JournalEvent> {
    let (journal, _) = Journal::open(store).unwrap();
    journal
        .events()
        .iter()
        .filter(|e| !matches!(e, JournalEvent::Snapshot { .. }))
        .cloned()
        .collect()
}

proptest! {
    #[test]
    fn truncation_at_any_offset_recovers_a_strict_prefix(
        kinds in proptest::collection::vec((0u8..5, 0u64..1000), 1..40),
        cut_frac in 0.0f64..1.0,
        snapshot_every in 0usize..10,
    ) {
        let events: Vec<JournalEvent> =
            kinds.iter().map(|&(k, n)| event(k, n)).collect();
        let store = write_journal(&events, snapshot_every);
        let full = store.snapshot_bytes();

        // Tear the tail at an arbitrary byte offset.
        let cut = (full.len() as f64 * cut_frac) as usize;
        store.set_bytes(full[..cut.min(full.len())].to_vec());

        // Recovery must not panic and must yield a strict prefix.
        let (journal, report) = Journal::open(store.clone()).unwrap();
        let recovered: Vec<JournalEvent> = journal
            .events()
            .iter()
            .filter(|e| !matches!(e, JournalEvent::Snapshot { .. }))
            .cloned()
            .collect();
        prop_assert!(recovered.len() <= events.len());
        prop_assert_eq!(&recovered[..], &events[..recovered.len()]);
        // The torn tail was truncated in storage: a second open is clean.
        drop(journal);
        let (_, second) = Journal::open(store.clone()).unwrap();
        prop_assert_eq!(second.truncated_bytes, 0);
        prop_assert_eq!(second.events, report.events);

        // The repaired journal accepts further appends and they survive a
        // reopen.
        let (mut journal, _) = Journal::open(store.clone()).unwrap();
        journal.append(event(0, 424_242)).unwrap();
        let after = non_snapshot_events(store);
        prop_assert_eq!(after.len(), recovered.len() + 1);
        prop_assert_eq!(after.last().unwrap(), &event(0, 424_242));
    }

    /// A zero-filled tail — the classic post-power-loss block zero-fill —
    /// must recover exactly the events before the zeroed region, never
    /// "decode" the zeros as valid empty frames.
    #[test]
    fn zero_filled_tail_recovers_the_prefix_before_it(
        kinds in proptest::collection::vec((0u8..5, 0u64..1000), 1..30),
        zero_from_frac in 0.0f64..1.0,
        zero_len in 1usize..4096,
        snapshot_every in 0usize..10,
    ) {
        let events: Vec<JournalEvent> =
            kinds.iter().map(|&(k, n)| event(k, n)).collect();
        let store = write_journal(&events, snapshot_every);
        let full = store.snapshot_bytes();

        // Zero everything from an arbitrary offset, then pad with more
        // zeros (a zeroed block can extend past the old end of file).
        let zero_from = ((full.len() - 1) as f64 * zero_from_frac) as usize;
        let mut bytes = full[..zero_from].to_vec();
        bytes.resize(full.len() + zero_len, 0);
        store.set_bytes(bytes);

        let (journal, _) = Journal::open(store.clone()).unwrap();
        let recovered: Vec<JournalEvent> = journal
            .events()
            .iter()
            .filter(|e| !matches!(e, JournalEvent::Snapshot { .. }))
            .cloned()
            .collect();
        prop_assert!(recovered.len() <= events.len());
        prop_assert_eq!(&recovered[..], &events[..recovered.len()]);

        // The zeroed region was truncated away; the journal accepts
        // appends and they survive a reopen.
        drop(journal);
        let (mut journal, second) = Journal::open(store.clone()).unwrap();
        prop_assert_eq!(second.truncated_bytes, 0);
        journal.append(event(3, 777_777)).unwrap();
        let after = non_snapshot_events(store);
        prop_assert_eq!(after.len(), recovered.len() + 1);
        prop_assert_eq!(after.last().unwrap(), &event(3, 777_777));
    }

    #[test]
    fn corrupting_any_byte_never_panics_and_keeps_a_prefix(
        kinds in proptest::collection::vec((0u8..5, 0u64..1000), 1..30),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let events: Vec<JournalEvent> =
            kinds.iter().map(|&(k, n)| event(k, n)).collect();
        let store = write_journal(&events, 0);
        let mut bytes = store.snapshot_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        store.set_bytes(bytes);

        // The flipped byte invalidates its frame's checksum (or its length
        // prefix): recovery stops at that frame, keeping the prefix before
        // it, and never panics.
        let (journal, _) = Journal::open(store).unwrap();
        let recovered: Vec<JournalEvent> = journal.events().to_vec();
        prop_assert!(recovered.len() < events.len() || recovered == events);
        prop_assert_eq!(&recovered[..], &events[..recovered.len()]);
    }
}

//! Compaction safety: compacting must never change what a reopen
//! rebuilds, must bound replay cost, and a crash mid-compaction (temp
//! image written, rename not reached) must leave the pre-compaction
//! journal fully recoverable.

use eoml_journal::{CampaignState, FileStorage, Journal, JournalEvent, MemStorage};
use proptest::prelude::*;
use std::path::PathBuf;

fn event(kind: u8, n: u64) -> JournalEvent {
    match kind % 5 {
        0 => JournalEvent::FileDownloaded {
            file: format!("f{n}.hdf"),
            bytes: n.wrapping_mul(131) % 1_000_000,
        },
        1 => JournalEvent::TileFileWritten {
            file: format!("tiles-{n}.nc"),
            tiles: n % 150,
        },
        2 => JournalEvent::MonitorTriggered {
            file: format!("tiles-{n}.nc"),
        },
        3 => JournalEvent::LabelsAppended {
            file: format!("tiles-{n}.nc"),
            labels: n % 150,
            bytes: n.wrapping_mul(4096) % 10_000_000,
        },
        _ => JournalEvent::StageStarted {
            stage: format!("stage-{}", n % 7),
        },
    }
}

/// Reopen and return the state with the snapshot bookkeeping counter
/// normalised out — compaction legitimately appends an extra snapshot
/// frame, which bumps `events_applied` without changing real state.
fn reopened_state(store: MemStorage) -> CampaignState {
    let (journal, _) = Journal::open(store).unwrap();
    let mut state = journal.state().clone();
    state.events_applied = 0;
    state
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eoml-compaction-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    /// Path A appends everything; path B compacts at an arbitrary split
    /// point in between. Both reopen to identical state, and B's replay
    /// cost stays bounded by the snapshot cadence.
    #[test]
    fn compact_then_reopen_equals_no_compact_reopen(
        kinds in proptest::collection::vec((0u8..5, 0u64..1000), 1..60),
        split_frac in 0.0f64..1.0,
        snapshot_every in 1usize..10,
    ) {
        let events: Vec<JournalEvent> =
            kinds.iter().map(|&(k, n)| event(k, n)).collect();
        let split = ((events.len() as f64) * split_frac) as usize;

        let plain = MemStorage::new();
        let (mut j, _) =
            Journal::open_with_snapshot_every(plain.clone(), snapshot_every).unwrap();
        for ev in &events {
            j.append(ev.clone()).unwrap();
        }
        drop(j);

        let compacted = MemStorage::new();
        let (mut j, _) =
            Journal::open_with_snapshot_every(compacted.clone(), snapshot_every).unwrap();
        for ev in &events[..split] {
            j.append(ev.clone()).unwrap();
        }
        let report = j.compact().unwrap();
        prop_assert!(report.after_bytes > 0, "compacted image never empty");
        for ev in &events[split..] {
            j.append(ev.clone()).unwrap();
        }
        let live = {
            let mut s = j.state().clone();
            s.events_applied = 0;
            s
        };
        drop(j);

        prop_assert_eq!(reopened_state(plain), reopened_state(compacted.clone()));
        prop_assert_eq!(reopened_state(compacted.clone()), live);

        // Replay cost after compaction stays O(snapshot cadence): at most
        // the snapshot frame itself plus one cadence window of tail.
        let (_, rep) =
            Journal::open_with_snapshot_every(compacted, snapshot_every).unwrap();
        prop_assert!(
            rep.replayed <= snapshot_every + 1,
            "replayed {} > cadence {}",
            rep.replayed,
            snapshot_every
        );
    }
}

#[test]
fn many_appends_then_compact_shrinks_file_and_bounds_replay() {
    let dir = tempdir("bound");
    let path = dir.join("wal.log");
    let snapshot_every = 8usize;
    let (mut j, _) =
        Journal::open_with_snapshot_every(FileStorage::new(&path), snapshot_every).unwrap();
    // N >> snapshot_every appends.
    for i in 0..500 {
        j.append(event((i % 5) as u8, i as u64)).unwrap();
    }
    let before = std::fs::metadata(&path).unwrap().len();
    let report = j.compact().unwrap();
    let after = std::fs::metadata(&path).unwrap().len();
    assert!(after < before, "file must shrink: {before} -> {after}");
    assert_eq!(report.before_bytes, before);
    assert_eq!(report.after_bytes, after);
    drop(j);

    let (j2, rep) =
        Journal::open_with_snapshot_every(FileStorage::new(&path), snapshot_every).unwrap();
    assert!(
        rep.replayed <= snapshot_every,
        "replayed {} > {snapshot_every}",
        rep.replayed
    );
    assert!(rep.snapshot_used);
    assert!(j2.state().is_downloaded("f495.hdf"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_mid_compaction_recovers_the_precompaction_journal() {
    let dir = tempdir("crash");
    let path = dir.join("wal.log");
    let (mut j, _) = Journal::open_with_snapshot_every(FileStorage::new(&path), 6).unwrap();
    for i in 0..40 {
        j.append(event((i % 5) as u8, i as u64)).unwrap();
    }
    let mut expected = j.state().clone();
    expected.events_applied = 0;
    drop(j);
    let wal_bytes = std::fs::read(&path).unwrap();

    // Simulate a crash after the compaction image was staged but before
    // the rename: the temp file exists (here: a partial, garbage image),
    // the real journal untouched.
    let temp = FileStorage::new(&path).compact_path();
    std::fs::write(&temp, &wal_bytes[..wal_bytes.len() / 3]).unwrap();

    // Recovery ignores the staging file entirely and reopens the full
    // pre-compaction journal.
    let (j2, rep) = Journal::open_with_snapshot_every(FileStorage::new(&path), 6).unwrap();
    assert_eq!(rep.truncated_bytes, 0, "journal itself is intact");
    let mut got = j2.state().clone();
    got.events_applied = 0;
    assert_eq!(got, expected);

    // The next compaction overwrites the stale staging file and succeeds.
    let mut j2 = j2;
    let report = j2.compact().unwrap();
    assert!(report.after_bytes < report.before_bytes);
    assert!(!temp.exists(), "staging file consumed by the rename");
    drop(j2);
    let (j3, _) = Journal::open_with_snapshot_every(FileStorage::new(&path), 6).unwrap();
    let mut got = j3.state().clone();
    got.events_applied = 0;
    assert_eq!(got, expected, "post-compaction state still matches");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_exactly_at_rename_means_new_image_is_complete() {
    // The other half of the swap protocol: if the rename DID happen, the
    // new image must be complete and self-sufficient. Emulate by calling
    // replace_all directly and reopening.
    let dir = tempdir("renamed");
    let path = dir.join("wal.log");
    let (mut j, _) = Journal::open_with_snapshot_every(FileStorage::new(&path), 4).unwrap();
    for i in 0..30 {
        j.append(event((i % 5) as u8, i as u64)).unwrap();
    }
    let mut expected = j.state().clone();
    j.compact().unwrap();
    expected.events_applied = 0;
    drop(j);

    let (j2, rep) = Journal::open_with_snapshot_every(FileStorage::new(&path), 4).unwrap();
    assert_eq!(rep.truncated_bytes, 0);
    assert!(rep.snapshot_used);
    let mut got = j2.state().clone();
    got.events_applied = 0;
    assert_eq!(got, expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Regenerates every table and figure of the paper's evaluation (§IV).
//!
//! ```sh
//! cargo bench -p eoml-bench --bench figures              # everything
//! cargo bench -p eoml-bench --bench figures -- fig4a     # one experiment
//! cargo bench -p eoml-bench --bench figures -- --json    # + BENCH_*.json
//! cargo bench -p eoml-bench --bench figures -- --json=out fig3
//! cargo bench -p eoml-bench --bench figures -- --compare # gate vs baselines
//! cargo bench -p eoml-bench --bench figures -- --archive=dir # freeze a RunArchive
//! ```
//!
//! Each experiment prints the same rows/series the paper reports, plus the
//! paper's measured values for side-by-side comparison. Absolute agreement
//! is not the goal (the substrate is a calibrated simulator); the *shape*
//! — who wins, where scaling saturates, where crossovers fall — is.
//!
//! With `--json[=DIR]` every table is also written as a machine-readable
//! `BENCH_<name>.json` document (default directory: the current one), so
//! figure trajectories can be tracked per run instead of scraped from
//! stdout.
//!
//! # Regression gating and the baseline refresh workflow
//!
//! The committed files under `bench/baselines/BENCH_*.json` are the
//! *bench-trajectory baselines*: one JSON document per experiment table,
//! each embedding the tolerance it is judged under. Two modes consume and
//! produce them:
//!
//! * `--compare[=DIR]` (default `bench/baselines`) — after the selected
//!   experiments run, every produced table is diffed against its committed
//!   baseline with [`eoml_obs::BaselineStore`]. A cell that moves beyond
//!   the noise-aware tolerance (relative threshold AND absolute floor), a
//!   table whose shape changed, or a table with no committed baseline
//!   fails the gate and the process **exits nonzero** — this is the CI
//!   regression gate. Partial runs compare partially: baselines for
//!   experiments you did not select are ignored.
//! * `--write-baselines[=DIR]` (default `bench/baselines`) — rewrite the
//!   baseline files from the current run.
//!
//! The simulator is seeded and discrete-event, so every table is
//! bit-stable run-to-run on a given toolchain; the tolerance absorbs
//! cross-toolchain float drift, not run noise.
//!
//! To refresh after an intentional performance-trajectory change:
//!
//! ```sh
//! cargo bench -p eoml-bench --bench figures -- --compare       # see the diff
//! cargo bench -p eoml-bench --bench figures -- --write-baselines
//! git add bench/baselines && git commit                        # review deltas!
//! ```
//!
//! Memory/allocator output (the counting allocator installed below) is
//! deliberately *excluded* from the baseline surface: allocation byte
//! counts are not stable across rustc versions or platforms, so they are
//! reported as text only.
//!
//! With `--archive[=DIR]` (default `bench-archive`) the whole run is
//! additionally frozen as an [`eoml_obs::RunArchive`]: the campaign
//! experiments (fig6/fig7) report into a shared hub whose span store,
//! folded profile, and every emitted table land under a digested
//! manifest. Two such archives — e.g. this PR vs main — feed
//! `eoml-obsctl diff` for ranked regression attribution.

use eoml_bench::TILES_PER_FILE;
use eoml_cluster::contention::ContentionModel;
use eoml_cluster::exec::ClusterModel;
use eoml_cluster::spec::ClusterSpec;
use eoml_core::campaign::{run_campaign, CampaignParams};
use eoml_executor::simexec::{run_batch, BatchReport};
use eoml_modis::catalog::Catalog;
use eoml_modis::product::Platform;
use eoml_obs::table::{Cell, Table};
use eoml_obs::{config_digest, BaselineStore, Obs, RunArchive, RunMeta, Tolerance};
use eoml_simtime::{SimTime, Simulation};
use eoml_transfer::endpoint::Endpoint;
use eoml_transfer::faults::FaultPlan;
use eoml_transfer::flownet::{FlowNetwork, HasNetwork};
use eoml_transfer::pool::{DownloadPool, DownloadReport};
use eoml_util::stats::Summary;
use eoml_util::timebase::CivilDate;
use eoml_util::units::ByteSize;
use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::Arc;

// The counting allocator attributes bench memory traffic; its numbers are
// reported as text only (see the header: never part of the baselines).
eoml_obs::install_counting_allocator!();

/// Table output: always the aligned text form; with `--json[=DIR]` also a
/// `BENCH_<name>.json` document per table. Every emitted table is retained
/// for the `--compare` / `--write-baselines` pass at the end of the run.
///
/// `--json` emissions carry a self-describing `meta` block (git describe,
/// sim seed, host cores, archive schema version). The committed baselines
/// never do — `--write-baselines` goes through [`BaselineStore::write`],
/// and comparisons are meta-blind either way, so the 12 committed seeds
/// stay byte-identical.
struct Emit {
    json_dir: Option<PathBuf>,
    tables: RefCell<Vec<Table>>,
    /// Shared hub the campaign experiments report into when this run is
    /// being archived (`--archive`); `None` keeps the legacy path.
    obs: Option<Arc<Obs>>,
    meta: RunMeta,
}

impl Emit {
    fn table(&self, table: &Table) {
        print!("{}", table.render_text(0));
        if let Some(dir) = &self.json_dir {
            match table.write_json_with_meta(dir, &self.meta.to_json()) {
                Ok(path) => println!("[wrote {}]", path.display()),
                Err(e) => eprintln!("[failed to write BENCH_{}.json: {e}]", table.name),
            }
        }
        self.tables.borrow_mut().push(table.clone());
    }
}

/// Parsed command line: experiment selection plus the three output modes.
struct Cli {
    explicit: Vec<String>,
    json_dir: Option<PathBuf>,
    compare_dir: Option<PathBuf>,
    write_dir: Option<PathBuf>,
    archive_dir: Option<PathBuf>,
}

const DEFAULT_BASELINE_DIR: &str = "bench/baselines";

fn parse_cli(args: &[String]) -> Cli {
    let mut cli = Cli {
        explicit: Vec::new(),
        json_dir: None,
        compare_dir: None,
        write_dir: None,
        archive_dir: None,
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--json" {
            cli.json_dir = Some(PathBuf::from("."));
        } else if let Some(d) = a.strip_prefix("--json=") {
            cli.json_dir = Some(PathBuf::from(d));
        } else if a == "--compare" {
            // `--compare DIR` (next non-flag arg) or bare default.
            if let Some(next) = args.get(i + 1).filter(|n| !n.starts_with("--")) {
                cli.compare_dir = Some(PathBuf::from(next));
                i += 1;
            } else {
                cli.compare_dir = Some(PathBuf::from(DEFAULT_BASELINE_DIR));
            }
        } else if let Some(d) = a.strip_prefix("--compare=") {
            cli.compare_dir = Some(PathBuf::from(d));
        } else if a == "--write-baselines" {
            cli.write_dir = Some(PathBuf::from(DEFAULT_BASELINE_DIR));
        } else if let Some(d) = a.strip_prefix("--write-baselines=") {
            cli.write_dir = Some(PathBuf::from(d));
        } else if a == "--archive" {
            cli.archive_dir = Some(PathBuf::from("bench-archive"));
        } else if let Some(d) = a.strip_prefix("--archive=") {
            cli.archive_dir = Some(PathBuf::from(d));
        } else if !a.starts_with("--") {
            cli.explicit.push(a.clone());
        }
        i += 1;
    }
    cli
}

/// `cargo bench` invokes benches with the package root as working
/// directory; the committed baselines live at the *workspace* root.
/// Relative paths that don't resolve from the working directory are
/// re-anchored at the workspace root, so both `cargo bench -p eoml-bench`
/// and a direct target/release invocation from the workspace root work.
fn resolve_baseline_dir(dir: PathBuf) -> PathBuf {
    if dir.is_relative() && !dir.exists() {
        return PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(&dir);
    }
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_cli(&args);
    let explicit = cli.explicit.clone();
    let want = |name: &str| explicit.is_empty() || explicit.iter().any(|a| a.as_str() == name);
    // The bench identity: the paper-demo seed plus the experiment
    // selection. Two bench runs with equal digests are the same
    // experiment set and must diff clean.
    let selection = if explicit.is_empty() {
        "all".to_string()
    } else {
        explicit.join(",")
    };
    let meta = RunMeta::new(
        "figures-bench",
        &config_digest(&format!("figures-bench selection={selection}")),
        CampaignParams::paper_demo().seed,
    );
    let emit = Emit {
        json_dir: cli.json_dir,
        tables: RefCell::new(Vec::new()),
        obs: cli.archive_dir.as_ref().map(|_| Arc::new(Obs::new())),
        meta,
    };
    println!("eoml — paper figure/table reproduction harness");
    println!("================================================");
    if want("fig3") {
        fig3_download_speed(&emit);
    }
    if want("fig4a") {
        fig4a_strong_scaling_workers(&emit);
    }
    if want("fig4b") {
        fig4b_strong_scaling_nodes(&emit);
    }
    if want("fig5a") {
        fig5a_weak_scaling_workers(&emit);
    }
    if want("fig5b") {
        fig5b_weak_scaling_nodes(&emit);
    }
    if want("table1") {
        table1_throughput(&emit);
    }
    if want("fig6") {
        fig6_timeline(&emit);
    }
    if want("fig7") {
        fig7_latency_breakdown(&emit);
    }
    // `headline` follows fig6/fig7 so the archived span store (when
    // `--archive` attached a hub above) covers the campaign experiments.
    if want("headline") {
        headline_12k_tiles(&emit);
    }

    // Text-only allocator accounting (never baselined — see header docs).
    if eoml_obs::resource::counting_active() {
        let snap = eoml_obs::resource::snapshot();
        println!(
            "\nallocator: {:.1} MB allocated across {} allocations ({:.1} MB in use at exit)",
            snap.allocated_bytes as f64 / 1e6,
            snap.allocation_count,
            snap.in_use_bytes as f64 / 1e6,
        );
    }

    let tables = emit.tables.borrow();
    // Freeze the run as a diffable archive *before* the compare pass, so
    // a failed gate still leaves the artifacts behind for attribution.
    if let Some(dir) = &cli.archive_dir {
        let spans = emit.obs.as_ref().map(|o| o.spans()).unwrap_or_default();
        let snapshot = emit
            .obs
            .as_ref()
            .map(|o| o.metrics().snapshot())
            .unwrap_or_default();
        match RunArchive::record(dir, &emit.meta, &spans, &snapshot, &tables, &[]) {
            Ok(archive) => println!(
                "\narchived run under {} ({} spans, {} tables)",
                archive.dir.display(),
                archive.spans.len(),
                archive.tables.len()
            ),
            Err(e) => {
                eprintln!("failed to record archive under {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(dir) = cli.write_dir {
        let dir = resolve_baseline_dir(dir);
        match BaselineStore::write(&dir, &tables, Tolerance::default()) {
            Ok(paths) => println!(
                "\nwrote {} baseline file(s) under {}",
                paths.len(),
                dir.display()
            ),
            Err(e) => {
                eprintln!("failed to write baselines under {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(dir) = cli.compare_dir {
        let dir = resolve_baseline_dir(dir);
        let store = match BaselineStore::load(&dir) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("failed to load baselines from {}: {e}", dir.display());
                std::process::exit(1);
            }
        };
        let comparison = store.compare_all(&tables);
        println!("\n--- Baseline comparison ({}) ---", dir.display());
        print!("{}", comparison.render_text(0));
        if comparison.regressed() {
            eprintln!(
                "regression gate FAILED: {} table(s) diverged from baseline",
                comparison.failures().len()
            );
            std::process::exit(1);
        }
        println!(
            "regression gate passed: {} table(s) within tolerance",
            tables.len()
        );
    }
}

// ------------------------------------------------------------------ fig 3

struct NetSt {
    net: FlowNetwork<NetSt>,
    report: Option<DownloadReport>,
}

impl HasNetwork for NetSt {
    fn network(&mut self) -> &mut FlowNetwork<NetSt> {
        &mut self.net
    }
}

fn download_batch(seed: u64, n_per_product: usize, workers: usize) -> (DownloadReport, ByteSize) {
    let cat = Catalog::new(seed);
    let date = CivilDate::new(2022, 1, 1).expect("date");
    let batch = cat.batch(Platform::Terra, date, n_per_product);
    let total = eoml_modis::catalog::total_size(&batch);
    let files: Vec<(String, ByteSize)> = batch.into_iter().map(|e| (e.file_name, e.size)).collect();
    let mut net = FlowNetwork::new(seed, FaultPlan::none());
    net.add_endpoint(Endpoint::laads());
    net.add_endpoint(Endpoint::ace_defiant());
    let mut sim = Simulation::new(NetSt { net, report: None });
    DownloadPool::run(
        &mut sim,
        "laads",
        "ace-defiant",
        files,
        workers,
        3,
        |sim, r| sim.state_mut().report = Some(r),
    );
    sim.run();
    (sim.into_state().report.expect("download ran"), total)
}

/// Fig. 3: download speed statistics with 3 vs 6 workers for batch sizes
/// from ~100 MB (1 file per product) to ~30 GB (128 files per product),
/// three iterations each.
fn fig3_download_speed(emit: &Emit) {
    println!("\n--- Fig. 3: download speed vs batch size, 3 vs 6 workers ---");
    let mut table = Table::new(
        "fig3",
        &[
            "files/product",
            "batch",
            "w3_mb_s",
            "w3_std",
            "w6_mb_s",
            "w6_std",
        ],
    );
    for n in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let mut cells = vec![Cell::int(n as i64)];
        let mut batch = ByteSize::ZERO;
        let mut stats = Vec::new();
        for workers in [3usize, 6] {
            let speeds: Vec<f64> = (0..3)
                .map(|iter| {
                    let (report, total) = download_batch(2022 + iter * 1000, n, workers);
                    batch = total;
                    report.aggregate_speed().as_mb_per_sec()
                })
                .collect();
            stats.push(Summary::from_samples(speeds));
        }
        cells.push(Cell::str(batch));
        for s in stats {
            cells.push(Cell::num(s.mean(), 2));
            cells.push(Cell::num(s.std_dev(), 2));
        }
        table.row(cells);
    }
    emit.table(&table);
    println!("(paper: ≈3 MB/s mean gain with 6 workers, except for single-file batches)");
}

// ----------------------------------------------------------------- fig 4/5

struct SimSt {
    cl: ClusterModel<SimSt>,
    report: Option<BatchReport>,
}

impl eoml_cluster::exec::HasCluster for SimSt {
    fn cluster(&mut self) -> &mut ClusterModel<SimSt> {
        &mut self.cl
    }
}

/// One simulated preprocessing batch; returns the report.
fn preprocess_batch(seed: u64, nodes: usize, wpn: usize, files: usize) -> BatchReport {
    let mut spec = ClusterSpec::defiant();
    spec.nodes = spec.nodes.max(nodes);
    // Defiant nodes have 64 cores; allow oversubscription for the
    // 128-worker point exactly as the paper does by adding the second node
    // at the call site.
    spec.node.cores = spec.node.cores.max(wpn);
    let mut sim = Simulation::new(SimSt {
        cl: ClusterModel::new(spec, ContentionModel::defiant(), seed),
        report: None,
    });
    run_batch(
        &mut sim,
        (0..nodes).collect(),
        wpn,
        vec![TILES_PER_FILE; files],
        |sim, r| sim.state_mut().report = Some(r),
    );
    sim.run();
    sim.into_state().report.expect("batch ran")
}

/// Mean ± std of completion time and throughput over 5 iterations (the
/// paper iterates each data point five times).
fn sweep_point(nodes: usize, wpn: usize, files: usize) -> (Summary, Summary) {
    let times: Vec<f64> = (0..5)
        .map(|i| preprocess_batch(42 + i * 100, nodes, wpn, files).completion_s())
        .collect();
    let tps: Vec<f64> = times
        .iter()
        .map(|t| files as f64 * TILES_PER_FILE / t)
        .collect();
    (Summary::from_samples(times), Summary::from_samples(tps))
}

/// The worker-sweep placement: ≤64 workers on one node, 128 split over two
/// (the paper: "the increase from 64 to 128 workers requires the use of a
/// second node").
fn worker_placement(w: usize) -> (usize, usize) {
    if w <= 64 {
        (1, w)
    } else {
        (2, w / 2)
    }
}

/// Fig. 4a: strong scaling over workers (128 files fixed).
fn fig4a_strong_scaling_workers(emit: &Emit) {
    println!("\n--- Fig. 4a: strong scaling, completion time vs workers (128 files) ---");
    let mut table = Table::new(
        "fig4a",
        &["workers", "nodes", "completion_s", "std", "paper_tiles_s"],
    );
    let paper = [10.52, 18.10, 25.01, 36.59, 38.74, 37.95, 37.34, 71.01];
    for (i, w) in [1usize, 2, 4, 8, 16, 32, 64, 128].into_iter().enumerate() {
        let (nodes, wpn) = worker_placement(w);
        let (t, _) = sweep_point(nodes, wpn, 128);
        table.row(vec![
            Cell::int(w as i64),
            Cell::int(nodes as i64),
            Cell::num(t.mean(), 1),
            Cell::num(t.std_dev(), 1),
            Cell::num(paper[i], 2),
        ]);
    }
    emit.table(&table);
}

/// Fig. 4b: strong scaling over nodes (80 files, 8 workers/node).
fn fig4b_strong_scaling_nodes(emit: &Emit) {
    println!("\n--- Fig. 4b: strong scaling, completion time vs nodes (80 files, 8 w/node) ---");
    let mut table = Table::new("fig4b", &["nodes", "completion_s", "std", "paper_tiles_s"]);
    let paper = [
        36.05, 73.25, 98.73, 135.42, 177.69, 192.32, 196.70, 216.80, 264.13, 267.44,
    ];
    for n in 1..=10usize {
        let (t, _) = sweep_point(n, 8, 80);
        table.row(vec![
            Cell::int(n as i64),
            Cell::num(t.mean(), 1),
            Cell::num(t.std_dev(), 1),
            Cell::num(paper[n - 1], 2),
        ]);
    }
    emit.table(&table);
}

/// Fig. 5a: weak scaling over workers (2 files per worker).
fn fig5a_weak_scaling_workers(emit: &Emit) {
    println!("\n--- Fig. 5a: weak scaling, completion time vs workers (2 files/worker) ---");
    let mut table = Table::new(
        "fig5a",
        &["workers", "nodes", "files", "completion_s", "std"],
    );
    for w in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let (nodes, wpn) = worker_placement(w);
        let files = 2 * w;
        let (t, _) = sweep_point(nodes, wpn, files);
        table.row(vec![
            Cell::int(w as i64),
            Cell::int(nodes as i64),
            Cell::int(files as i64),
            Cell::num(t.mean(), 1),
            Cell::num(t.std_dev(), 1),
        ]);
    }
    emit.table(&table);
    println!("(completion grows on one node past ~8 workers — on-node contention;");
    println!(" the paper sees the same degradation in Fig. 5a)");
}

/// Fig. 5b: weak scaling over nodes (8 workers/node, 2 files/worker).
fn fig5b_weak_scaling_nodes(emit: &Emit) {
    println!(
        "\n--- Fig. 5b: weak scaling, completion time vs nodes (8 w/node, 2 files/worker) ---"
    );
    let mut table = Table::new("fig5b", &["nodes", "files", "completion_s", "std"]);
    for n in 1..=10usize {
        let files = 2 * 8 * n;
        let (t, _) = sweep_point(n, 8, files);
        table.row(vec![
            Cell::int(n as i64),
            Cell::int(files as i64),
            Cell::num(t.mean(), 1),
            Cell::num(t.std_dev(), 1),
        ]);
    }
    emit.table(&table);
    println!("(near-flat completion time = near-perfect weak scaling across nodes)");
}

// ----------------------------------------------------------------- table 1

/// Table I: throughput (tiles/s) for all four scaling sweeps.
fn table1_throughput(emit: &Emit) {
    println!("\n--- Table I: throughput (tiles/s), measured vs paper ---");
    let workers = [1usize, 2, 4, 8, 16, 32, 64, 128];

    println!("Strong scaling, worker sweep (128 files)");
    let paper_w = [10.52, 18.10, 25.01, 36.59, 38.74, 37.95, 37.34, 71.01];
    let mut table = Table::new("table1_strong_workers", &["workers", "tiles_s", "paper"]);
    for (i, &w) in workers.iter().enumerate() {
        let (nodes, wpn) = worker_placement(w);
        let (_, tp) = sweep_point(nodes, wpn, 128);
        table.row(vec![
            Cell::int(w as i64),
            Cell::num(tp.mean(), 2),
            Cell::num(paper_w[i], 2),
        ]);
    }
    emit.table(&table);

    println!("Strong scaling, node sweep (80 files, 8 w/node)");
    let paper_n = [
        36.05, 73.25, 98.73, 135.42, 177.69, 192.32, 196.70, 216.80, 264.13, 267.44,
    ];
    let mut table = Table::new("table1_strong_nodes", &["nodes", "tiles_s", "paper"]);
    for n in 1..=10usize {
        let (_, tp) = sweep_point(n, 8, 80);
        table.row(vec![
            Cell::int(n as i64),
            Cell::num(tp.mean(), 2),
            Cell::num(paper_n[n - 1], 2),
        ]);
    }
    emit.table(&table);

    println!("Weak scaling, worker sweep (2 files/worker)");
    let paper_w = [21.32, 25.87, 27.23, 27.48, 32.73, 31.09, 35.36, 67.69];
    let mut table = Table::new("table1_weak_workers", &["workers", "tiles_s", "paper"]);
    for (i, &w) in workers.iter().enumerate() {
        let (nodes, wpn) = worker_placement(w);
        let (_, tp) = sweep_point(nodes, wpn, 2 * w);
        table.row(vec![
            Cell::int(w as i64),
            Cell::num(tp.mean(), 2),
            Cell::num(paper_w[i], 2),
        ]);
    }
    emit.table(&table);

    println!("Weak scaling, node sweep (8 w/node, 2 files/worker)");
    let paper_n = [
        32.82, 69.34, 100.36, 126.62, 165.12, 175.61, 196.81, 188.88, 197.26, 271.68,
    ];
    let mut table = Table::new("table1_weak_nodes", &["nodes", "tiles_s", "paper"]);
    for n in 1..=10usize {
        let (_, tp) = sweep_point(n, 8, 16 * n);
        table.row(vec![
            Cell::int(n as i64),
            Cell::num(tp.mean(), 2),
            Cell::num(paper_n[n - 1], 2),
        ]);
    }
    emit.table(&table);
}

// ------------------------------------------------------------------ fig 6

/// Fig. 6: the automation timeline — active workers per stage over the
/// campaign (3 download, 32 preprocess, 1 inference workers).
fn fig6_timeline(emit: &Emit) {
    println!("\n--- Fig. 6: automation timeline (3 download / 32 preprocess / 1 inference) ---");
    let report = run_campaign(CampaignParams {
        files_per_day: 32,
        nodes: 4,
        workers_per_node: 8,
        obs: emit.obs.clone(),
        ..CampaignParams::paper_demo()
    });
    let t_end = SimTime::from_secs_f64(report.makespan_s);
    const SAMPLES: usize = 24;
    let dl = report
        .telemetry
        .sample_activity("download", SimTime::ZERO, t_end, SAMPLES);
    let pp = report
        .telemetry
        .sample_activity("preprocess", SimTime::ZERO, t_end, SAMPLES);
    let inf = report
        .telemetry
        .sample_activity("inference", SimTime::ZERO, t_end, SAMPLES);
    let mut table = Table::new("fig6", &["t_s", "download", "preprocess", "inference"]);
    for i in 0..SAMPLES {
        table.row(vec![
            Cell::num(dl[i].0, 1),
            Cell::int(dl[i].1 as i64),
            Cell::int(pp[i].1 as i64),
            Cell::int(inf[i].1 as i64),
        ]);
    }
    emit.table(&table);
    println!(
        "peaks: download {}, preprocess {}, inference {} (paper: 3 / 32 / 1)",
        report.telemetry.peak("download"),
        report.telemetry.peak("preprocess"),
        report.telemetry.peak("inference"),
    );
    println!(
        "inference overlaps preprocessing: {} (paper: yes)",
        report.telemetry.stages_overlap("preprocess", "inference")
    );
}

// ------------------------------------------------------------------ fig 7

/// Fig. 7: the workflow latency breakdown.
fn fig7_latency_breakdown(emit: &Emit) {
    println!("\n--- Fig. 7: workflow latency breakdown ---");
    let report = run_campaign(CampaignParams {
        files_per_day: 32,
        nodes: 4,
        workers_per_node: 8,
        obs: emit.obs.clone(),
        ..CampaignParams::paper_demo()
    });
    let tel = &report.telemetry;
    let preprocess_latency = tel.total_seconds("preprocess", "slurm_alloc")
        + tel.total_seconds("preprocess", "parsl_start")
        + tel.total_seconds("preprocess", "total");
    let mut table = Table::new("fig7", &["component", "seconds", "paper_s"]);
    table.row(vec![
        Cell::str("download_launch"),
        Cell::num(tel.total_seconds("download", "launch"), 2),
        Cell::num(5.63, 2),
    ]);
    table.row(vec![
        Cell::str("preprocess_total"),
        Cell::num(preprocess_latency, 2),
        Cell::num(32.80, 2),
    ]);
    table.row(vec![
        Cell::str("  slurm_alloc"),
        Cell::num(tel.total_seconds("preprocess", "slurm_alloc"), 2),
        Cell::str(""),
    ]);
    table.row(vec![
        Cell::str("  parsl_start"),
        Cell::num(tel.total_seconds("preprocess", "parsl_start"), 2),
        Cell::str(""),
    ]);
    table.row(vec![
        Cell::str("  tile_creation"),
        Cell::num(tel.total_seconds("preprocess", "total"), 2),
        Cell::str(""),
    ]);
    table.row(vec![
        Cell::str("flow_action_mean"),
        Cell::num(tel.mean_seconds("inference", "flow_action"), 3),
        Cell::num(0.050, 3),
    ]);
    table.row(vec![
        Cell::str("shipment_transfer"),
        Cell::num(tel.total_seconds("shipment", "transfer"), 2),
        Cell::str(""),
    ]);
    emit.table(&table);
    println!("(download launch = Globus Compute start + LAADS connect + file list;");
    println!(" preprocess = Parsl start + Slurm allocation + tile creation)");
}

// --------------------------------------------------------------- headline

/// The abstract's headline: 12,000 tiles in 44 s using 80 workers across
/// 10 nodes.
fn headline_12k_tiles(emit: &Emit) {
    println!("\n--- Headline: 12,000 tiles, 80 workers across 10 nodes ---");
    let times: Vec<f64> = (0..5)
        .map(|i| preprocess_batch(7 + i * 31, 10, 8, 80).completion_s())
        .collect();
    let s = Summary::from_samples(times);
    let mut table = Table::new("headline", &["metric", "measured", "paper"]);
    table.row(vec![
        Cell::str("completion_s"),
        Cell::num(s.mean(), 1),
        Cell::num(44.0, 1),
    ]);
    table.row(vec![
        Cell::str("completion_std"),
        Cell::num(s.std_dev(), 1),
        Cell::str(""),
    ]);
    table.row(vec![
        Cell::str("tiles_per_s"),
        Cell::num(12_000.0 / s.mean(), 1),
        Cell::num(272.7, 1),
    ]);
    emit.table(&table);
}

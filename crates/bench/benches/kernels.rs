//! Criterion microbenchmarks of the computational kernels, plus the
//! ablation benches DESIGN.md calls out:
//!
//! * tile extraction: scalar-equivalent (1 thread) vs rayon data-parallel;
//! * contention model on vs off (why worker scaling saturates);
//! * transfer parallel streams 1/2/4/8;
//! * NetCDF encode/decode and label append;
//! * RICC encode vs full reconstruct round-trip;
//! * agglomerative clustering: naive O(n³) vs nearest-neighbor chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eoml_cluster::contention::ContentionModel;
use eoml_cluster::exec::ClusterModel;
use eoml_cluster::spec::ClusterSpec;
use eoml_executor::simexec::run_batch;
use eoml_modis::granule::GranuleId;
use eoml_modis::product::Platform;
use eoml_modis::synth::{SwathDims, SwathSynthesizer};
use eoml_preprocess::tiles::{extract_tiles, TileCriteria};
use eoml_preprocess::writer::{append_labels, write_tiles_nc};
use eoml_ricc::aicca::synthetic_texture_sample;
use eoml_ricc::autoencoder::{AeConfig, ConvAutoencoder};
use eoml_ricc::cluster::agglomerate;
use eoml_simtime::Simulation;
use eoml_transfer::endpoint::Endpoint;
use eoml_transfer::faults::FaultPlan;
use eoml_transfer::flownet::{FlowNetwork, HasNetwork};
use eoml_transfer::service::{submit_transfer, TransferOptions};
use eoml_util::rng::{Rng64, Xoshiro256};
use eoml_util::timebase::CivilDate;
use eoml_util::units::ByteSize;
use std::hint::black_box;

fn day_swath() -> eoml_modis::synth::Swath {
    let sy = SwathSynthesizer::new(2022, SwathDims::small());
    let date = CivilDate::new(2022, 1, 1).expect("date");
    (0..288)
        .map(|slot| sy.synthesize(GranuleId::new(Platform::Terra, date, slot)))
        .find(|s| s.day)
        .expect("day granule")
}

fn bench_tile_extraction(c: &mut Criterion) {
    let swath = day_swath();
    let crit = TileCriteria {
        tile_size: 32,
        min_ocean_fraction: 0.0,
        min_cloud_fraction: 0.0,
    };
    let mut g = c.benchmark_group("tile_extraction");
    g.sample_size(10);
    for threads in [1usize, 2] {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .unwrap();
            b.iter(|| pool.install(|| black_box(extract_tiles(&swath, &crit)).len()));
        });
    }
    g.finish();
}

fn bench_swath_synthesis(c: &mut Criterion) {
    let sy = SwathSynthesizer::new(2022, SwathDims::small());
    let date = CivilDate::new(2022, 1, 1).expect("date");
    let mut g = c.benchmark_group("swath_synthesis");
    g.sample_size(10);
    g.bench_function("small_256x256", |b| {
        let mut slot = 0u16;
        b.iter(|| {
            slot = (slot + 1) % 288;
            black_box(sy.synthesize(GranuleId::new(Platform::Terra, date, slot)))
        });
    });
    g.finish();
}

fn bench_contention_ablation(c: &mut Criterion) {
    // Completion time of the same batch under the calibrated contention
    // model vs an ideal linear machine — the ablation showing *why* worker
    // scaling saturates. (Criterion measures the simulation cost; the
    // interesting output is printed once.)
    struct St {
        cl: ClusterModel<St>,
        done: Option<f64>,
    }
    impl eoml_cluster::exec::HasCluster for St {
        fn cluster(&mut self) -> &mut ClusterModel<St> {
            &mut self.cl
        }
    }
    fn completion(model: ContentionModel) -> f64 {
        let mut spec = ClusterSpec::defiant();
        spec.nodes = 1;
        let mut sim = Simulation::new(St {
            cl: ClusterModel::new(spec, model, 1),
            done: None,
        });
        run_batch(&mut sim, vec![0], 32, vec![150.0; 64], |sim, r| {
            sim.state_mut().done = Some(r.completion_s())
        });
        sim.run();
        sim.into_state().done.expect("ran")
    }
    let real = completion(ContentionModel {
        work_cv: 0.0,
        ..ContentionModel::defiant()
    });
    let ideal = completion(ContentionModel::ideal(10.52));
    println!(
        "[ablation] 64 files / 32 workers / 1 node: contention {real:.1}s vs ideal {ideal:.1}s"
    );
    let mut g = c.benchmark_group("contention_ablation");
    g.sample_size(10);
    g.bench_function("defiant_model", |b| {
        b.iter(|| {
            black_box(completion(ContentionModel {
                work_cv: 0.0,
                ..ContentionModel::defiant()
            }))
        })
    });
    g.bench_function("ideal_linear", |b| {
        b.iter(|| black_box(completion(ContentionModel::ideal(10.52))))
    });
    g.finish();
}

fn bench_transfer_streams(c: &mut Criterion) {
    struct St {
        net: FlowNetwork<St>,
        done: Option<f64>,
    }
    impl HasNetwork for St {
        fn network(&mut self) -> &mut FlowNetwork<St> {
            &mut self.net
        }
    }
    fn ship(streams: usize) -> f64 {
        let mut net = FlowNetwork::new(5, FaultPlan::flaky_wan());
        net.add_endpoint(Endpoint::ace_defiant());
        net.add_endpoint(Endpoint::frontier_orion());
        let mut sim = Simulation::new(St { net, done: None });
        let files: Vec<(String, ByteSize)> = (0..24)
            .map(|i| (format!("tiles-{i}.nc"), ByteSize::mb(40)))
            .collect();
        submit_transfer(
            &mut sim,
            "ace-defiant",
            "frontier-orion",
            files,
            TransferOptions {
                parallel_streams: streams,
                retry_limit: 10,
                ..TransferOptions::default()
            },
            |sim, r| sim.state_mut().done = Some(r.duration_s()),
        );
        sim.run();
        sim.into_state().done.expect("ran")
    }
    for s in [1usize, 2, 4, 8] {
        println!(
            "[ablation] shipment with {s} parallel streams: {:.2}s (virtual)",
            ship(s)
        );
    }
    let mut g = c.benchmark_group("transfer_streams");
    g.sample_size(10);
    for s in [1usize, 8] {
        g.bench_with_input(BenchmarkId::new("streams", s), &s, |b, &s| {
            b.iter(|| black_box(ship(s)))
        });
    }
    g.finish();
}

fn bench_netcdf(c: &mut Criterion) {
    let swath = day_swath();
    let crit = TileCriteria {
        tile_size: 32,
        min_ocean_fraction: 0.0,
        min_cloud_fraction: 0.0,
    };
    let tiles = extract_tiles(&swath, &crit).tiles;
    let nc = write_tiles_nc(&tiles).expect("netcdf");
    let bytes = nc.encode().expect("encode");
    let mut g = c.benchmark_group("netcdf");
    g.sample_size(20);
    g.bench_function("write_tiles", |b| {
        b.iter(|| black_box(write_tiles_nc(&tiles).unwrap().encode().unwrap()).len())
    });
    g.bench_function("read_tiles", |b| {
        b.iter(|| black_box(eoml_ncdf::NcFile::decode(&bytes).unwrap()).numrecs)
    });
    g.bench_function("append_labels", |b| {
        let labels: Vec<i32> = (0..tiles.len() as i32).collect();
        b.iter(|| {
            let mut f = nc.clone();
            append_labels(&mut f, &labels).unwrap();
            black_box(f.encode().unwrap()).len()
        })
    });
    g.finish();
}

fn bench_ricc(c: &mut Criterion) {
    let cfg = AeConfig {
        in_ch: 6,
        c1: 8,
        c2: 16,
        latent: 24,
        input: 32,
        lr: 1e-3,
        lambda: 0.1,
    };
    let model = ConvAutoencoder::new(cfg, 7);
    let tiles = synthetic_texture_sample(cfg, 8, 3);
    let mut g = c.benchmark_group("ricc");
    g.sample_size(10);
    g.bench_function("encode_32px", |b| {
        b.iter(|| black_box(model.encode(&tiles[0])).len())
    });
    g.bench_function("reconstruct_32px", |b| {
        b.iter(|| black_box(model.reconstruct(&tiles[0])).len())
    });
    g.finish();
}

/// Naive O(n³) Ward agglomeration (recompute the full pairwise minimum at
/// every merge) — the ablation baseline for the NN-chain implementation.
#[allow(clippy::needless_range_loop, clippy::explicit_counter_loop)]
fn naive_ward(points: &[Vec<f32>], k: usize) -> Vec<usize> {
    let n = points.len();
    let mut members: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let centroid = |m: &[usize]| -> Vec<f64> {
        let dim = points[0].len();
        let mut c = vec![0.0f64; dim];
        for &i in m {
            for (d, v) in c.iter_mut().zip(&points[i]) {
                *d += *v as f64;
            }
        }
        for d in c.iter_mut() {
            *d /= m.len() as f64;
        }
        c
    };
    let mut clusters = n;
    while clusters > k {
        let mut best = (0usize, 0usize, f64::INFINITY);
        for i in 0..n {
            let Some(mi) = &members[i] else { continue };
            let ci = centroid(mi);
            for j in i + 1..n {
                let Some(mj) = &members[j] else { continue };
                let cj = centroid(mj);
                let d2: f64 = ci.iter().zip(&cj).map(|(a, b)| (a - b) * (a - b)).sum();
                let ward = (mi.len() * mj.len()) as f64 / (mi.len() + mj.len()) as f64 * d2;
                if ward < best.2 {
                    best = (i, j, ward);
                }
            }
        }
        let mj = members[best.1].take().expect("alive");
        members[best.0].as_mut().expect("alive").extend(mj);
        clusters -= 1;
    }
    let mut labels = vec![0usize; n];
    let mut next = 0;
    for m in members.iter().flatten() {
        for &i in m {
            labels[i] = next;
        }
        next += 1;
    }
    labels
}

fn bench_clustering(c: &mut Criterion) {
    let mut rng = Xoshiro256::seed_from(11);
    let points: Vec<Vec<f32>> = (0..120)
        .map(|_| (0..16).map(|_| rng.normal(0.0, 1.0) as f32).collect())
        .collect();
    let mut g = c.benchmark_group("clustering");
    g.sample_size(10);
    g.bench_function("nn_chain_120pts", |b| {
        b.iter(|| black_box(agglomerate(&points)).merges.len())
    });
    g.bench_function("naive_ward_120pts", |b| {
        b.iter(|| black_box(naive_ward(&points, 42)).len())
    });
    g.finish();
}

fn bench_crc_and_container(c: &mut Criterion) {
    let data = vec![0xABu8; 1 << 20];
    let mut g = c.benchmark_group("integrity");
    g.sample_size(20);
    g.bench_function("crc32_1MiB", |b| {
        b.iter(|| black_box(eoml_modis::container::crc32(&data)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tile_extraction,
    bench_swath_synthesis,
    bench_contention_ablation,
    bench_transfer_streams,
    bench_netcdf,
    bench_ricc,
    bench_clustering,
    bench_crc_and_container,
);
criterion_main!(benches);

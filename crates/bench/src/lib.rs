//! `eoml-bench` — the benchmark harness.
//!
//! Two bench targets:
//!
//! * `figures` (plain harness) — regenerates every table and figure of the
//!   paper's evaluation section; see `benches/figures.rs`;
//! * `kernels` (criterion) — microbenchmarks of the computational kernels
//!   plus ablations of the design choices called out in DESIGN.md.

/// Tiles per full 2030×1354 MODIS granule (15 × 10 windows of 128²).
pub const TILES_PER_FILE: f64 = 150.0;

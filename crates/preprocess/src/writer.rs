//! Tiles ↔ NetCDF.
//!
//! Each preprocessed granule becomes one NetCDF file with a `tile` record
//! dimension; stage 4 later *appends* an `aicca_label` variable to the same
//! file — the exact interchange pattern of the paper's pipeline.

use crate::tiles::Tile;
use eoml_modis::granule::GranuleId;
use eoml_ncdf::{NcFile, NcType, NcValues};

/// Errors from tile NetCDF encoding/decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum TileNcError {
    /// Tile list was empty (nothing to write).
    NoTiles,
    /// Tiles disagree in shape/bands/granule.
    InconsistentTiles,
    /// Underlying NetCDF error.
    Nc(eoml_ncdf::NcError),
    /// File lacks a required variable/attribute or has a bad shape.
    Malformed(String),
    /// Label count does not match tile count, or labels already present.
    BadLabels(String),
}

impl std::fmt::Display for TileNcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TileNcError::NoTiles => write!(f, "no tiles to write"),
            TileNcError::InconsistentTiles => write!(f, "tiles have inconsistent shapes"),
            TileNcError::Nc(e) => write!(f, "netcdf error: {e}"),
            TileNcError::Malformed(m) => write!(f, "malformed tile file: {m}"),
            TileNcError::BadLabels(m) => write!(f, "bad labels: {m}"),
        }
    }
}

impl std::error::Error for TileNcError {}

impl From<eoml_ncdf::NcError> for TileNcError {
    fn from(e: eoml_ncdf::NcError) -> Self {
        TileNcError::Nc(e)
    }
}

/// Build the NetCDF dataset for one granule's tiles.
pub fn write_tiles_nc(tiles: &[Tile]) -> Result<NcFile, TileNcError> {
    let first = tiles.first().ok_or(TileNcError::NoTiles)?;
    let size = first.size;
    let bands = &first.bands;
    if tiles
        .iter()
        .any(|t| t.size != size || &t.bands != bands || t.granule != first.granule)
    {
        return Err(TileNcError::InconsistentTiles);
    }

    let mut f = NcFile::new();
    let tile_dim = f.add_record_dim("tile")?;
    let band_dim = f.add_dim("band", bands.len());
    let y_dim = f.add_dim("y", size);
    let x_dim = f.add_dim("x", size);

    f.add_global_attr("granule", NcValues::text(&first.granule.to_string()));
    f.add_global_attr(
        "platform",
        NcValues::text(&first.granule.platform.to_string()),
    );
    f.add_global_attr("date", NcValues::text(&first.granule.date.to_string()));
    f.add_global_attr("slot", NcValues::Int(vec![first.granule.slot as i32]));
    f.add_global_attr(
        "bands",
        NcValues::Int(bands.iter().map(|&b| b as i32).collect()),
    );
    f.add_global_attr("source", NcValues::text("eoml-preprocess"));

    let rad = f.add_var(
        "radiance",
        NcType::Float,
        vec![tile_dim, band_dim, y_dim, x_dim],
    )?;
    let lat = f.add_var("center_lat", NcType::Float, vec![tile_dim])?;
    let lon = f.add_var("center_lon", NcType::Float, vec![tile_dim])?;
    let ocean = f.add_var("ocean_fraction", NcType::Float, vec![tile_dim])?;
    let cloud = f.add_var("cloud_fraction", NcType::Float, vec![tile_dim])?;
    let cot = f.add_var("mean_cot", NcType::Float, vec![tile_dim])?;
    let ctp = f.add_var("mean_ctp", NcType::Float, vec![tile_dim])?;
    let cer = f.add_var("mean_cer", NcType::Float, vec![tile_dim])?;
    let row = f.add_var("tile_row", NcType::Int, vec![tile_dim])?;
    let col = f.add_var("tile_col", NcType::Int, vec![tile_dim])?;
    f.add_var_attr(
        rad,
        "long_name",
        NcValues::text("standardized radiance tile"),
    )?;
    f.add_var_attr(ctp, "units", NcValues::text("hPa"))?;
    f.add_var_attr(cer, "units", NcValues::text("micron"))?;

    for t in tiles {
        f.append_record(vec![
            (rad, NcValues::Float(t.data.clone())),
            (lat, NcValues::Float(vec![t.center_lat])),
            (lon, NcValues::Float(vec![t.center_lon])),
            (ocean, NcValues::Float(vec![t.ocean_fraction])),
            (cloud, NcValues::Float(vec![t.cloud_fraction])),
            (cot, NcValues::Float(vec![t.mean_cot])),
            (ctp, NcValues::Float(vec![t.mean_ctp])),
            (cer, NcValues::Float(vec![t.mean_cer])),
            (row, NcValues::Int(vec![t.row as i32])),
            (col, NcValues::Int(vec![t.col as i32])),
        ])?;
    }
    Ok(f)
}

/// Append per-tile class labels as the `aicca_label` variable — stage 4's
/// write-back. Fails if labels are already present or the count is wrong.
pub fn append_labels(f: &mut NcFile, labels: &[i32]) -> Result<(), TileNcError> {
    if f.var_by_name("aicca_label").is_some() {
        return Err(TileNcError::BadLabels("labels already present".into()));
    }
    if labels.len() != f.numrecs {
        return Err(TileNcError::BadLabels(format!(
            "{} labels for {} tiles",
            labels.len(),
            f.numrecs
        )));
    }
    let tile_dim = f
        .record_dim()
        .ok_or_else(|| TileNcError::Malformed("no tile dimension".into()))?;
    let v = f.add_var("aicca_label", NcType::Int, vec![tile_dim])?;
    f.add_var_attr(v, "long_name", NcValues::text("AICCA cloud class (0-41)"))?;
    // The variable is a record variable; backfill its data directly so the
    // file stays consistent with numrecs.
    f.vars[v.0].data = NcValues::Int(labels.to_vec());
    Ok(())
}

/// Read tiles (and labels, if present) back from a tile NetCDF dataset.
pub fn read_tiles_nc(f: &NcFile) -> Result<(Vec<Tile>, Option<Vec<i32>>), TileNcError> {
    let bad = |m: &str| TileNcError::Malformed(m.to_string());
    let granule_str = f
        .global_attr("granule")
        .and_then(|a| a.values.as_text())
        .ok_or_else(|| bad("missing granule attr"))?;
    // "MOD.A2022001.0005" — reconstruct the id from its parts.
    let granule = parse_granule_attr(granule_str).ok_or_else(|| bad("bad granule attr"))?;
    let bands: Vec<u8> = f
        .global_attr("bands")
        .and_then(|a| a.values.as_i32())
        .ok_or_else(|| bad("missing bands attr"))?
        .iter()
        .map(|&b| b as u8)
        .collect();
    let size = f
        .dim_by_name("y")
        .ok_or_else(|| bad("missing y dim"))?
        .1
        .len;
    let n = f.numrecs;
    let get_f32 = |name: &str| -> Result<&[f32], TileNcError> {
        f.var_by_name(name)
            .and_then(|v| v.data.as_f32())
            .ok_or_else(|| bad(&format!("missing {name}")))
    };
    let get_i32 = |name: &str| -> Result<&[i32], TileNcError> {
        f.var_by_name(name)
            .and_then(|v| v.data.as_i32())
            .ok_or_else(|| bad(&format!("missing {name}")))
    };
    let rad = get_f32("radiance")?;
    let lat = get_f32("center_lat")?;
    let lon = get_f32("center_lon")?;
    let ocean = get_f32("ocean_fraction")?;
    let cloud = get_f32("cloud_fraction")?;
    let cot = get_f32("mean_cot")?;
    let ctp = get_f32("mean_ctp")?;
    let cer = get_f32("mean_cer")?;
    let row = get_i32("tile_row")?;
    let col = get_i32("tile_col")?;
    let slab = bands.len() * size * size;
    if rad.len() != n * slab {
        return Err(bad("radiance shape mismatch"));
    }
    let mut tiles = Vec::with_capacity(n);
    for i in 0..n {
        tiles.push(Tile {
            granule,
            row: row[i] as usize,
            col: col[i] as usize,
            data: rad[i * slab..(i + 1) * slab].to_vec(),
            bands: bands.clone(),
            size,
            center_lat: lat[i],
            center_lon: lon[i],
            ocean_fraction: ocean[i],
            cloud_fraction: cloud[i],
            mean_cot: cot[i],
            mean_ctp: ctp[i],
            mean_cer: cer[i],
        });
    }
    let labels = f
        .var_by_name("aicca_label")
        .and_then(|v| v.data.as_i32())
        .map(|l| l.to_vec());
    Ok((tiles, labels))
}

fn parse_granule_attr(s: &str) -> Option<GranuleId> {
    // Format from GranuleId::Display: "{MOD|MYD}.A{yyyy}{ddd}.{hhmm}"
    use eoml_modis::product::Platform;
    use eoml_util::timebase::CivilDate;
    let mut parts = s.split('.');
    let platform = match parts.next()? {
        "MOD" => Platform::Terra,
        "MYD" => Platform::Aqua,
        _ => return None,
    };
    let adate = parts.next()?;
    if !adate.starts_with('A') || adate.len() != 8 {
        return None;
    }
    let year: i32 = adate[1..5].parse().ok()?;
    let doy: u16 = adate[5..8].parse().ok()?;
    let date = CivilDate::from_ordinal(year, doy)?;
    let hhmm = parts.next()?;
    let hh: u16 = hhmm.get(..2)?.parse().ok()?;
    let mm: u16 = hhmm.get(2..4)?.parse().ok()?;
    if !mm.is_multiple_of(5) || hh >= 24 {
        return None;
    }
    Some(GranuleId::new(platform, date, hh * 12 + mm / 5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiles::{extract_tiles, TileCriteria};
    use eoml_modis::product::Platform;
    use eoml_modis::synth::{SwathDims, SwathSynthesizer};
    use eoml_util::timebase::CivilDate;

    fn some_tiles() -> Vec<Tile> {
        let sy = SwathSynthesizer::new(2022, SwathDims::small());
        let crit = TileCriteria {
            min_ocean_fraction: 0.0,
            min_cloud_fraction: 0.0,
            ..TileCriteria::default()
        };
        for slot in 0..288 {
            let s = sy.synthesize(GranuleId::new(
                Platform::Terra,
                CivilDate::new(2022, 1, 1).unwrap(),
                slot,
            ));
            let set = extract_tiles(&s, &crit);
            if set.len() >= 2 {
                return set.tiles;
            }
        }
        panic!("no tiles found");
    }

    #[test]
    fn tiles_round_trip_through_netcdf_bytes() {
        let tiles = some_tiles();
        let f = write_tiles_nc(&tiles).unwrap();
        let bytes = f.encode().unwrap();
        let back = NcFile::decode(&bytes).unwrap();
        let (tiles2, labels) = read_tiles_nc(&back).unwrap();
        assert_eq!(tiles2, tiles);
        assert!(labels.is_none());
    }

    #[test]
    fn append_labels_round_trips() {
        let tiles = some_tiles();
        let mut f = write_tiles_nc(&tiles).unwrap();
        let labels: Vec<i32> = (0..tiles.len() as i32).map(|i| i % 42).collect();
        append_labels(&mut f, &labels).unwrap();
        let back = NcFile::decode(&f.encode().unwrap()).unwrap();
        let (tiles2, labels2) = read_tiles_nc(&back).unwrap();
        assert_eq!(tiles2.len(), tiles.len());
        assert_eq!(labels2, Some(labels));
    }

    #[test]
    fn append_labels_validates() {
        let tiles = some_tiles();
        let mut f = write_tiles_nc(&tiles).unwrap();
        assert!(matches!(
            append_labels(&mut f, &[1]),
            Err(TileNcError::BadLabels(_))
        ));
        let labels = vec![0i32; tiles.len()];
        append_labels(&mut f, &labels).unwrap();
        assert!(matches!(
            append_labels(&mut f, &labels),
            Err(TileNcError::BadLabels(_))
        ));
    }

    #[test]
    fn empty_tiles_rejected() {
        assert_eq!(write_tiles_nc(&[]), Err(TileNcError::NoTiles));
    }

    #[test]
    fn inconsistent_tiles_rejected() {
        let mut tiles = some_tiles();
        tiles[1].size = 64;
        tiles[1].data.truncate(6 * 64 * 64);
        assert_eq!(write_tiles_nc(&tiles), Err(TileNcError::InconsistentTiles));
    }

    #[test]
    fn file_has_expected_structure() {
        let tiles = some_tiles();
        let f = write_tiles_nc(&tiles).unwrap();
        assert_eq!(f.numrecs, tiles.len());
        assert!(f.var_by_name("radiance").is_some());
        assert!(f.var_by_name("cloud_fraction").is_some());
        assert_eq!(f.dim_by_name("band").unwrap().1.len, 6);
        assert_eq!(f.dim_by_name("x").unwrap().1.len, 128);
        assert_eq!(
            f.global_attr("platform").unwrap().values.as_text(),
            Some("Terra")
        );
    }

    #[test]
    fn granule_attr_parses_back() {
        let g = GranuleId::new(Platform::Aqua, CivilDate::new(2022, 3, 5).unwrap(), 130);
        assert_eq!(parse_granule_attr(&g.to_string()), Some(g));
        assert_eq!(parse_granule_attr("garbage"), None);
        assert_eq!(parse_granule_attr("MOD.A2022999.0000"), None);
    }
}

//! `eoml-preprocess` — stage 2 of the workflow: swath → ocean-cloud tiles.
//!
//! "We package preprocessing into a single script that subdivides each
//! 2030 × 1354 × 36-channel MODIS swath into a set of 128 × 128 × 6-channel
//! 'tiles'. The script is designed to ensure that each tile exclusively
//! contains ocean or cloud pixels." This crate is that script, as a library:
//!
//! * [`tiles`] — tile extraction with the AICCA selection criteria
//!   (ocean-only, ≥ 30 % cloud), per-tile physical summaries from the MOD06
//!   fields, and rayon-parallel extraction;
//! * [`writer`] — tiles to NetCDF (record dimension `tile`) and the
//!   label-append operation stage 4 performs;
//! * [`pipeline`] — the file-level pipeline: read the three `.eogr` product
//!   files, co-register, extract, write `tiles-*.nc` (with the
//!   `.part`-then-rename convention the monitor relies on).

pub mod pipeline;
pub mod tiles;
pub mod writer;

pub use pipeline::{preprocess_granule_files, PipelineError};
pub use tiles::{extract_tiles, Tile, TileCriteria, TileSet};
pub use writer::{append_labels, read_tiles_nc, write_tiles_nc};

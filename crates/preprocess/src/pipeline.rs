//! The file-level preprocessing pipeline: three product files in, one tile
//! NetCDF out.
//!
//! Mirrors the paper's script: read MOD02 + MOD03 + MOD06 for one time
//! step, co-register, extract ocean-cloud tiles, write
//! `tiles-<granule>.nc`. Output is written to a `.part` file and renamed on
//! completion so the stage-3 monitor never sees a partial file (the paper's
//! "HDF read errors from partially reading files" concern, applied to our
//! own outputs).

use crate::tiles::{extract_tiles, TileCriteria, TileSet};
use crate::writer::{write_tiles_nc, TileNcError};
use eoml_modis::container::{Container, ContainerError};
use eoml_modis::files::{swath_from_products, ProductFileError};
use std::path::{Path, PathBuf};

/// Errors from the file-level pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// File system error.
    Io(std::io::Error),
    /// Granule container decode error (corrupt download).
    Container(ContainerError),
    /// Product co-registration error.
    Product(ProductFileError),
    /// Tile NetCDF encoding error.
    TileNc(TileNcError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Io(e) => write!(f, "io error: {e}"),
            PipelineError::Container(e) => write!(f, "container error: {e}"),
            PipelineError::Product(e) => write!(f, "product error: {e}"),
            PipelineError::TileNc(e) => write!(f, "tile netcdf error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Io(e)
    }
}
impl From<ContainerError> for PipelineError {
    fn from(e: ContainerError) -> Self {
        PipelineError::Container(e)
    }
}
impl From<ProductFileError> for PipelineError {
    fn from(e: ProductFileError) -> Self {
        PipelineError::Product(e)
    }
}
impl From<TileNcError> for PipelineError {
    fn from(e: TileNcError) -> Self {
        PipelineError::TileNc(e)
    }
}

/// Outcome of preprocessing one granule.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// Where the tile NetCDF was written (`None` if the granule yielded no
    /// tiles — night granule or nothing met the criteria).
    pub output: Option<PathBuf>,
    /// Extraction statistics.
    pub tiles: TileSet,
}

/// Preprocess one granule from its three product files on disk.
pub fn preprocess_granule_files(
    mod02: &Path,
    mod03: &Path,
    mod06: &Path,
    out_dir: &Path,
    criteria: &TileCriteria,
) -> Result<PipelineOutcome, PipelineError> {
    let c02 = Container::decode(&std::fs::read(mod02)?)?;
    let c03 = Container::decode(&std::fs::read(mod03)?)?;
    let c06 = Container::decode(&std::fs::read(mod06)?)?;
    let swath = swath_from_products(&c02, &c03, &c06)?;
    let set = extract_tiles(&swath, criteria);
    if set.is_empty() {
        return Ok(PipelineOutcome {
            output: None,
            tiles: set,
        });
    }
    let nc = write_tiles_nc(&set.tiles)?;
    std::fs::create_dir_all(out_dir)?;
    let final_path = out_dir.join(format!("tiles-{}.nc", swath.id));
    let part_path = out_dir.join(format!("tiles-{}.nc.part", swath.id));
    std::fs::write(&part_path, nc.encode().map_err(TileNcError::Nc)?)?;
    std::fs::rename(&part_path, &final_path)?;
    Ok(PipelineOutcome {
        output: Some(final_path),
        tiles: set,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_modis::files::{to_mod02, to_mod03, to_mod06};
    use eoml_modis::granule::GranuleId;
    use eoml_modis::product::Platform;
    use eoml_modis::synth::{Swath, SwathDims, SwathSynthesizer};
    use eoml_util::timebase::CivilDate;
    use std::fs;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eoml-pipeline-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn day_swath() -> Swath {
        let sy = SwathSynthesizer::new(2022, SwathDims::small());
        (0..288)
            .map(|slot| {
                sy.synthesize(GranuleId::new(
                    Platform::Terra,
                    CivilDate::new(2022, 1, 1).unwrap(),
                    slot,
                ))
            })
            .find(|s| s.day)
            .expect("day granule")
    }

    fn write_products(dir: &Path, swath: &Swath) -> (PathBuf, PathBuf, PathBuf) {
        let p02 = dir.join("m02.eogr");
        let p03 = dir.join("m03.eogr");
        let p06 = dir.join("m06.eogr");
        fs::write(&p02, to_mod02(swath).encode()).unwrap();
        fs::write(&p03, to_mod03(swath).encode()).unwrap();
        fs::write(&p06, to_mod06(swath).encode()).unwrap();
        (p02, p03, p06)
    }

    #[test]
    fn end_to_end_granule_preprocessing() {
        let dir = tempdir("e2e");
        let swath = day_swath();
        let (p02, p03, p06) = write_products(&dir, &swath);
        let out_dir = dir.join("out");
        let crit = TileCriteria {
            min_ocean_fraction: 0.0,
            min_cloud_fraction: 0.0,
            ..TileCriteria::default()
        };
        let outcome = preprocess_granule_files(&p02, &p03, &p06, &out_dir, &crit).unwrap();
        let out = outcome.output.expect("tiles written");
        assert!(out.exists());
        assert!(out.to_str().unwrap().ends_with(".nc"));
        assert!(!out.with_extension("nc.part").exists(), "no leftover .part");
        // Output parses as NetCDF with the right record count.
        let nc = eoml_ncdf::NcFile::decode(&fs::read(&out).unwrap()).unwrap();
        assert_eq!(nc.numrecs, outcome.tiles.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_product_file_is_reported() {
        let dir = tempdir("corrupt");
        let swath = day_swath();
        let (p02, p03, p06) = write_products(&dir, &swath);
        // Corrupt the MOD03 payload.
        let mut bytes = fs::read(&p03).unwrap();
        let n = bytes.len();
        bytes[n - 100] ^= 0xFF;
        fs::write(&p03, bytes).unwrap();
        let err =
            preprocess_granule_files(&p02, &p03, &p06, &dir.join("out"), &TileCriteria::default())
                .unwrap_err();
        assert!(matches!(err, PipelineError::Container(_)), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = tempdir("missing");
        let swath = day_swath();
        let (p02, _p03, p06) = write_products(&dir, &swath);
        let err = preprocess_granule_files(
            &p02,
            &dir.join("nope.eogr"),
            &p06,
            &dir.join("out"),
            &TileCriteria::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Io(_)), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn granule_with_no_selected_tiles_writes_nothing() {
        let dir = tempdir("empty");
        let swath = day_swath();
        let (p02, p03, p06) = write_products(&dir, &swath);
        // Impossible criteria: >100 % cloud.
        let crit = TileCriteria {
            min_cloud_fraction: 1.01,
            ..TileCriteria::default()
        };
        let outcome = preprocess_granule_files(&p02, &p03, &p06, &dir.join("out"), &crit).unwrap();
        assert!(outcome.output.is_none());
        assert!(!dir.join("out").exists() || fs::read_dir(dir.join("out")).unwrap().count() == 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}

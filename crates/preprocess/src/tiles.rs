//! Tile extraction and selection.

use eoml_modis::granule::GranuleId;
use eoml_modis::synth::{Swath, RADIANCE_FILL};
use rayon::prelude::*;

/// Tile-selection thresholds (paper defaults: ocean-only tiles with at
/// least 30 % cloud pixels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileCriteria {
    /// Square tile edge, pixels.
    pub tile_size: usize,
    /// Minimum ocean-pixel fraction (1.0 = no land pixels allowed).
    pub min_ocean_fraction: f64,
    /// Minimum cloud-pixel fraction.
    pub min_cloud_fraction: f64,
}

impl Default for TileCriteria {
    fn default() -> Self {
        Self {
            tile_size: 128,
            min_ocean_fraction: 1.0,
            min_cloud_fraction: 0.3,
        }
    }
}

/// One selected ocean-cloud tile.
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    /// Source granule.
    pub granule: GranuleId,
    /// Tile row within the swath's tile grid.
    pub row: usize,
    /// Tile column within the swath's tile grid.
    pub col: usize,
    /// Band-major pixel data: `data[b * size² + y * size + x]`,
    /// standardized per band (zero mean, unit variance within the tile).
    pub data: Vec<f32>,
    /// Band numbers, matching the swath.
    pub bands: Vec<u8>,
    /// Tile edge, pixels.
    pub size: usize,
    /// Latitude of the tile center, degrees.
    pub center_lat: f32,
    /// Longitude of the tile center, degrees.
    pub center_lon: f32,
    /// Fraction of ocean pixels.
    pub ocean_fraction: f32,
    /// Fraction of cloudy pixels.
    pub cloud_fraction: f32,
    /// Mean cloud optical thickness over cloudy pixels.
    pub mean_cot: f32,
    /// Mean cloud-top pressure over cloudy pixels, hPa.
    pub mean_ctp: f32,
    /// Mean cloud effective radius over cloudy pixels, µm.
    pub mean_cer: f32,
}

impl Tile {
    /// Pixels per band.
    pub fn pixels(&self) -> usize {
        self.size * self.size
    }

    /// Borrow one band plane.
    pub fn band_plane(&self, b: usize) -> &[f32] {
        let n = self.pixels();
        &self.data[b * n..(b + 1) * n]
    }
}

/// The result of preprocessing one swath.
#[derive(Debug, Clone, Default)]
pub struct TileSet {
    /// Selected tiles.
    pub tiles: Vec<Tile>,
    /// Tile windows considered.
    pub candidates: usize,
    /// Windows rejected for land contamination.
    pub rejected_land: usize,
    /// Windows rejected for insufficient cloud.
    pub rejected_clear: usize,
    /// True when the swath was skipped entirely (night granule without the
    /// reflective bands AICCA needs).
    pub skipped_night: bool,
}

impl TileSet {
    /// Number of selected tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// Whether no tiles were selected.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }
}

/// Extract and select tiles from a swath (rayon-parallel over the tile
/// grid). Night granules yield an empty set flagged `skipped_night`.
pub fn extract_tiles(swath: &Swath, criteria: &TileCriteria) -> TileSet {
    assert!(criteria.tile_size > 0);
    if !swath.day {
        return TileSet {
            skipped_night: true,
            ..TileSet::default()
        };
    }
    let ts = criteria.tile_size;
    let rows = swath.dims.lines / ts;
    let cols = swath.dims.pixels / ts;
    let windows: Vec<(usize, usize)> = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| (r, c)))
        .collect();
    let candidates = windows.len();

    #[derive(Debug)]
    enum Outcome {
        Selected(Box<Tile>),
        Land,
        Clear,
    }

    let outcomes: Vec<Outcome> = windows
        .par_iter()
        .map(|&(row, col)| {
            let stats = window_stats(swath, row, col, ts);
            if stats.ocean_fraction < criteria.min_ocean_fraction as f32 {
                return Outcome::Land;
            }
            if stats.cloud_fraction < criteria.min_cloud_fraction as f32 {
                return Outcome::Clear;
            }
            Outcome::Selected(Box::new(build_tile(swath, row, col, ts, stats)))
        })
        .collect();

    let mut set = TileSet {
        candidates,
        ..TileSet::default()
    };
    for o in outcomes {
        match o {
            Outcome::Selected(t) => set.tiles.push(*t),
            Outcome::Land => set.rejected_land += 1,
            Outcome::Clear => set.rejected_clear += 1,
        }
    }
    set
}

struct WindowStats {
    ocean_fraction: f32,
    cloud_fraction: f32,
    mean_cot: f32,
    mean_ctp: f32,
    mean_cer: f32,
    center_lat: f32,
    center_lon: f32,
}

fn window_stats(swath: &Swath, row: usize, col: usize, ts: usize) -> WindowStats {
    let dims = swath.dims;
    let mut ocean = 0usize;
    let mut cloudy = 0usize;
    let mut cot = 0.0f64;
    let mut ctp = 0.0f64;
    let mut cer = 0.0f64;
    for y in 0..ts {
        let line = row * ts + y;
        for x in 0..ts {
            let i = dims.idx(line, col * ts + x);
            if swath.land[i] == 0 {
                ocean += 1;
            }
            if swath.cloud[i] == 1 {
                cloudy += 1;
                cot += swath.cot[i] as f64;
                ctp += swath.ctp[i] as f64;
                cer += swath.cer[i] as f64;
            }
        }
    }
    let n = (ts * ts) as f32;
    let center = dims.idx(row * ts + ts / 2, col * ts + ts / 2);
    WindowStats {
        ocean_fraction: ocean as f32 / n,
        cloud_fraction: cloudy as f32 / n,
        mean_cot: if cloudy > 0 {
            (cot / cloudy as f64) as f32
        } else {
            0.0
        },
        mean_ctp: if cloudy > 0 {
            (ctp / cloudy as f64) as f32
        } else {
            0.0
        },
        mean_cer: if cloudy > 0 {
            (cer / cloudy as f64) as f32
        } else {
            0.0
        },
        center_lat: swath.lat[center],
        center_lon: swath.lon[center],
    }
}

fn build_tile(swath: &Swath, row: usize, col: usize, ts: usize, stats: WindowStats) -> Tile {
    let dims = swath.dims;
    let nb = swath.bands.len();
    let npix = ts * ts;
    let mut data = vec![0.0f32; nb * npix];
    for (b, plane) in data.chunks_exact_mut(npix).enumerate() {
        let src = swath.band_plane(b);
        for y in 0..ts {
            let line = row * ts + y;
            let src_row = &src[dims.idx(line, col * ts)..dims.idx(line, col * ts) + ts];
            plane[y * ts..(y + 1) * ts].copy_from_slice(src_row);
        }
        // Per-band standardization within the tile — the normalization the
        // RICC encoder expects (texture, not absolute radiance).
        let mean = plane.iter().map(|&v| v as f64).sum::<f64>() / npix as f64;
        let var = plane
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / npix as f64;
        let std = var.sqrt().max(1e-6);
        for v in plane.iter_mut() {
            debug_assert!(*v != RADIANCE_FILL, "night tile leaked through");
            *v = ((*v as f64 - mean) / std) as f32;
        }
    }
    Tile {
        granule: swath.id,
        row,
        col,
        data,
        bands: swath.bands.clone(),
        size: ts,
        center_lat: stats.center_lat,
        center_lon: stats.center_lon,
        ocean_fraction: stats.ocean_fraction,
        cloud_fraction: stats.cloud_fraction,
        mean_cot: stats.mean_cot,
        mean_ctp: stats.mean_ctp,
        mean_cer: stats.mean_cer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eoml_modis::product::Platform;
    use eoml_modis::synth::{SwathDims, SwathSynthesizer};
    use eoml_util::timebase::CivilDate;

    fn synth() -> SwathSynthesizer {
        SwathSynthesizer::new(2022, SwathDims::small())
    }

    fn gid(slot: u16) -> GranuleId {
        GranuleId::new(Platform::Terra, CivilDate::new(2022, 1, 1).unwrap(), slot)
    }

    fn day_swath() -> Swath {
        let sy = synth();
        for slot in 0..288 {
            let s = sy.synthesize(gid(slot));
            if s.day {
                return s;
            }
        }
        panic!("no day granule found");
    }

    #[test]
    fn tile_grid_dimensions() {
        let s = day_swath();
        let set = extract_tiles(&s, &TileCriteria::default());
        // 256×256 swath with 128-pixel tiles → 4 candidate windows.
        assert_eq!(set.candidates, 4);
        assert_eq!(
            set.tiles.len() + set.rejected_land + set.rejected_clear,
            set.candidates
        );
    }

    #[test]
    fn selected_tiles_meet_criteria() {
        let sy = synth();
        let crit = TileCriteria::default();
        let mut selected = 0;
        for slot in 0..288 {
            let s = sy.synthesize(gid(slot));
            let set = extract_tiles(&s, &crit);
            for t in &set.tiles {
                assert!(t.ocean_fraction >= 1.0, "ocean {}", t.ocean_fraction);
                assert!(t.cloud_fraction >= 0.3, "cloud {}", t.cloud_fraction);
                assert_eq!(t.size, 128);
                assert_eq!(t.bands.len(), 6);
                assert_eq!(t.data.len(), 6 * 128 * 128);
                selected += 1;
            }
        }
        assert!(
            selected > 10,
            "expected some ocean-cloud tiles, got {selected}"
        );
    }

    #[test]
    fn night_granules_are_skipped() {
        let sy = synth();
        let night = (0..288)
            .map(|slot| sy.synthesize(gid(slot)))
            .find(|s| !s.day)
            .expect("a night granule exists");
        let set = extract_tiles(&night, &TileCriteria::default());
        assert!(set.skipped_night);
        assert!(set.is_empty());
        assert_eq!(set.candidates, 0);
    }

    #[test]
    fn tile_data_is_standardized() {
        let s = day_swath();
        let crit = TileCriteria {
            min_ocean_fraction: 0.0,
            min_cloud_fraction: 0.0,
            ..TileCriteria::default()
        };
        let set = extract_tiles(&s, &crit);
        assert!(!set.is_empty());
        for t in &set.tiles {
            for b in 0..t.bands.len() {
                let plane = t.band_plane(b);
                let mean: f64 = plane.iter().map(|&v| v as f64).sum::<f64>() / plane.len() as f64;
                let var: f64 = plane
                    .iter()
                    .map(|&v| (v as f64 - mean).powi(2))
                    .sum::<f64>()
                    / plane.len() as f64;
                assert!(mean.abs() < 1e-3, "band {b} mean {mean}");
                // Constant planes are standardized to 0 (std clamp).
                assert!(var < 1.1, "band {b} var {var}");
            }
        }
    }

    #[test]
    fn loosening_criteria_selects_more_tiles() {
        let sy = synth();
        let strict = TileCriteria::default();
        let loose = TileCriteria {
            min_ocean_fraction: 0.0,
            min_cloud_fraction: 0.0,
            ..TileCriteria::default()
        };
        let mut n_strict = 0;
        let mut n_loose = 0;
        for slot in (0..288).step_by(16) {
            let s = sy.synthesize(gid(slot));
            n_strict += extract_tiles(&s, &strict).len();
            n_loose += extract_tiles(&s, &loose).len();
        }
        assert!(n_loose > n_strict, "{n_loose} vs {n_strict}");
        // Loose criteria accept every daytime candidate window.
        let day_candidates: usize = (0..288)
            .step_by(16)
            .map(|slot| extract_tiles(&sy.synthesize(gid(slot)), &loose).candidates)
            .sum();
        assert_eq!(n_loose, day_candidates);
    }

    #[test]
    fn smaller_tiles_make_more_candidates() {
        let s = day_swath();
        let small = TileCriteria {
            tile_size: 64,
            ..TileCriteria::default()
        };
        let set = extract_tiles(&s, &small);
        assert_eq!(set.candidates, 16); // 4×4 windows of 64 in 256²
    }

    #[test]
    fn rejection_counters_are_plausible() {
        let sy = synth();
        let mut land = 0;
        let mut clear = 0;
        for slot in (0..288).step_by(8) {
            let set = extract_tiles(&sy.synthesize(gid(slot)), &TileCriteria::default());
            land += set.rejected_land;
            clear += set.rejected_clear;
        }
        assert!(land > 0, "some tiles must touch land");
        let _ = clear;
    }

    #[test]
    fn full_modis_dims_yield_150_candidates() {
        // The full 2030×1354 swath holds 15×10 = 150 tile windows — the
        // number behind "80 files ⇒ 12,000 tiles".
        let sy = SwathSynthesizer::new(2022, SwathDims::modis());
        let s = sy
            .landmask()
            .is_land(&eoml_geo::latlon::LatLon::new(0.0, 0.0));
        let _ = s; // landmask touch; the real check is the grid arithmetic
        let dims = SwathDims::modis();
        assert_eq!((dims.lines / 128) * (dims.pixels / 128), 150);
    }

    #[test]
    fn extraction_is_deterministic() {
        let s = day_swath();
        let a = extract_tiles(&s, &TileCriteria::default());
        let b = extract_tiles(&s, &TileCriteria::default());
        assert_eq!(a.tiles, b.tiles);
    }
}

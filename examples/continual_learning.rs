//! Continual learning on the enduring satellite record (paper §V): train
//! the RICC autoencoder on successive waves of data and compare naive
//! sequential fine-tuning (which forgets) against rehearsal-buffer
//! training (which doesn't, much).
//!
//! ```sh
//! cargo run --release --example continual_learning
//! ```

use eoml::ricc::autoencoder::{AeConfig, ConvAutoencoder};
use eoml::ricc::continual::ContinualTrainer;
use eoml::ricc::tensor::Tensor;
use eoml::util::noise::Fbm;

/// Synthesize a wave of cloud-texture tiles with a given morphology.
fn wave(kind: usize, n: usize, seed: u64) -> Vec<Tensor> {
    (0..n)
        .map(|i| {
            let f = match kind {
                0 => Fbm::with_params(seed + i as u64, 2, 2.0, 0.4), // smooth decks
                1 => Fbm::with_params(seed + i as u64, 6, 2.0, 0.9), // filaments
                _ => Fbm::with_params(seed + i as u64, 4, 2.5, 0.6), // cellular
            };
            let scale = [0.1, 0.8, 0.35][kind];
            let mut t = Tensor::zeros(2, 16, 16);
            for c in 0..2 {
                for y in 0..16 {
                    for x in 0..16 {
                        let (fx, fy) = (x as f64 * scale, y as f64 * scale + c as f64 * 9.0);
                        let v = if kind == 1 {
                            f.ridged(fx, fy)
                        } else {
                            f.sample(fx, fy)
                        };
                        *t.at_mut(c, y, x) = (v as f32 - 0.5) * 2.0;
                    }
                }
            }
            t
        })
        .collect()
}

fn main() {
    let waves = [
        ("wave 1: stratocumulus decks", wave(0, 10, 1000)),
        ("wave 2: cirrus filaments", wave(1, 10, 2000)),
        ("wave 3: open cells", wave(2, 10, 3000)),
    ];
    const EPOCHS: usize = 60;

    let base = ConvAutoencoder::new(AeConfig::tiny(), 9);
    let mut naive = ContinualTrainer::new(base.clone(), 0, 7);
    let mut rehearsal = ContinualTrainer::new(base, 12, 7);

    println!("training two continual learners over three waves ({EPOCHS} epochs each):");
    println!("  naive     — sequential fine-tuning, no memory");
    println!("  rehearsal — 12-tile reservoir of past data mixed into each batch\n");

    for (name, tiles) in &waves {
        let rn = naive.learn_wave(tiles, EPOCHS);
        let rr = rehearsal.learn_wave(tiles, EPOCHS);
        println!(
            "{name}: naive {:.4}→{:.4} | rehearsal {:.4}→{:.4} (rehearsed {} old tiles)",
            rn.loss_before, rn.loss_after, rr.loss_before, rr.loss_after, rr.rehearsed
        );
    }

    println!("\nretention after all waves (loss on each wave, lower is better):");
    println!("{:>28} {:>10} {:>10}", "", "naive", "rehearsal");
    for (name, tiles) in &waves {
        let ln = naive.eval(tiles);
        let lr = rehearsal.eval(tiles);
        let marker = if lr < ln { "  ← retained better" } else { "" };
        println!("{name:>28} {ln:>10.4} {lr:>10.4}{marker}");
    }
    println!(
        "\nrehearsal buffer: {} tiles sampled from {} seen",
        rehearsal.buffer_len(),
        rehearsal.tiles_seen()
    );
}

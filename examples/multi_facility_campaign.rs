//! A multi-facility campaign study: sweep the per-stage resource
//! allocation in virtual time and render a Fig.-6-style worker timeline.
//!
//! ```sh
//! cargo run --release --example multi_facility_campaign
//! # with trace export:
//! EOML_TRACE=trace.json EOML_PROM=metrics.prom \
//!     cargo run --release --example multi_facility_campaign
//! # with collapsed-stack profile + per-stage memory accounting:
//! EOML_FOLDED=profile.folded cargo run --release \
//!     --example multi_facility_campaign --features alloc-profile
//! # freeze the observed run as a diffable archive:
//! EOML_ARCHIVE=run-archive cargo run --release \
//!     --example multi_facility_campaign
//! ```

use eoml::core::campaign::{run_campaign, run_campaign_resumable, CampaignParams};
use eoml::core::scheduler::run_multi_day_resumable;
use eoml::core::streaming::{run_streaming_campaign, StreamingParams};
use eoml::journal::{Journal, JournalEvent, Ledger, MemStorage};
use eoml::simtime::SimTime;
use eoml::transfer::faults::FaultPlan;

// With `--features alloc-profile` the whole example runs under the
// counting allocator, so step 9's memory table fills with real per-stage
// byte attribution; without it the table is empty and the step says so.
#[cfg(feature = "alloc-profile")]
eoml::obs::install_counting_allocator!();

fn main() {
    // 1) Download-worker sweep (paper Fig. 3's 3 vs 6 workers).
    println!("== download workers sweep (one day, 32 files/product) ==");
    for workers in [3, 6] {
        let report = run_campaign(CampaignParams {
            files_per_day: 32,
            download_workers: workers,
            ..CampaignParams::paper_demo()
        });
        println!(
            "  {workers} workers: downloaded {} in {:.1}s  (aggregate {}, mean file {})",
            report.download.bytes,
            (report.download.finished - report.download.started).as_secs_f64(),
            report.download.aggregate_speed(),
            report.download.mean_file_speed(),
        );
    }

    // 2) Node sweep for preprocessing.
    println!();
    println!("== preprocessing node sweep (8 workers/node) ==");
    for nodes in [1, 2, 4, 8, 10] {
        let report = run_campaign(CampaignParams {
            files_per_day: 48,
            nodes,
            ..CampaignParams::paper_demo()
        });
        let pp = report.stage("preprocess").expect("stage ran");
        println!(
            "  {nodes:>2} nodes: preprocess {:>7.1}s  ({:.0} tiles, {:.1} tiles/s), makespan {:>7.1}s",
            pp.seconds(),
            report.total_tiles,
            report.total_tiles / pp.seconds(),
            report.makespan_s
        );
    }

    // 3) A flaky WAN still completes (retries in stage 1/5).
    println!();
    println!("== fault injection (2% drops, 0.5% corruption) ==");
    let clean = run_campaign(CampaignParams::paper_demo());
    let flaky = run_campaign(CampaignParams {
        faults: FaultPlan::flaky_wan(),
        ..CampaignParams::paper_demo()
    });
    println!(
        "  clean WAN: {} files, {} retries, makespan {:.1}s",
        clean.download.files.len(),
        clean.download.retries,
        clean.makespan_s
    );
    println!(
        "  flaky WAN: {} files, {} retries, makespan {:.1}s",
        flaky.download.files.len(),
        flaky.download.retries,
        flaky.makespan_s
    );

    // 4) Fig.-6-style timeline of the paper-demo allocation.
    println!();
    println!("== automation timeline (3 download / 32 preprocess / 1 inference workers) ==");
    let report = run_campaign(CampaignParams {
        files_per_day: 24,
        ..CampaignParams::paper_demo()
    });
    let t_end = SimTime::from_secs_f64(report.makespan_s);
    const COLS: usize = 72;
    for stage in ["download", "preprocess", "inference"] {
        let samples = report
            .telemetry
            .sample_activity(stage, SimTime::ZERO, t_end, COLS);
        let peak = report.telemetry.peak(stage).max(1);
        let bar: String = samples
            .iter()
            .map(|&(_, a)| {
                if a == 0 {
                    ' '
                } else {
                    let level = (a * 8).div_ceil(peak).min(8);
                    [
                        ' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}',
                        '\u{2586}', '\u{2587}', '\u{2588}',
                    ][level]
                }
            })
            .collect();
        println!("  {stage:<11} |{bar}| peak {peak}");
    }
    println!(
        "  {:<11} 0s{:>width$.0}s",
        "time",
        report.makespan_s,
        width = COLS - 1
    );
    println!(
        "\n  preprocess/inference overlap: {}",
        report.telemetry.stages_overlap("preprocess", "inference")
    );

    // 5) Streaming mode: granules arrive on the (compressed) acquisition
    //    timeline and all five stages pipeline.
    println!();
    println!("== streaming mode (20x-compressed acquisition day) ==");
    let streaming = run_streaming_campaign(StreamingParams {
        base: CampaignParams {
            files_per_day: 48,
            ..CampaignParams::paper_demo()
        },
        ..StreamingParams::demo()
    });
    println!(
        "  {} granules downloaded, {} preprocessed, {} labeled files shipped",
        streaming.granules_downloaded, streaming.granules_preprocessed, streaming.shipped_files
    );
    for stage in &streaming.stages {
        println!(
            "  {:<11} window {:>7.1}s  ({} items, {})",
            stage.name,
            stage.seconds(),
            stage.items,
            stage.bytes
        );
    }
    println!(
        "  makespan {:.1}s; download/preprocess overlap: {}",
        streaming.makespan_s,
        streaming.telemetry.stages_overlap("download", "preprocess")
    );

    // 6) Crash/resume: journal the campaign to a write-ahead log, kill it
    //    mid-run, then resume from the recovered journal. The resumed
    //    report's totals exactly match an uninterrupted run's.
    println!();
    println!("== crash/resume with the write-ahead journal ==");
    let params = CampaignParams {
        files_per_day: 24,
        ..CampaignParams::paper_demo()
    };
    let uninterrupted = run_campaign(params.clone());

    let store = MemStorage::new();
    let (mut journal, _) = Journal::open(store.clone()).unwrap();
    journal.crash_after(40); // kill the campaign at its 41st journal append
    let crashed = run_campaign_resumable(params.clone(), journal);
    println!(
        "  crash injected at event 40: campaign aborted ({})",
        crashed.err().map(|e| e.to_string()).unwrap_or_default()
    );

    let (journal, recovery) = Journal::open(store.clone()).unwrap();
    let done_downloads = journal.state().downloaded.len();
    let done_tiles = journal.state().tile_files.len();
    println!(
        "  recovered {} durable events ({} downloads, {} preprocessed granules journaled)",
        recovery.events, done_downloads, done_tiles
    );

    let resumed = run_campaign_resumable(params, journal).unwrap();
    println!(
        "  resumed: {} granules, {:.0} tiles, {} labeled, {} shipped",
        resumed.granules, resumed.total_tiles, resumed.labeled_files, resumed.shipment.bytes
    );
    println!(
        "  totals match uninterrupted run: {}",
        resumed.granules == uninterrupted.granules
            && resumed.total_tiles == uninterrupted.total_tiles
            && resumed.labeled_files == uninterrupted.labeled_files
            && resumed.shipment.bytes == uninterrupted.shipment.bytes
    );
    let (final_journal, _) = Journal::open(store).unwrap();
    let redone = final_journal
        .events()
        .iter()
        .filter(|e| matches!(e, JournalEvent::FileDownloaded { .. }))
        .count()
        .saturating_sub(uninterrupted.download.files.len());
    println!("  re-executed downloads after resume: {redone}");

    // 7) Observability: re-run the campaign with an obs hub attached and
    //    export a Chrome trace (loadable in Perfetto / chrome://tracing)
    //    plus a Prometheus text dump. Output paths come from the
    //    EOML_TRACE / EOML_PROM environment variables.
    println!();
    println!("== observability export ==");
    let obs = eoml::obs::Obs::shared();
    let observed = run_campaign(
        CampaignParams {
            files_per_day: 24,
            ..CampaignParams::paper_demo()
        }
        .with_obs(std::sync::Arc::clone(&obs)),
    );
    println!(
        "  {} spans over {} granules; stage health:",
        obs.span_count(),
        observed.granules
    );
    for h in obs.stage_health() {
        println!(
            "    {:<11} {:>4} spans closed, {:>8.1}s busy",
            h.stage, h.spans_closed, h.busy_seconds
        );
    }
    match std::env::var("EOML_TRACE") {
        Ok(path) => {
            obs.write_chrome_trace(&path).expect("write trace");
            println!("  wrote Chrome trace to {path} (open in Perfetto)");
        }
        Err(_) => println!("  set EOML_TRACE=<path> to export a Chrome trace"),
    }
    match std::env::var("EOML_PROM") {
        Ok(path) => {
            obs.write_prometheus(&path).expect("write metrics");
            println!("  wrote Prometheus metrics to {path}");
        }
        Err(_) => println!("  set EOML_PROM=<path> to export Prometheus metrics"),
    }

    // 8) Per-granule trace analysis: every granule carries a trace id
    //    from download to shipment, so the analysis layer can rebuild
    //    end-to-end traces, attribute time to service vs. queueing,
    //    name the bottleneck stage, and flag stragglers. The same span
    //    store renders the Fig. 6 timeline and Fig. 7 breakdown tables;
    //    EOML_REPORT=<dir> writes them as BENCH_*.json.
    println!();
    println!("== per-granule trace analysis ==");
    let analysis = eoml::obs::TraceAnalysis::from_obs(&obs);
    let shipped = observed
        .provenance
        .records()
        .iter()
        .filter(|rec| rec.artifact.starts_with("orion:"))
        .count();
    let covered = observed
        .provenance
        .records()
        .iter()
        .filter(|rec| rec.artifact.starts_with("orion:"))
        .filter(|rec| eoml::core::campaign::trace_for_artifact(&analysis, &rec.artifact).is_some())
        .count();
    println!(
        "  {} end-to-end traces; {covered}/{shipped} shipped files covered",
        analysis.len()
    );
    let mut slowest: Vec<&eoml::obs::GranuleTrace> = analysis.traces().collect();
    slowest.sort_by(|a, b| b.e2e_seconds().total_cmp(&a.e2e_seconds()));
    for trace in slowest.iter().take(3) {
        let bn = trace.bottleneck().expect("non-empty trace");
        let queue: f64 = trace.stage_attribution().iter().map(|a| a.queue_s).sum();
        println!(
            "    {:<18} e2e {:>7.1}s  bottleneck {:<10} ({:.1}s service), {:>6.1}s queued",
            trace.trace_id,
            trace.e2e_seconds(),
            bn.stage,
            bn.service_s,
            queue
        );
    }
    let stragglers = analysis.stragglers(&eoml::obs::StragglerConfig::default());
    match stragglers.first() {
        Some(s) => println!(
            "  stragglers: {} (worst: {} in {} at {:.1}s vs median {:.1}s)",
            stragglers.len(),
            s.trace_id,
            s.stage,
            s.seconds,
            s.median_s
        ),
        None => println!("  stragglers: none beyond 2x the stage medians"),
    }
    let report = eoml::obs::ObsReport::from_obs(&obs);
    let mismatches = report.verify_against(&obs.metrics().snapshot());
    assert!(
        mismatches.is_empty(),
        "report/registry disagree: {mismatches:?}"
    );
    println!("  Fig. 6/7 tables agree with the metrics registry");
    println!("{}", report.render_text(2));
    match std::env::var("EOML_REPORT") {
        Ok(dir) => {
            std::fs::create_dir_all(&dir).expect("create report dir");
            let paths = report.write_json(&dir).expect("write report tables");
            println!("  wrote {} BENCH_*.json tables to {dir}", paths.len());
        }
        Err(_) => println!("  set EOML_REPORT=<dir> to write the tables as BENCH_*.json"),
    }

    // 9) Performance profile: deterministic self-time attribution over
    //    the same span store — hot (stage, component) pairs ranked by
    //    exclusive time, a collapsed-stack export for flamegraph.pl /
    //    inferno (EOML_FOLDED=<path>), and, when the counting allocator
    //    is installed (--features alloc-profile), the Fig.-7-style
    //    per-stage memory breakdown.
    println!();
    println!("== performance profile ==");
    let profile = obs.profile();
    println!(
        "  {:.1}s total self time across {} hot paths",
        profile.total_self_seconds(),
        profile.entries().len()
    );
    println!("{}", profile.top_table(10).render_text(2));
    match std::env::var("EOML_FOLDED") {
        Ok(path) => {
            obs.write_folded(&path).expect("write folded profile");
            println!("  wrote collapsed stacks to {path} (feed to flamegraph.pl)");
        }
        Err(_) => println!("  set EOML_FOLDED=<path> to export collapsed stacks"),
    }
    if eoml::obs::resource::counting_active() {
        let snap = eoml::obs::resource::snapshot();
        println!(
            "  allocator: {:.1} MB allocated, {} allocations, {:.1} MB live",
            snap.allocated_bytes as f64 / 1e6,
            snap.allocation_count,
            snap.in_use_bytes as f64 / 1e6,
        );
        let memory = eoml::obs::resource::memory_table(&obs.metrics().snapshot());
        println!("{}", memory.render_text(2));
    } else {
        println!("  build with --features alloc-profile for per-stage memory accounting");
    }
    // EOML_ARCHIVE=<dir> freezes the observed run as a self-describing
    // RunArchive (manifest + spans + folded profile + tables) that
    // `eoml-obsctl diff` can attribute against any other archive offline.
    match std::env::var("EOML_ARCHIVE") {
        Ok(dir) => {
            let digest = eoml::obs::config_digest("multi_facility_campaign files_per_day=24");
            let meta = eoml::obs::RunMeta::new("example-campaign", &digest, 2022);
            let tables = vec![
                report.fig6_timeline.clone(),
                report.stage_stats.clone(),
                report.fig7_breakdown.clone(),
                report.profile_hot.clone(),
            ];
            let archive = eoml::obs::RunArchive::record_obs(&dir, &meta, &obs, &tables, &[])
                .expect("record archive");
            println!(
                "  archived run under {dir} ({} spans; diff offline with `eoml-obsctl diff`)",
                archive.spans.len()
            );
        }
        Err(_) => println!("  set EOML_ARCHIVE=<dir> to freeze this run as a diffable archive"),
    }

    // 10) Durable multi-day scheduling: with EOML_LEDGER=<dir> set, run a
    //     two-day campaign against an on-disk journal ledger — one
    //     fsynced wal.log per day under its own namespace. Run the
    //     example twice against the same directory: the second pass
    //     resumes every day from its journal and re-executes nothing
    //     ("fresh days: 0").
    println!();
    println!("== durable multi-day ledger ==");
    match std::env::var("EOML_LEDGER") {
        Ok(dir) => {
            let ledger = Ledger::new(&dir)
                .expect("create ledger")
                .with_snapshot_every(32)
                .with_auto_compact(8);
            let multi = run_multi_day_resumable(
                CampaignParams {
                    days: 2,
                    files_per_day: 8,
                    ..CampaignParams::paper_demo()
                },
                &ledger,
            )
            .expect("multi-day campaign");
            let mut fresh_days = 0;
            for day in &multi.days {
                if day.recovered_events == 0 {
                    fresh_days += 1;
                }
                println!(
                    "  {}: recovered {} events, {} granules, {} labeled files",
                    day.namespace,
                    day.recovered_events,
                    day.report.granules,
                    day.report.labeled_files
                );
            }
            println!(
                "  ledger at {dir}: {} campaigns, {} bytes on disk, fresh days: {fresh_days}",
                ledger.campaigns().expect("list ledger").len(),
                ledger.total_size().expect("size ledger"),
            );
        }
        Err(_) => println!("  set EOML_LEDGER=<dir> to journal a two-day campaign to disk"),
    }

    // 11) Cross-facility observability: ship the observed campaign's
    //     manifest to the destination facility, verify it there against
    //     the per-artifact digests, roll the outcome into facility
    //     health, and stitch both facilities' span stores into one
    //     Chrome trace with a process lane per facility.
    //     EOML_XFAC_CORRUPT=1 injects deterministic WAN damage (seeded;
    //     override with EOML_FAULT_SEED), EOML_XFAC_TRACE=<path> writes
    //     the stitched trace, EOML_XFAC_REPORT=<path> the ingest report.
    println!();
    println!("== two-facility shipment, ingest, and stitched trace ==");
    let manifest = observed.manifest.as_ref().expect("campaign manifest");
    println!(
        "  two-facility: manifest {} covers {} artifacts ({} bytes, {} lineage records)",
        manifest.id(),
        manifest.len(),
        manifest.total_bytes(),
        manifest.lineage.len()
    );
    let dst_obs = eoml::obs::Obs::shared();
    let mut ingestor =
        eoml::transfer::Ingestor::new("frontier-orion").with_obs(std::sync::Arc::clone(&dst_obs));
    let corrupt = std::env::var("EOML_XFAC_CORRUPT").is_ok();
    let plan = if corrupt {
        eoml::transfer::FaultPlan {
            drop_probability: 0.15,
            corrupt_probability: 0.25,
        }
    } else {
        FaultPlan::none()
    };
    let mut faults = eoml::transfer::FaultInjector::new(plan);
    println!(
        "  two-facility: WAN fault seed {} (corrupt={corrupt})",
        faults.seed()
    );
    let received = eoml::transfer::receive(manifest, &mut faults);
    let ingest = ingestor.ingest(manifest, &received, manifest.created_s + 5.0);
    if ingest.ok() {
        println!(
            "  two-facility: ingest ok — {} artifacts verified at {} in {:.2}s",
            ingest.verified.len(),
            ingest.facility,
            ingest.verify_seconds
        );
    } else {
        println!(
            "  two-facility: ingest FAILED — {} error(s) at {}, first: {}",
            ingest.errors.len(),
            ingest.facility,
            ingest.first_error().expect("errors nonempty")
        );
    }
    // Per-facility health rollup from the destination's verify counters.
    let stage_key = format!("facility:{}", ingest.facility);
    let status = eoml::obs::FacilityStatus {
        facility: ingest.facility.clone(),
        ingest_lag_s: 5.0,
        verified: dst_obs
            .metrics()
            .counter_value("artifacts_verified", &stage_key)
            .unwrap_or(0),
        verify_failures: dst_obs
            .metrics()
            .counter_value("verify_failures", &stage_key)
            .unwrap_or(0),
    };
    let health = eoml::obs::ops::health::evaluate(
        &eoml::obs::HealthPolicy::default(),
        manifest.created_s + 5.0,
        1,
        None,
        0,
        Vec::new(),
        0,
        false,
        0,
        vec![status],
    );
    match &health.state {
        eoml::obs::HealthState::Healthy => println!("  two-facility: health Healthy"),
        eoml::obs::HealthState::Degraded { reasons } => {
            println!("  two-facility: health Degraded — {}", reasons.join("; "))
        }
        eoml::obs::HealthState::Unhealthy { reasons } => {
            println!("  two-facility: health Unhealthy — {}", reasons.join("; "))
        }
    }
    // Stitch source + destination spans into one cross-facility timeline.
    let x = eoml::obs::XfacAnalysis::stitch(&[
        eoml::obs::FacilitySpans::capture("ace-defiant", &obs),
        eoml::obs::FacilitySpans::capture("frontier-orion", &dst_obs),
    ]);
    let stitched = x.stitched_trace_ids();
    println!(
        "  two-facility: {} granule trace(s) cross the WAN",
        stitched.len()
    );
    if let Some(id) = stitched.first() {
        let wan = x.wan_breakdown(id).expect("stitched trace analysable");
        println!(
            "  two-facility: {id} wan breakdown — queue {:.2}s, wire {:.2}s, verify {:.2}s",
            wan.queue_s, wan.wire_s, wan.verify_s
        );
    }
    match std::env::var("EOML_XFAC_TRACE") {
        Ok(path) => {
            std::fs::write(&path, x.chrome_trace()).expect("write stitched trace");
            println!("  two-facility: wrote stitched Chrome trace to {path}");
        }
        Err(_) => println!("  set EOML_XFAC_TRACE=<path> to export the stitched trace"),
    }
    match std::env::var("EOML_XFAC_REPORT") {
        Ok(path) => {
            std::fs::write(&path, ingest.to_json().to_string()).expect("write ingest report");
            println!("  two-facility: wrote ingest report to {path}");
        }
        Err(_) => println!("  set EOML_XFAC_REPORT=<path> to export the ingest report JSON"),
    }
    if corrupt {
        assert!(!ingest.ok(), "injected corruption must fail verification");
        // A clean re-ship after the loud failure verifies and acks — the
        // damage was on the wire, not in the manifest.
        let clean: Vec<_> = manifest
            .artifacts
            .iter()
            .map(eoml::transfer::ReceivedArtifact::faithful)
            .collect();
        let retry = ingestor.ingest(manifest, &clean, manifest.created_s + 30.0);
        assert!(retry.ok() && !retry.duplicate, "clean re-ship must ack");
        println!("  two-facility: clean re-ship verified and acked after the failure");
    }
}

//! Continual (streaming) inference: granules arrive in waves, the stage-3
//! monitor discovers each finished tile file on the real file system, and
//! the inference flow labels it — without waiting for the whole batch.
//!
//! This is the paper's §V direction ("inferring with batch as well as
//! streaming data") exercised on the real-execution path.
//!
//! ```sh
//! cargo run --release --example continual_inference
//! ```

use eoml::executor::local::LocalExecutor;
use eoml::flows::definition::FlowDefinition;
use eoml::flows::runner::FlowRunner;
use eoml::flows::trigger::DirectoryCrawler;
use eoml::modis::files::{to_mod02, to_mod03, to_mod06};
use eoml::modis::granule::GranuleId;
use eoml::modis::product::Platform;
use eoml::modis::synth::{SwathDims, SwathSynthesizer};
use eoml::ncdf::NcFile;
use eoml::preprocess::pipeline::preprocess_granule_files;
use eoml::preprocess::tiles::TileCriteria;
use eoml::preprocess::writer::{append_labels, read_tiles_nc};
use eoml::ricc::aicca::AiccaModel;
use eoml::ricc::autoencoder::AeConfig;
use eoml::ricc::tensor::Tensor;
use eoml::util::timebase::CivilDate;
use serde_json::json;

const TILE: usize = 32;

fn main() {
    let work = std::env::temp_dir().join(format!("eoml-continual-{}", std::process::id()));
    let incoming = work.join("incoming");
    let tiles_dir = work.join("tiles");
    let outbox = work.join("outbox");
    for d in [&incoming, &tiles_dir, &outbox] {
        std::fs::create_dir_all(d).expect("mkdir");
    }

    let synth = SwathSynthesizer::new(2022, SwathDims::small());
    let executor = LocalExecutor::new(2);
    let criteria = TileCriteria {
        tile_size: TILE,
        min_ocean_fraction: 0.5,
        min_cloud_fraction: 0.2,
    };
    println!("fitting AICCA model (random-projection encoder + 42 centroids)…");
    let model = AiccaModel::pretrained(
        AeConfig {
            in_ch: 6,
            c1: 8,
            c2: 16,
            latent: 24,
            input: TILE,
            lr: 1e-3,
            lambda: 0.1,
        },
        2022,
    );

    // Day granules arrive in three waves of three.
    let date = CivilDate::new(2022, 1, 1).expect("date");
    let day_granules: Vec<GranuleId> = (0..288)
        .map(|slot| GranuleId::new(Platform::Terra, date, slot))
        .filter(|&g| synth.synthesize(g).day)
        .take(9)
        .collect();

    let mut crawler = DirectoryCrawler::new(&tiles_dir, ".nc");
    let flow = FlowDefinition::inference_flow();
    let mut total_labeled = 0usize;

    for (wave, chunk) in day_granules.chunks(3).enumerate() {
        println!(
            "\n=== wave {} arrives: {} granules ===",
            wave + 1,
            chunk.len()
        );
        // Preprocess the wave in parallel (stages 1–2).
        let outcomes = executor.map(chunk.to_vec(), |g| {
            let swath = synth.synthesize(g);
            let p02 = incoming.join("m02.eogr.tmp");
            // Per-granule unique names to avoid collisions across workers.
            let p02 = p02.with_file_name(format!("{g}-02.eogr"));
            let p03 = incoming.join(format!("{g}-03.eogr"));
            let p06 = incoming.join(format!("{g}-06.eogr"));
            std::fs::write(&p02, to_mod02(&swath).encode()).expect("write");
            std::fs::write(&p03, to_mod03(&swath).encode()).expect("write");
            std::fs::write(&p06, to_mod06(&swath).encode()).expect("write");
            preprocess_granule_files(&p02, &p03, &p06, &tiles_dir, &criteria).expect("preprocess")
        });
        let produced: usize = outcomes.iter().filter(|o| o.output.is_some()).count();
        println!("  preprocessing produced {produced} tile file(s)");

        // Stage 3: the monitor sees only the new files of this wave.
        let fresh = crawler.crawl().expect("crawl");
        println!("  monitor discovered {} new file(s)", fresh.len());

        // Stage 4: run the inference flow per file.
        let mut infer = |_: &str, params: &serde_json::Value, _: &serde_json::Value| {
            let name = params["file"].as_str().ok_or("missing file")?;
            let nc =
                NcFile::decode(&std::fs::read(tiles_dir.join(name)).map_err(|e| e.to_string())?)
                    .map_err(|e| e.to_string())?;
            let (tiles, _) = read_tiles_nc(&nc).map_err(|e| e.to_string())?;
            let tensors: Vec<Tensor> = tiles
                .iter()
                .map(|t| Tensor::from_data(t.bands.len(), t.size, t.size, t.data.clone()))
                .collect();
            Ok(json!({ "labels": model.predict_batch(&tensors) }))
        };
        let mut append = |_: &str, params: &serde_json::Value, _: &serde_json::Value| {
            let name = params["file"].as_str().ok_or("missing file")?;
            let labels: Vec<i32> = params["labels"]["labels"]
                .as_array()
                .ok_or("missing labels")?
                .iter()
                .map(|v| v.as_i64().unwrap_or(-1) as i32)
                .collect();
            let path = tiles_dir.join(name);
            let mut nc = NcFile::decode(&std::fs::read(&path).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            append_labels(&mut nc, &labels).map_err(|e| e.to_string())?;
            std::fs::write(&path, nc.encode().map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            Ok(json!({ "count": labels.len() }))
        };
        let mut move_out = |_: &str, params: &serde_json::Value, _: &serde_json::Value| {
            let name = params["file"].as_str().ok_or("missing file")?;
            std::fs::rename(tiles_dir.join(name), outbox.join(name)).map_err(|e| e.to_string())?;
            Ok(json!({ "moved": name }))
        };
        let mut runner = FlowRunner::new();
        runner.register("inference", &mut infer);
        runner.register("append_labels", &mut append);
        runner.register("move_to_outbox", &mut move_out);

        for path in &fresh {
            let name = path.file_name().unwrap().to_str().unwrap().to_string();
            let run = runner.run(&flow, json!({ "file": name }));
            let n = run.context["labels"]["labels"]
                .as_array()
                .map(|a| a.len())
                .unwrap_or(0);
            total_labeled += n;
            println!(
                "  flow {} on {name}: {:?}, {} tiles labeled, flow time {:.2}s",
                run.id,
                run.status,
                n,
                run.total_duration()
            );
        }
    }

    let shipped = std::fs::read_dir(&outbox).expect("outbox").count();
    println!("\ntotal tiles labeled : {total_labeled}");
    println!("files in outbox     : {shipped}");
    println!(
        "re-crawl finds nothing new: {}",
        crawler.crawl().unwrap().is_empty()
    );
    std::fs::remove_dir_all(&work).ok();
}

//! Tenant-storm demonstration of the multi-tenant campaign service:
//! register a population of small tenants plus a few whales, drain the
//! sharded fair-share queues, and report per-tenant outcomes. With a kill
//! injected, the run dies mid-storm and a rerun over the same root
//! recovers every tenant and campaign from the control journal.
//!
//! ```sh
//! cargo run --release --example tenant_service
//! ```
//!
//! Environment knobs (all optional):
//! * `EOML_SERVICE_ROOT`   — service root directory (default: a temp dir;
//!   set this to rerun over the same root and exercise recovery)
//! * `EOML_STORM_TENANTS`  — small tenants to register (default 50)
//! * `EOML_STORM_WHALES`   — whale tenants (default 2)
//! * `EOML_STORM_KILL`     — kill the service after this many quanta; the
//!   process exits with status 2 so a harness can observe the "crash"
//! * `EOML_SERVICE_REPORT` — directory to write `SERVICE_storm.json` into
//! * `EOML_HEALTH`         — file to write the final health verdict JSON
//!   into (written on the killed path too, so a harness can watch the
//!   Degraded → Healthy recovery arc across reruns)
//! * `EOML_SERVICE_PROM`   — file to write the Prometheus exposition into
//! * `EOML_OPS_WINDOW_S`   — ops-plane window length in sim seconds
//!   (default 3600; `0` rolls one window per scheduler quantum)

use eoml::service::{CampaignService, CampaignSpec, KillPoint, ServiceConfig, TenantSpec};
use std::process::ExitCode;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Write the current health verdict to `EOML_HEALTH` (if set) and print
/// a one-line ops summary either way.
fn report_ops(service: &CampaignService) {
    let Some(health) = service.health() else {
        return; // ops plane disabled
    };
    let windows = service.ops_windows();
    println!(
        "ops: health {} ({} windows, fairness {}, {} ops events in {})",
        health.state.label(),
        health.windows,
        health
            .fairness
            .map(|j| format!("{j:.3}"))
            .unwrap_or_else(|| "n/a".to_string()),
        service.ops_log().len(),
        service.ops_dir().display(),
    );
    for reason in health.state.reasons() {
        println!("ops:   reason: {reason}");
    }
    if let Some(last) = windows.last() {
        println!(
            "ops:   window {} [{:.0}s..{:.0}s]: {} counter deltas",
            last.index,
            last.start_s,
            last.end_s,
            last.counters.len()
        );
    }
    if let Ok(path) = std::env::var("EOML_HEALTH") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("health dir");
        }
        let text = serde_json::to_string(&health.to_json()).expect("health json");
        std::fs::write(&path, text).expect("write health");
        println!("ops: health verdict written to {path}");
    }
}

fn main() -> ExitCode {
    let root = std::env::var("EOML_SERVICE_ROOT").unwrap_or_else(|_| {
        std::env::temp_dir()
            .join(format!("eoml-service-{}", std::process::id()))
            .display()
            .to_string()
    });
    let tenants = env_usize("EOML_STORM_TENANTS", 50);
    let whales = env_usize("EOML_STORM_WHALES", 2);
    let kill = std::env::var("EOML_STORM_KILL")
        .ok()
        .and_then(|v| v.parse().ok());

    let mut config = ServiceConfig::small();
    config.kill = kill.map(KillPoint::AfterQuanta);
    if let Some(window_s) = std::env::var("EOML_OPS_WINDOW_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        if let Some(ops) = config.ops.as_mut() {
            ops.window_s = window_s;
        }
    }
    let (service, recovery) = CampaignService::open(&root, config).expect("open service");
    println!(
        "service root {root}: recovered {} tenants, {} campaigns requeued, \
         {} completed, {} control events",
        recovery.tenants, recovery.requeued, recovery.completed, recovery.control_events
    );

    // A fresh root gets the storm population; a recovered root already
    // holds its tenants and queue — just drain it.
    if recovery.tenants == 0 {
        for i in 0..tenants {
            let id = format!("small-{i:03}");
            service
                .register_tenant(TenantSpec::new(&id, 1, 8).expect("tenant"))
                .expect("register");
            service
                .submit(&id, "job", CampaignSpec::small(4000 + i as u64))
                .expect("submit");
        }
        for w in 0..whales {
            let id = format!("whale-{w}");
            service
                .register_tenant(TenantSpec::new(&id, 4, 24).expect("tenant"))
                .expect("register");
            service
                .submit(&id, "reproc", CampaignSpec::whale(800 + w as u64, 3))
                .expect("submit");
        }
        println!("storm submitted: {tenants} small tenants + {whales} whales");
    }

    let report = match service.run_until_idle() {
        Ok(report) => report,
        Err(eoml::service::ServiceError::Killed) => {
            let done = service.service_report().quanta;
            println!("service killed after {done} quanta (injected)");
            println!("rerun with the same EOML_SERVICE_ROOT to recover");
            report_ops(&service);
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("service failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "storm complete: {} campaigns ({} completed, {} cancelled, {} paused), \
         {} quanta this run",
        report.campaigns.len(),
        report.completed,
        report.cancelled,
        report.paused,
        report.quanta
    );
    println!(
        "totals: {} granules, {} tile files, {} labeled files",
        report.granules, report.tile_files, report.labeled_files
    );
    println!(
        "budget pool: peak {} / {} cores",
        service.pool().peak_in_use(),
        service.pool().capacity()
    );

    // Fairness evidence: the worst first-admission position across all
    // tenants, in weighted-round-robin cycle units (1.0 = exactly one
    // full cycle — the guarantee's edge).
    let admissions = service.admissions();
    if !admissions.is_empty() {
        let mut first: std::collections::BTreeMap<&str, usize> = Default::default();
        for a in &admissions {
            first.entry(a.tenant.as_str()).or_insert(a.shard_seq);
        }
        let worst = first.values().max().copied().unwrap_or(0);
        println!(
            "fairness: {} tenants admitted, worst first-admission shard_seq {worst}",
            first.len()
        );
    }

    report_ops(&service);
    if let Ok(path) = std::env::var("EOML_SERVICE_PROM") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("prom dir");
        }
        std::fs::write(&path, service.obs().prometheus_text()).expect("write prometheus");
        println!("prometheus exposition written to {path}");
    }

    // One whale's per-tenant slice, as a tenant would see it.
    if let Some(rec) = service
        .list(None)
        .iter()
        .find(|r| r.tenant.starts_with("whale"))
    {
        let slice = service.tenant_report(&rec.tenant);
        println!("tenant {} report:", rec.tenant);
        print!("{}", slice.render_text(2));
    }

    if let Ok(dir) = std::env::var("EOML_SERVICE_REPORT") {
        std::fs::create_dir_all(&dir).expect("report dir");
        let campaigns: Vec<serde_json::Value> = report
            .campaigns
            .iter()
            .map(|r| {
                serde_json::json!({
                    "tenant": r.tenant,
                    "campaign": r.name,
                    "status": r.status.as_str(),
                    "days_done": r.days_done,
                    "granules": r.totals.granules,
                    "tile_files": r.totals.tile_files,
                    "labeled_files": r.totals.labeled_files,
                })
            })
            .collect();
        let doc = serde_json::json!({
            "tenants": service.tenants().len(),
            "quanta": report.quanta,
            "completed": report.completed,
            "granules": report.granules,
            "tile_files": report.tile_files,
            "labeled_files": report.labeled_files,
            "peak_workers": service.pool().peak_in_use(),
            "capacity": service.pool().capacity(),
            "campaigns": campaigns,
        });
        let path = std::path::Path::new(&dir).join("SERVICE_storm.json");
        std::fs::write(&path, doc.to_string()).expect("write report");
        println!("report written to {}", path.display());
    }
    ExitCode::SUCCESS
}

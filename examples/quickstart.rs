//! Quickstart: configure a campaign in YAML (as the paper's users do) and
//! run the five-stage workflow in virtual time.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use eoml::config::WorkflowConfig;
use eoml::core::campaign::{run_campaign, CampaignParams};

const CONFIG: &str = r#"
# EO-ML workflow configuration (see eoml-config for the full schema)
name: quickstart
seed: 2022
platform: Terra
products: [MOD021KM, MOD03, MOD06_L2]
time_span:
  start: 2022-01-01
  days: 1
download:
  workers: 3
  endpoint: laads
  files_per_day: 24
preprocess:
  nodes: 4
  workers_per_node: 8
  tile_size: 128
  min_ocean_fraction: 1.0
  min_cloud_fraction: 0.3
inference:
  workers: 1
shipment:
  destination: frontier-orion
  path: /lustre/orion/cli/aicca
"#;

fn main() {
    let cfg = WorkflowConfig::from_yaml_str(CONFIG).expect("valid config");
    println!("campaign     : {}", cfg.name);
    println!("platform     : {}", cfg.platform);
    println!(
        "time span    : {} (+{} days)",
        cfg.time_span.start, cfg.time_span.days
    );
    println!(
        "resources    : {} download workers, {} nodes × {} workers, {} inference worker(s)",
        cfg.download.workers,
        cfg.preprocess.nodes,
        cfg.preprocess.workers_per_node,
        cfg.inference.workers
    );
    println!();

    let report = run_campaign(CampaignParams::from_config(&cfg));

    println!("=== campaign report ===");
    print!("{}", report.summary_table());
    println!(
        "download speed        : {} (mean per file {})",
        report.download.aggregate_speed(),
        report.download.mean_file_speed()
    );
    println!();
    // Provenance: trace one shipped file back to the archive.
    if let Some(shipped) = report
        .provenance
        .records()
        .iter()
        .find(|r| r.activity == "shipment")
    {
        println!("lineage of {}:", shipped.artifact);
        for ancestor in report.provenance.lineage(&shipped.artifact).iter().take(6) {
            println!("  ← {ancestor}");
        }
        println!();
    }
    println!("latency breakdown (paper Fig. 7 analogue):");
    println!(
        "  download launch     : {:.2}s",
        report.telemetry.total_seconds("download", "launch")
    );
    println!(
        "  slurm allocation    : {:.2}s",
        report.telemetry.total_seconds("preprocess", "slurm_alloc")
    );
    println!(
        "  parsl start         : {:.2}s",
        report.telemetry.total_seconds("preprocess", "parsl_start")
    );
    println!(
        "  preprocessing total : {:.2}s",
        report.telemetry.total_seconds("preprocess", "total")
    );
    println!(
        "  flow action overhead: {:.0}ms mean",
        report.telemetry.mean_seconds("inference", "flow_action") * 1e3
    );
}

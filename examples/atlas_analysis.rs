//! Downstream AICCA analytics: run the real pipeline end-to-end, then read
//! the labeled NetCDF files back (as a climate scientist on Frontier
//! would) and build a cloud-class atlas with `eoml-core::atlas` — class
//! occurrence, mean cloud physics per class, and the zonal distribution.
//!
//! ```sh
//! cargo run --release --example atlas_analysis
//! ```

use eoml::core::atlas::Atlas;
use eoml::core::realrun::RealPipeline;
use eoml::modis::granule::GranuleId;
use eoml::modis::product::Platform;
use eoml::modis::synth::{SwathDims, SwathSynthesizer};
use eoml::ncdf::{to_cdl, CdlMode, NcFile};
use eoml::util::timebase::CivilDate;

fn main() {
    let work = std::env::temp_dir().join(format!("eoml-atlas-{}", std::process::id()));
    std::fs::create_dir_all(&work).expect("mkdir");

    let pipeline = RealPipeline::new(&work, 2022, SwathDims::small(), 32, 2)
        .expect("pipeline")
        .with_thresholds(0.3, 0.1);

    // A handful of day granules spread over the day.
    let synth = SwathSynthesizer::new(2022, SwathDims::small());
    let date = CivilDate::new(2022, 1, 1).expect("date");
    let granules: Vec<GranuleId> = (0..288)
        .map(|slot| GranuleId::new(Platform::Terra, date, slot))
        .filter(|&g| synth.synthesize(g).day)
        .step_by(3)
        .take(8)
        .collect();

    println!(
        "running the real five-stage pipeline on {} granules…",
        granules.len()
    );
    let report = pipeline.run(&granules).expect("pipeline run");
    println!(
        "  {} tile files, {} tiles, preprocess {:.2}s ({:.0} tiles/s)",
        report.tile_files,
        report.total_tiles,
        report.stage_secs[1],
        report.preprocess_throughput()
    );

    // ---- schema of a shipped file (paper §V-A: publish clear schemas) ----
    if let Some(path) = report.outbox.first() {
        let nc = NcFile::decode(&std::fs::read(path).expect("read")).expect("netcdf");
        println!("\nschema of {:?} (CDL):", path.file_name().unwrap());
        for line in to_cdl(&nc, "aicca_tiles", CdlMode::Header).lines() {
            println!("  {line}");
        }
    }

    // ---- build the atlas from the outbox ----
    let mut atlas = Atlas::new(42);
    for path in &report.outbox {
        let nc = NcFile::decode(&std::fs::read(path).expect("read")).expect("netcdf");
        atlas.add_file(&nc).expect("labeled file");
    }

    println!("\n=== AICCA mini-atlas ===");
    print!("{}", atlas.summary_table());

    println!("\ndominant classes:");
    for (class, count) in atlas.dominant_classes(5) {
        let c = &atlas.classes[class];
        println!(
            "  class {class:>2}: {count} tiles ({:.1}%), COT {:.1}, CTP {:.0} hPa, peak {}",
            100.0 * atlas.occurrence(class),
            c.mean_cot(),
            c.mean_ctp(),
            c.peak_latitude()
                .map(|l| format!("{l:+.0}°"))
                .unwrap_or_default()
        );
    }

    println!("\nzonal tile distribution (10° bands):");
    let peak = atlas.zonal.iter().copied().max().unwrap_or(1).max(1);
    for (band, &count) in atlas.zonal.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let lo = -90 + 10 * band as i32;
        let bar = "#".repeat(count * 40 / peak);
        println!("  {:>4}..{:<4} {count:>5} {bar}", lo, lo + 10);
    }

    std::fs::remove_dir_all(&work).ok();
}

//! Differential observability acceptance: two archives recorded from the
//! same seed/config diff to **zero attributed deltas**, and archives from
//! deliberately different worker counts produce a deterministic, ranked
//! `AttributionReport` whose top entry names the stage that actually
//! changed (preprocess — the node sweep moves its workers).

use std::path::PathBuf;
use std::sync::Arc;

use eoml::core::campaign::{run_campaign, CampaignParams};
use eoml::obs::archive::RunArchive;
use eoml::obs::diff::{diff_archives, flame_diff, DEFAULT_DIFF_TOLERANCE};
use eoml::obs::{config_digest, Obs, RunMeta};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eoml_obsarch_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Run the simulated campaign with an attached hub and freeze it.
fn record(tag: &str, label: &str, nodes: usize) -> RunArchive {
    let obs = Arc::new(Obs::new());
    let params = CampaignParams {
        files_per_day: 8,
        nodes,
        obs: Some(Arc::clone(&obs)),
        ..CampaignParams::paper_demo()
    };
    let digest = config_digest(&format!(
        "seed={} files_per_day=8 nodes={nodes}",
        params.seed
    ));
    let meta = RunMeta::new(label, &digest, params.seed);
    let report = run_campaign(params);
    assert!(report.granules > 0, "campaign must do real work");
    RunArchive::record_obs(tmpdir(tag), &meta, &obs, &[], &[]).expect("record archive")
}

#[test]
fn same_seed_and_config_archives_diff_to_zero_attributed_deltas() {
    let a = record("same_a", "baseline", 4);
    let b = record("same_b", "repeat", 4);
    // The archives are distinct recordings of the same deterministic
    // simulation: equal config digests, equal span counts.
    assert_eq!(a.meta.config_digest, b.meta.config_digest);
    assert_eq!(a.spans.len(), b.spans.len());
    let report = diff_archives(&a, &b, DEFAULT_DIFF_TOLERANCE);
    assert!(
        report.is_clean(),
        "same-config runs must diff clean:\n{}",
        report.render_text()
    );
    assert_eq!(report.attributed_count(), 0);
    assert!(!report.config_changed());
    // The folded profiles are identical, so the flame diff is all ties.
    let doc = flame_diff(&a, &b).expect("flame diff");
    for line in doc.lines() {
        let mut cols = line.rsplitn(3, ' ');
        let cur: u64 = cols.next().unwrap().parse().unwrap();
        let base: u64 = cols.next().unwrap().parse().unwrap();
        assert_eq!(base, cur, "flame stack moved in a same-config diff: {line}");
    }
    std::fs::remove_dir_all(&a.dir).ok();
    std::fs::remove_dir_all(&b.dir).ok();
}

#[test]
fn different_worker_counts_produce_a_ranked_deterministic_attribution() {
    let base = record("workers_base", "nodes8", 8);
    let cur = record("workers_cur", "nodes1", 1);
    assert!(base.meta.config_digest != cur.meta.config_digest);
    let report = diff_archives(&base, &cur, DEFAULT_DIFF_TOLERANCE);
    assert!(!report.is_clean(), "a 8x worker cut must attribute deltas");

    // The ranking is well-formed: rank 1..n, shares sum to ~100 %.
    for (i, e) in report.entries.iter().enumerate() {
        assert_eq!(e.rank, i + 1);
    }
    let share_sum: f64 = report.entries.iter().map(|e| e.share_pct).sum();
    assert!(
        (share_sum - 100.0).abs() < 1e-6,
        "shares sum to {share_sum}"
    );

    // The top entry names the stage that actually changed: preprocess is
    // the only stage whose worker count moved (8 nodes -> 1 node).
    let top = &report.entries[0];
    assert_eq!(
        top.stage,
        "preprocess",
        "top attribution must be the changed stage:\n{}",
        report.render_text()
    );
    assert!(
        top.delta_s() > 0.0,
        "fewer workers must attribute as a slowdown"
    );
    assert!(report.config_changed());

    // Deterministic: diffing the same archives again (and re-opening
    // them from disk) reproduces the identical report and JSON.
    let reopened_base = RunArchive::open(&base.dir).expect("reopen");
    let reopened_cur = RunArchive::open(&cur.dir).expect("reopen");
    let again = diff_archives(&reopened_base, &reopened_cur, DEFAULT_DIFF_TOLERANCE);
    assert_eq!(report, again);
    assert_eq!(
        serde_json::to_string(&report.to_json()).unwrap(),
        serde_json::to_string(&again.to_json()).unwrap()
    );
    std::fs::remove_dir_all(&base.dir).ok();
    std::fs::remove_dir_all(&cur.dir).ok();
}

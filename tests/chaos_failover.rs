//! Chaos acceptance: the seeded kill/partition schedule fires at every
//! injection point and the resumed runs stay journal-equivalent with
//! byte-identical artifacts and no duplicate ingests; a facility outage
//! fails over to a second compute site from the synced journal alone;
//! degraded-WAN re-ships converge under bounded exponential backoff; and
//! chaos verdicts fold into the ops log and health.
//!
//! When `EOML_CHAOS_DIR` is set (the CI chaos smoke job), the seeded
//! run's `chaos_report.json` and the two-facility stitched Chrome trace
//! are written there for upload on failure.

use eoml::core::campaign::{run_campaign, run_campaign_resumable, CampaignParams};
use eoml::core::chaos::{
    run_chaos_campaign, ChaosOutcome, ChaosReport, ChaosSchedule, InjectionPoint, DEST_FACILITY,
    SOURCE_FACILITY,
};
use eoml::journal::{Journal, JournalError, MemStorage};
use eoml::obs::{FacilitySpans, Obs, OpsConfig, OpsPlane, XfacAnalysis};
use eoml::transfer::{
    receive, reship_with_backoff, BackoffPolicy, FaultInjector, FaultPlan, Ingestor, JournalSync,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The CI smoke schedule's fixed seed: the same kills, partitions, and
/// loss rates on every run.
const CHAOS_SEED: u64 = 0xc11_a05;

fn params() -> CampaignParams {
    CampaignParams {
        files_per_day: 24,
        ..CampaignParams::small()
    }
}

static NEXT: AtomicU64 = AtomicU64::new(0);

fn tempdir(tag: &str) -> PathBuf {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("eoml-chaos-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write CI artifacts into `EOML_CHAOS_DIR`, if set. Failures to write
/// never fail the test — artifacts are diagnostics, not the verdict.
fn export_artifacts(report: &ChaosReport) {
    let Ok(dir) = std::env::var("EOML_CHAOS_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(dir.join("chaos_report.json"), report.to_json().to_string());
    // A clean two-facility run's stitched trace, so a failed smoke job
    // ships a cross-facility timeline alongside the chaos verdicts.
    let src_obs = Obs::shared();
    let run = run_campaign(params().with_obs(Arc::clone(&src_obs)));
    if let Some(manifest) = run.manifest.as_ref() {
        let dst_obs = Obs::shared();
        let mut ingestor = Ingestor::new(DEST_FACILITY).with_obs(Arc::clone(&dst_obs));
        let received = receive(manifest, &mut FaultInjector::new(FaultPlan::none()));
        let _ = ingestor.ingest(manifest, &received, manifest.created_s + 5.0);
        let x = XfacAnalysis::stitch(&[
            FacilitySpans::capture(SOURCE_FACILITY, &src_obs),
            FacilitySpans::capture(DEST_FACILITY, &dst_obs),
        ]);
        let _ = std::fs::write(dir.join("xfac_trace.json"), x.chrome_trace());
    }
}

#[test]
fn seeded_schedule_kills_every_point_and_stays_journal_equivalent() {
    let schedule = ChaosSchedule::full(CHAOS_SEED);
    let report = run_chaos_campaign(&params(), &schedule).expect("chaos harness runs");
    export_artifacts(&report);

    assert_eq!(report.outcomes.len(), 4, "all four injection points fire");
    let points: Vec<&str> = report.outcomes.iter().map(|o| o.point.label()).collect();
    assert_eq!(
        points,
        ["source_facility", "wan", "ingestor", "service"],
        "schedule order"
    );
    for outcome in &report.outcomes {
        assert!(
            outcome.journal_equivalent,
            "{}: resumed run not journal-equivalent: {outcome:?}",
            outcome.point.label()
        );
        assert!(
            outcome.artifacts_identical,
            "{}: artifacts not byte-identical: {outcome:?}",
            outcome.point.label()
        );
        assert_eq!(
            outcome.duplicate_ingests,
            0,
            "{}: duplicate ingests recorded: {outcome:?}",
            outcome.point.label()
        );
    }
    assert!(report.all_ok());

    // The WAN scenario actually exercised the partition + backoff path.
    let wan = &report.outcomes[1];
    assert!(wan.attempts > 1, "WAN scenario must re-ship: {wan:?}");
    assert!(wan.waited_s > 0.0, "WAN re-ships must back off: {wan:?}");

    // Identical schedule → identical verdict, byte for byte.
    let replay = run_chaos_campaign(&params(), &schedule).expect("replay runs");
    assert_eq!(report.to_json(), replay.to_json());
}

#[test]
fn facility_outage_fails_over_to_a_second_site_from_the_synced_journal() {
    // Reference: the undisturbed journaled run.
    let p = params();
    let baseline_store = MemStorage::new();
    let (journal, _) = Journal::open(baseline_store.clone()).unwrap();
    let baseline = run_campaign_resumable(p.clone(), journal).unwrap();
    let baseline_manifest = baseline.manifest.as_ref().expect("manifest");
    let (journal, _) = Journal::open(baseline_store).unwrap();
    let baseline_checksum = journal.state().work_checksum();

    // The source facility dies mid-campaign and never comes back.
    let source_store = MemStorage::new();
    let (mut source_journal, _) = Journal::open(source_store.clone()).unwrap();
    source_journal.crash_after(10);
    match run_campaign_resumable(p.clone(), source_journal) {
        Err(JournalError::Crashed) => {}
        other => panic!("kill point must fire: {:?}", other.map(|_| "completed")),
    }

    // All the second site ever receives is the synced journal: the
    // durable prefix, packaged exactly as the sync leg ships it.
    let (dead, _) = Journal::open(source_store).unwrap();
    let synced = JournalSync::from_state(dead.len() as u64, dead.state());
    assert!(
        synced.digest.events < journal.len() as u64,
        "outage must interrupt real work"
    );
    drop(dead);

    // Failover: rebuild a journal from the synced state alone and run
    // the same campaign params on the second site.
    let failover_store = MemStorage::new();
    let seeded = synced.state().expect("synced state parses");
    let (failover_journal, report) =
        Journal::open_seeded(failover_store.clone(), seeded).expect("seeding a fresh site");
    assert_eq!(report.truncated_bytes, 0, "seeded journal must be clean");
    let resumed = run_campaign_resumable(p, failover_journal).expect("failover completes");

    // Journal-equivalent: same work checksum; byte-identical artifacts:
    // same manifest id and per-artifact digests.
    let (failover_journal, _) = Journal::open(failover_store).unwrap();
    assert_eq!(
        failover_journal.state().work_checksum(),
        baseline_checksum,
        "failover run must be journal-equivalent to the undisturbed run"
    );
    let resumed_manifest = resumed.manifest.as_ref().expect("failover manifest");
    assert_eq!(resumed_manifest.id(), baseline_manifest.id());
    assert_eq!(resumed_manifest.len(), baseline_manifest.len());
    for (a, b) in baseline_manifest
        .artifacts
        .iter()
        .zip(&resumed_manifest.artifacts)
    {
        assert_eq!((&a.name, a.bytes, a.digest), (&b.name, b.bytes, b.digest));
    }
    // And the failover run ships its own self-consistent sync payload.
    let sync = resumed.journal_sync.as_ref().expect("failover sync");
    let check = sync.verify(resumed_manifest).expect("sync verifies");
    assert_eq!(check.checksum, baseline_checksum);
}

#[test]
fn degraded_wan_reships_converge_with_bounded_backoff_and_no_duplicate_acks() {
    let report = {
        let store = MemStorage::new();
        let (journal, _) = Journal::open(store).unwrap();
        run_campaign_resumable(params(), journal).unwrap()
    };
    let manifest = report.manifest.as_ref().expect("manifest");
    let sync = report.journal_sync.as_ref().expect("sync payload");

    let policy = BackoffPolicy::wan_default();
    let mut ingestor = Ingestor::new(DEST_FACILITY);
    let mut wan = FaultInjector::new(FaultPlan {
        drop_probability: 0.25,
        corrupt_probability: 0.10,
    })
    .with_seed(0xdeb4);
    let outcome = reship_with_backoff(
        manifest,
        Some(sync),
        &mut ingestor,
        &mut wan,
        &policy,
        2000,
        0.0,
    )
    .expect("sync verifies");

    assert!(outcome.acked, "degraded WAN must eventually converge");
    assert!(outcome.attempts > 1, "the WAN must have damaged a shipment");
    // Bounded exponential backoff, not immediate retry: every re-ship
    // waited, and the total is exactly the policy's schedule.
    assert!(outcome.waited_s > 0.0);
    let expected: f64 = policy.total_delay_s(outcome.attempts - 1);
    assert!(
        (outcome.waited_s - expected).abs() < 1e-9,
        "waited {} vs policy schedule {}",
        outcome.waited_s,
        expected
    );
    // Exactly one IngestAcked: one clean verify, zero duplicates.
    let acked: Vec<_> = outcome
        .reports
        .iter()
        .filter(|r| r.ok() && !r.duplicate)
        .collect();
    assert_eq!(acked.len(), 1, "exactly one ack across all re-ships");
    assert!(outcome.reports.iter().all(|r| !r.duplicate));
    assert_eq!(ingestor.acked_count(), 1);
    // A post-convergence re-ship is an idempotent duplicate, not a
    // second ack.
    let received = receive(manifest, &mut FaultInjector::new(FaultPlan::none()));
    let again = ingestor.ingest(manifest, &received, outcome.finished_s + 60.0);
    assert!(again.duplicate);
    assert_eq!(ingestor.acked_count(), 1);
}

#[test]
fn chaos_verdicts_fold_into_the_ops_log_and_health() {
    let schedule = ChaosSchedule::single(CHAOS_SEED, InjectionPoint::Service);
    let report = run_chaos_campaign(&params(), &schedule).expect("harness runs");

    // A passing chaos run logs its events and leaves health intact.
    let dir = tempdir("fold-ok");
    let mut plane = OpsPlane::open(&dir, OpsConfig::small()).unwrap();
    report.fold_into_ops(&mut plane);
    let events = plane.events();
    assert!(events.iter().any(|e| e.kind == "chaos_injection"));
    let summary = events
        .iter()
        .find(|e| e.kind == "chaos_summary")
        .expect("summary event");
    assert_eq!(summary.data["all_ok"].as_bool(), Some(true));
    assert_eq!(plane.health().state.label(), "healthy");
    let _ = std::fs::remove_dir_all(&dir);

    // A broken recovery path degrades health like a failing ingest.
    let mut failing = report.clone();
    failing.outcomes.push(ChaosOutcome {
        point: InjectionPoint::Wan,
        detail: "synthetic: re-ship diverged".to_string(),
        journal_equivalent: false,
        artifacts_identical: false,
        duplicate_ingests: 2,
        resumed_checksum: 0,
        attempts: 5,
        waited_s: 3.5,
    });
    let dir = tempdir("fold-bad");
    let mut plane = OpsPlane::open(&dir, OpsConfig::small()).unwrap();
    failing.fold_into_ops(&mut plane);
    let health = plane.health();
    assert_ne!(
        health.state.label(),
        "healthy",
        "a failed chaos scenario must not report healthy: {:?}",
        health.state
    );
    assert!(
        health
            .state
            .reasons()
            .iter()
            .any(|r| r.contains(DEST_FACILITY)),
        "reasons must name the facility: {:?}",
        health.state
    );
    let _ = std::fs::remove_dir_all(&dir);
}

//! Crash/resume equivalence for the *real* (on-disk) pipeline: kill a
//! journaled [`RealPipeline::run_resumable`] at every event index, resume
//! against the same workdir + journal, and the final report and the
//! labeled artifacts in the outbox must be byte-identical to an
//! uninterrupted run's — with no journaled-complete stage re-journaled.
//!
//! Spans `eoml-journal` (WAL, recovery, ledger, `FileStorage` durability)
//! and `eoml-core` (the resumable real pipeline).

use eoml::core::realrun::{RealPipeline, RealRunError, RealRunReport};
use eoml::journal::{Journal, JournalEvent, Ledger, MemStorage};
use eoml::modis::granule::GranuleId;
use eoml::modis::product::Platform;
use eoml::modis::synth::{SwathDims, SwathSynthesizer};
use eoml::util::timebase::CivilDate;
use std::path::{Path, PathBuf};

const SEED: u64 = 2022;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eoml-realrun-resume-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn pipeline(workdir: &Path) -> RealPipeline {
    RealPipeline::new(workdir, SEED, SwathDims::small(), 32, 2)
        .unwrap()
        .with_thresholds(0.0, 0.0)
}

/// One day granule and one night granule: exercises both the tile-file and
/// the no-tiles scan-record journal paths.
fn granules() -> Vec<GranuleId> {
    let sy = SwathSynthesizer::new(SEED, SwathDims::small());
    let date = CivilDate::new(2022, 1, 1).unwrap();
    let all: Vec<GranuleId> = (0..288)
        .map(|slot| GranuleId::new(Platform::Terra, date, slot))
        .collect();
    let day = *all.iter().find(|&&g| sy.synthesize(g).day).unwrap();
    let night = *all.iter().find(|&&g| !sy.synthesize(g).day).unwrap();
    vec![day, night]
}

/// Everything except wall-clock timings must match the baseline, and every
/// labeled artifact must be byte-identical.
fn assert_equivalent(resumed: &RealRunReport, baseline: &RealRunReport, tag: &str) {
    assert_eq!(resumed.granules, baseline.granules, "{tag}: granules");
    assert_eq!(resumed.tile_files, baseline.tile_files, "{tag}: tile files");
    assert_eq!(resumed.total_tiles, baseline.total_tiles, "{tag}: tiles");
    assert_eq!(
        resumed.labeled_tiles, baseline.labeled_tiles,
        "{tag}: labeled tiles"
    );
    assert_eq!(
        resumed.label_histogram, baseline.label_histogram,
        "{tag}: label histogram"
    );
    assert_eq!(
        resumed.outbox.len(),
        baseline.outbox.len(),
        "{tag}: outbox size"
    );
    for (r, b) in resumed.outbox.iter().zip(&baseline.outbox) {
        assert_eq!(r.file_name(), b.file_name(), "{tag}: outbox naming");
        assert_eq!(
            std::fs::read(r).unwrap(),
            std::fs::read(b).unwrap(),
            "{tag}: artifact {:?} not byte-identical",
            r.file_name().unwrap()
        );
    }
}

/// No completion event may appear twice in a journal — re-executing
/// journaled-complete work would journal it again.
fn assert_no_duplicate_completions(events: &[JournalEvent], tag: &str) {
    let mut seen = std::collections::BTreeSet::new();
    for event in events {
        let key = match event {
            JournalEvent::FileDownloaded { file, .. } => Some(format!("dl:{file}")),
            JournalEvent::TileFileWritten { file, .. } => Some(format!("tile:{file}")),
            JournalEvent::LabelsAppended { file, .. } => Some(format!("label:{file}")),
            JournalEvent::MonitorTriggered { file } => Some(format!("monitor:{file}")),
            _ => None,
        };
        if let Some(key) = key {
            assert!(
                seen.insert(key.clone()),
                "{tag}: duplicated completion {key}"
            );
        }
    }
}

#[test]
fn real_run_killed_at_every_event_resumes_to_identical_artifacts() {
    let granules = granules();
    let base_dir = tempdir("baseline");
    let baseline = pipeline(&base_dir).run(&granules).unwrap();
    assert!(!baseline.outbox.is_empty(), "baseline shipped nothing");

    // Learn the journal length from one uninterrupted journaled run.
    let probe = MemStorage::new();
    let probe_dir = tempdir("probe");
    {
        let (mut journal, _) = Journal::open(probe.clone()).unwrap();
        pipeline(&probe_dir)
            .run_resumable(&granules, &mut journal)
            .unwrap();
    }
    let (probe_journal, _) = Journal::open(probe).unwrap();
    let total_events = probe_journal.len();
    assert!(
        total_events >= 14,
        "real run journaled only {total_events} events"
    );
    std::fs::remove_dir_all(&probe_dir).unwrap();

    // crash_after(n) fails the (n+1)th append, so n in 0..total kills the
    // run at every event it would write, from the very first to the last.
    for kill_at in 0..total_events {
        let tag = format!("kill at event {kill_at}/{total_events}");
        let dir = tempdir(&format!("kill-{kill_at}"));
        let p = pipeline(&dir);
        let store = MemStorage::new();
        let (mut journal, _) = Journal::open(store.clone()).unwrap();
        journal.crash_after(kill_at);
        let crashed = p.run_resumable(&granules, &mut journal);
        match crashed {
            Err(RealRunError::Journal(_)) => {}
            other => panic!("{tag}: expected a journal crash, got {other:?}"),
        }
        drop(journal);

        let (mut journal, recovery) = Journal::open(store.clone()).unwrap();
        assert!(recovery.events <= kill_at, "{tag}: recovered too much");
        let resumed = p.run_resumable(&granules, &mut journal).unwrap();
        assert_equivalent(&resumed, &baseline, &tag);
        drop(journal);

        let (final_journal, _) = Journal::open(store).unwrap();
        assert_no_duplicate_completions(final_journal.events(), &tag);
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&base_dir).unwrap();
}

#[test]
fn real_run_survives_two_crashes_in_a_row() {
    let granules = granules();
    let base_dir = tempdir("twice-base");
    let baseline = pipeline(&base_dir).run(&granules).unwrap();

    let dir = tempdir("twice");
    let p = pipeline(&dir);
    let store = MemStorage::new();
    let (mut journal, _) = Journal::open(store.clone()).unwrap();
    journal.crash_after(4);
    assert!(p.run_resumable(&granules, &mut journal).is_err());
    drop(journal);
    let (mut journal, _) = Journal::open(store.clone()).unwrap();
    journal.crash_after(5);
    assert!(p.run_resumable(&granules, &mut journal).is_err());
    drop(journal);
    let (mut journal, _) = Journal::open(store.clone()).unwrap();
    let resumed = p.run_resumable(&granules, &mut journal).unwrap();
    assert_equivalent(&resumed, &baseline, "after two crashes");
    drop(journal);
    let (final_journal, _) = Journal::open(store).unwrap();
    assert_no_duplicate_completions(final_journal.events(), "after two crashes");
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&base_dir).unwrap();
}

#[test]
fn on_disk_ledger_run_crashes_and_resumes_across_file_journals() {
    // The fully-durable configuration: FileStorage journal under a ledger
    // namespace, crash mid-run, reopen from disk, resume, then compact.
    let granules = granules();
    let base_dir = tempdir("ledger-base");
    let baseline = pipeline(&base_dir).run(&granules).unwrap();

    let dir = tempdir("ledger-work");
    let ledger_dir = tempdir("ledger-root");
    let ledger = Ledger::new(&ledger_dir).unwrap().with_snapshot_every(4);
    let p = pipeline(&dir);

    let (mut journal, _) = ledger.open("day-2022-01-01").unwrap();
    journal.crash_after(7);
    assert!(p.run_resumable(&granules, &mut journal).is_err());
    drop(journal);

    // The crash left a real wal.log behind; reopen it from disk.
    assert!(ledger.contains("day-2022-01-01"));
    let (mut journal, recovery) = ledger.open("day-2022-01-01").unwrap();
    assert!(recovery.events > 0 && recovery.events <= 7);
    let resumed = p.run_resumable(&granules, &mut journal).unwrap();
    assert_equivalent(&resumed, &baseline, "ledger resume");
    drop(journal);

    // Replay once more (nothing to redo), then compact the whole ledger:
    // the journal shrinks and still reopens to the same state.
    let (mut journal, _) = ledger.open("day-2022-01-01").unwrap();
    let replay = p.run_resumable(&granules, &mut journal).unwrap();
    assert_equivalent(&replay, &baseline, "ledger replay");
    drop(journal);
    let before = ledger.total_size().unwrap();
    let compacted = ledger.compact_all().unwrap();
    assert_eq!(compacted.len(), 1);
    assert!(
        ledger.total_size().unwrap() < before,
        "compaction must shrink"
    );
    let (mut journal, rep) = ledger.open("day-2022-01-01").unwrap();
    assert!(rep.snapshot_used);
    let after_compact = p.run_resumable(&granules, &mut journal).unwrap();
    assert_equivalent(&after_compact, &baseline, "post-compaction replay");

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&base_dir).unwrap();
    std::fs::remove_dir_all(&ledger_dir).unwrap();
}

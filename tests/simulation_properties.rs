//! Property-based tests of the simulation substrates: the discrete-event
//! engine's ordering guarantees, the flow network's conservation laws, and
//! the cluster model's work conservation. These invariants are what make
//! the figure reproductions trustworthy.

use eoml::cluster::contention::ContentionModel;
use eoml::cluster::exec::{submit_task, ClusterModel, HasCluster};
use eoml::cluster::spec::ClusterSpec;
use eoml::simtime::{SimTime, Simulation};
use eoml::transfer::endpoint::Endpoint;
use eoml::transfer::faults::FaultPlan;
use eoml::transfer::flownet::{start_flow, FlowNetwork, HasNetwork};
use eoml::util::units::{ByteSize, Rate};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

// ------------------------------------------------------------ simtime

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events always fire in nondecreasing time order, whatever order they
    /// were scheduled in.
    #[test]
    fn events_fire_in_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..60)) {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), move |s| {
                let now = s.now().as_nanos();
                s.state_mut().push(now);
            });
        }
        sim.run();
        let fired = sim.into_state();
        prop_assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(fired, sorted);
    }

    /// `run_until(t)` executes exactly the events at or before `t`.
    #[test]
    fn run_until_partitions_events(
        times in proptest::collection::vec(0u64..1000, 1..40),
        cut in 0u64..1000,
    ) {
        let mut sim = Simulation::new(0usize);
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), |s| *s.state_mut() += 1);
        }
        sim.run_until(SimTime::from_nanos(cut));
        let expected = times.iter().filter(|&&t| t <= cut).count();
        prop_assert_eq!(*sim.state(), expected);
        prop_assert!(sim.now() >= SimTime::from_nanos(cut));
        sim.run();
        prop_assert_eq!(*sim.state(), times.len());
    }
}

// --------------------------------------------------------- flow network

struct NetSt {
    net: FlowNetwork<NetSt>,
}

impl HasNetwork for NetSt {
    fn network(&mut self) -> &mut FlowNetwork<NetSt> {
        &mut self.net
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every flow completes, completion times are consistent with link
    /// capacity (never faster than the bottleneck allows), and the total
    /// transferred equals the sum of sizes.
    #[test]
    fn flows_complete_and_respect_capacity(
        sizes_mb in proptest::collection::vec(1u64..200, 1..12),
        egress_mb in 5.0f64..100.0,
        stream_mb in 1.0f64..50.0,
    ) {
        let mut net = FlowNetwork::new(1, FaultPlan::none());
        net.add_endpoint(Endpoint::new(
            "src",
            Rate::mb_per_sec(egress_mb),
            Rate::mb_per_sec(1e6),
            Rate::mb_per_sec(stream_mb),
            Duration::ZERO,
        ));
        net.add_endpoint(Endpoint::new(
            "dst",
            Rate::mb_per_sec(1e6),
            Rate::mb_per_sec(1e6),
            Rate::mb_per_sec(1e6),
            Duration::ZERO,
        ));
        let mut sim = Simulation::new(NetSt { net });
        let done: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
        for &mb in &sizes_mb {
            let done = Rc::clone(&done);
            start_flow(&mut sim, "src", "dst", ByteSize::mb(mb), move |sim, out| {
                assert!(out.is_success());
                done.borrow_mut().push(sim.now().as_secs_f64());
            });
        }
        sim.run();
        let done = done.borrow();
        prop_assert_eq!(done.len(), sizes_mb.len());
        let total_mb: u64 = sizes_mb.iter().sum();
        let makespan = done.iter().cloned().fold(0.0, f64::max);
        // Aggregate bound: cannot beat the egress link.
        prop_assert!(
            makespan + 1e-6 >= total_mb as f64 / egress_mb,
            "makespan {makespan} beats egress bound"
        );
        // Per-flow bound: no flow beats its own stream cap.
        let min_size = *sizes_mb.iter().min().unwrap() as f64;
        let earliest = done.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(earliest + 1e-6 >= min_size / stream_mb.min(egress_mb));
    }

    /// Work-conserving: with a single unconstrained-per-flow link, the
    /// makespan equals total bytes / egress exactly (fluid model).
    #[test]
    fn saturated_link_is_work_conserving(
        sizes_mb in proptest::collection::vec(10u64..100, 2..10),
    ) {
        let egress = 25.0;
        let mut net = FlowNetwork::new(2, FaultPlan::none());
        net.add_endpoint(Endpoint::new(
            "src",
            Rate::mb_per_sec(egress),
            Rate::mb_per_sec(1e6),
            Rate::mb_per_sec(1e6),
            Duration::ZERO,
        ));
        net.add_endpoint(Endpoint::new(
            "dst",
            Rate::mb_per_sec(1e6),
            Rate::mb_per_sec(1e6),
            Rate::mb_per_sec(1e6),
            Duration::ZERO,
        ));
        let mut sim = Simulation::new(NetSt { net });
        let last = Rc::new(RefCell::new(0.0f64));
        for &mb in &sizes_mb {
            let last = Rc::clone(&last);
            start_flow(&mut sim, "src", "dst", ByteSize::mb(mb), move |sim, _| {
                let t = sim.now().as_secs_f64();
                let mut l = last.borrow_mut();
                if t > *l {
                    *l = t;
                }
            });
        }
        sim.run();
        let expected = sizes_mb.iter().sum::<u64>() as f64 / egress;
        let measured = *last.borrow();
        prop_assert!(
            (measured - expected).abs() / expected < 1e-6,
            "makespan {measured} vs fluid bound {expected}"
        );
    }
}

// -------------------------------------------------------------- cluster

struct ClSt {
    cl: ClusterModel<ClSt>,
}

impl eoml::cluster::exec::HasCluster for ClSt {
    fn cluster(&mut self) -> &mut ClusterModel<ClSt> {
        &mut self.cl
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All submitted tasks complete, occupancy returns to zero, and the
    /// node never beats its modeled aggregate throughput.
    #[test]
    fn cluster_tasks_complete_within_model_bounds(
        works in proptest::collection::vec(10.0f64..300.0, 1..12),
    ) {
        let model = ContentionModel {
            work_cv: 0.0,
            ..ContentionModel::defiant()
        };
        let mut spec = ClusterSpec::defiant();
        spec.nodes = 1;
        let mut sim = Simulation::new(ClSt {
            cl: ClusterModel::new(spec, model, 3),
        });
        let done = Rc::new(RefCell::new(0usize));
        for &w in &works {
            let done = Rc::clone(&done);
            submit_task(&mut sim, 0, w, move |_| {
                *done.borrow_mut() += 1;
            });
        }
        sim.run();
        prop_assert_eq!(*done.borrow(), works.len());
        let total: f64 = works.iter().sum();
        let elapsed = sim.now().as_secs_f64();
        // Can't beat the peak node throughput at this concurrency.
        let peak = model.node_throughput(works.len());
        prop_assert!(
            total / elapsed <= peak * (1.0 + 1e-9),
            "throughput {} exceeds model peak {peak}",
            total / elapsed
        );
        prop_assert_eq!(sim.state_mut().cluster().active_workers(), 0);
    }
}

//! Integration tests of the virtual-time multi-facility campaign: YAML
//! config → five-stage workflow → report, spanning `eoml-config`,
//! `eoml-core`, `eoml-transfer`, `eoml-cluster` and `eoml-flows`.

use eoml::config::WorkflowConfig;
use eoml::core::campaign::{run_campaign, CampaignParams};
use eoml::transfer::faults::FaultPlan;

const YAML: &str = r#"
name: itest
seed: 77
platform: Terra
time_span:
  start: 2022-01-01
  days: 1
download:
  workers: 3
  files_per_day: 8
preprocess:
  nodes: 2
  workers_per_node: 8
inference:
  workers: 1
"#;

#[test]
fn yaml_config_drives_a_full_campaign() {
    let cfg = WorkflowConfig::from_yaml_str(YAML).expect("valid yaml");
    let report = run_campaign(CampaignParams::from_config(&cfg));
    // 8 files × 3 products downloaded.
    assert_eq!(report.download.files.len(), 24);
    assert!(report.download.failed.is_empty());
    // Every MOD02 file became a preprocessing task.
    assert_eq!(report.granules, 8);
    // Everything produced got labeled and shipped.
    assert_eq!(report.labeled_files, report.tile_files);
    assert_eq!(report.shipment.files_ok, report.tile_files);
    assert!(report.makespan_s > 0.0);
    // Stage ordering: download before preprocess end before shipment end.
    let dl = report.stage("download").expect("download");
    let pp = report.stage("preprocess").expect("preprocess");
    let sh = report.stage("shipment").expect("shipment");
    assert!(dl.finished <= pp.finished);
    assert!(pp.finished <= sh.finished);
}

#[test]
fn more_nodes_shorten_preprocessing() {
    let run = |nodes: usize| {
        run_campaign(CampaignParams {
            files_per_day: 64,
            nodes,
            ..CampaignParams::paper_demo()
        })
    };
    let r1 = run(1);
    let r8 = run(8);
    let t1 = r1.stage("preprocess").unwrap().seconds();
    let t8 = r8.stage("preprocess").unwrap().seconds();
    assert!(
        t8 < t1 * 0.55,
        "8 nodes ({t8:.1}s) should be much faster than 1 ({t1:.1}s)"
    );
    // Same work either way.
    assert_eq!(r1.tile_files, r8.tile_files);
    assert!((r1.total_tiles - r8.total_tiles).abs() < 1e-6);
}

#[test]
fn more_download_workers_shorten_stage1_on_large_batches() {
    let run = |workers: usize| {
        run_campaign(CampaignParams {
            files_per_day: 32,
            download_workers: workers,
            ..CampaignParams::paper_demo()
        })
    };
    let t3 = run(3).stage("download").unwrap().seconds();
    let t6 = run(6).stage("download").unwrap().seconds();
    assert!(t6 < t3, "6 workers {t6:.1}s vs 3 workers {t3:.1}s");
}

#[test]
fn campaign_survives_flaky_wan() {
    let report = run_campaign(CampaignParams {
        files_per_day: 16,
        faults: FaultPlan::flaky_wan(),
        ..CampaignParams::paper_demo()
    });
    // All files eventually arrive (retries) and the pipeline completes.
    assert_eq!(report.download.files.len(), 48);
    assert!(report.download.failed.is_empty());
    assert_eq!(report.labeled_files, report.tile_files);
    assert_eq!(report.shipment.files_failed, 0);
}

#[test]
fn telemetry_covers_all_five_stages() {
    let report = run_campaign(CampaignParams::paper_demo());
    let tel = &report.telemetry;
    assert!(tel.total_seconds("download", "launch") > 0.0);
    assert!(tel.total_seconds("download", "transfer") > 0.0);
    assert!(tel.total_seconds("preprocess", "slurm_alloc") > 0.0);
    assert!(tel.total_seconds("preprocess", "total") > 0.0);
    assert!(tel.mean_seconds("inference", "flow_action") > 0.0);
    assert!(tel.total_seconds("shipment", "transfer") > 0.0);
    // Activity timelines exist for the three worker-bearing stages.
    for stage in ["download", "preprocess", "inference"] {
        assert!(tel.peak(stage) > 0, "no activity recorded for {stage}");
    }
}

#[test]
fn default_config_runs_a_day_of_288_granules() {
    // The default config downloads whole days (288 files/product). Keep the
    // cluster small so the test stays quick while still exercising volume.
    let mut cfg = WorkflowConfig::default();
    cfg.preprocess.nodes = 8;
    let mut params = CampaignParams::from_config(&cfg);
    params.files_per_day = 288;
    let report = run_campaign(params);
    assert_eq!(report.granules, 288);
    assert_eq!(report.download.files.len(), 864);
    // Roughly half the granules are daytime.
    assert!(
        report.tile_files > 80 && report.tile_files < 220,
        "{}",
        report.tile_files
    );
    // Daily volume ≈ 58.4 GB across the three products.
    let gb = report.download.bytes.as_gb();
    assert!((50.0..70.0).contains(&gb), "downloaded {gb} GB");
}

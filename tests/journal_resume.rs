//! Headline crash/resume equivalence: kill a journaled campaign at an
//! arbitrary event index, resume it from the recovered journal, and the
//! final report's per-stage totals exactly equal an uninterrupted run's —
//! with zero re-execution of journaled-complete work.
//!
//! Spans `eoml-journal` (WAL + recovery), `eoml-core` (resumable batch and
//! streaming campaigns) and `eoml-flows` (journaled flow runs).

use eoml::core::campaign::{run_campaign, run_campaign_resumable, CampaignParams, CampaignReport};
use eoml::core::streaming::{
    run_streaming_campaign, run_streaming_campaign_resumable, StreamingParams,
};
use eoml::journal::{Journal, JournalError, JournalEvent, MemStorage};

fn params() -> CampaignParams {
    CampaignParams {
        files_per_day: 8,
        ..CampaignParams::paper_demo()
    }
}

/// Deterministic pseudo-random kill points (SplitMix64 step).
fn kill_points(n: usize, max_exclusive: usize, seed: u64) -> Vec<usize> {
    let mut x = seed;
    (0..n)
        .map(|_| {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            1 + (z as usize) % (max_exclusive - 1)
        })
        .collect()
}

fn assert_reports_equal(resumed: &CampaignReport, baseline: &CampaignReport, tag: &str) {
    assert_eq!(resumed.granules, baseline.granules, "{tag}: granules");
    assert_eq!(resumed.tile_files, baseline.tile_files, "{tag}: tile files");
    assert_eq!(
        resumed.total_tiles, baseline.total_tiles,
        "{tag}: total tiles must match exactly"
    );
    assert_eq!(
        resumed.labeled_files, baseline.labeled_files,
        "{tag}: labeled files"
    );
    assert_eq!(
        resumed.download.files.len(),
        baseline.download.files.len(),
        "{tag}: downloaded file count"
    );
    assert_eq!(
        resumed.download.bytes, baseline.download.bytes,
        "{tag}: downloaded bytes"
    );
    assert_eq!(
        resumed.shipment.files_ok, baseline.shipment.files_ok,
        "{tag}: shipped file count"
    );
    assert_eq!(
        resumed.shipment.bytes, baseline.shipment.bytes,
        "{tag}: shipped bytes"
    );
    for stage in &baseline.stages {
        let other = resumed
            .stage(&stage.name)
            .unwrap_or_else(|| panic!("{tag}: resumed run lost stage {}", stage.name));
        assert_eq!(other.items, stage.items, "{tag}: {} items", stage.name);
        assert_eq!(other.bytes, stage.bytes, "{tag}: {} bytes", stage.name);
    }
}

/// No completion event may appear twice in a journal — re-executing
/// journaled-complete work would journal it again.
fn assert_no_duplicate_completions(events: &[JournalEvent], tag: &str) {
    let mut seen = std::collections::BTreeSet::new();
    for event in events {
        let key = match event {
            JournalEvent::FileDownloaded { file, .. } => Some(format!("dl:{file}")),
            JournalEvent::TileFileWritten { file, .. } => Some(format!("tile:{file}")),
            JournalEvent::LabelsAppended { file, .. } => Some(format!("label:{file}")),
            JournalEvent::MonitorTriggered { file } => Some(format!("monitor:{file}")),
            _ => None,
        };
        if let Some(key) = key {
            assert!(
                seen.insert(key.clone()),
                "{tag}: duplicated completion {key}"
            );
        }
    }
}

#[test]
fn campaign_killed_at_arbitrary_points_resumes_to_identical_report() {
    let baseline = run_campaign(params());

    // Learn the total journal length from one uninterrupted journaled run.
    let probe = MemStorage::new();
    let (journal, _) = Journal::open(probe.clone()).unwrap();
    run_campaign_resumable(params(), journal).unwrap();
    let (probe_journal, _) = Journal::open(probe).unwrap();
    let total_events = probe_journal.len();
    assert!(
        total_events > 20,
        "campaign journaled only {total_events} events"
    );

    for (i, kill_at) in kill_points(12, total_events, 0xC11F)
        .into_iter()
        .enumerate()
    {
        let tag = format!("kill #{i} at event {kill_at}/{total_events}");
        let store = MemStorage::new();
        let (mut journal, _) = Journal::open(store.clone()).unwrap();
        journal.crash_after(kill_at);
        let crashed = run_campaign_resumable(params(), journal);
        assert!(
            matches!(crashed, Err(JournalError::Crashed)),
            "{tag}: expected a crash, got {crashed:?}"
        );

        let (journal, recovery) = Journal::open(store.clone()).unwrap();
        assert!(recovery.events <= kill_at, "{tag}: recovered too much");
        let resumed = run_campaign_resumable(params(), journal).unwrap();
        assert_reports_equal(&resumed, &baseline, &tag);

        let (final_journal, _) = Journal::open(store).unwrap();
        assert_no_duplicate_completions(final_journal.events(), &tag);
    }
}

#[test]
fn campaign_survives_two_crashes_in_a_row() {
    let baseline = run_campaign(params());
    let store = MemStorage::new();
    let (mut journal, _) = Journal::open(store.clone()).unwrap();
    journal.crash_after(9);
    assert!(run_campaign_resumable(params(), journal).is_err());
    let (mut journal, _) = Journal::open(store.clone()).unwrap();
    journal.crash_after(11);
    assert!(run_campaign_resumable(params(), journal).is_err());
    let (journal, _) = Journal::open(store.clone()).unwrap();
    let resumed = run_campaign_resumable(params(), journal).unwrap();
    assert_reports_equal(&resumed, &baseline, "double crash");
    let (final_journal, _) = Journal::open(store).unwrap();
    assert_no_duplicate_completions(final_journal.events(), "double crash");
}

#[test]
fn resume_on_a_finished_journal_replays_without_new_work() {
    let baseline = run_campaign(params());
    let store = MemStorage::new();
    let (journal, _) = Journal::open(store.clone()).unwrap();
    run_campaign_resumable(params(), journal).unwrap();
    let events_after_run = Journal::open(store.clone()).unwrap().0.len();

    let (journal, _) = Journal::open(store.clone()).unwrap();
    let replayed = run_campaign_resumable(params(), journal).unwrap();
    assert_reports_equal(&replayed, &baseline, "finished-journal replay");
    // A pure replay appends no new completion events (snapshots aside).
    let (final_journal, _) = Journal::open(store).unwrap();
    let new_completions = final_journal.events()[events_after_run.min(final_journal.len())..]
        .iter()
        .filter(|e| {
            matches!(
                e,
                JournalEvent::FileDownloaded { .. }
                    | JournalEvent::TileFileWritten { .. }
                    | JournalEvent::LabelsAppended { .. }
            )
        })
        .count();
    assert_eq!(new_completions, 0, "replay re-executed completed work");
    assert_no_duplicate_completions(final_journal.events(), "finished-journal replay");
}

#[test]
fn streaming_campaign_killed_at_random_points_resumes_to_identical_totals() {
    let sparams = StreamingParams {
        base: CampaignParams {
            files_per_day: 12,
            nodes: 2,
            ..CampaignParams::paper_demo()
        },
        ..StreamingParams::demo()
    };
    let baseline = run_streaming_campaign(sparams.clone());

    let probe = MemStorage::new();
    let (journal, _) = Journal::open(probe.clone()).unwrap();
    run_streaming_campaign_resumable(sparams.clone(), journal).unwrap();
    let total_events = Journal::open(probe).unwrap().0.len();

    for (i, kill_at) in kill_points(4, total_events, 0x57E4).into_iter().enumerate() {
        let tag = format!("stream kill #{i} at {kill_at}/{total_events}");
        let store = MemStorage::new();
        let (mut journal, _) = Journal::open(store.clone()).unwrap();
        journal.crash_after(kill_at);
        let crashed = run_streaming_campaign_resumable(sparams.clone(), journal);
        assert!(crashed.is_err(), "{tag}: expected a crash");
        let (journal, _) = Journal::open(store.clone()).unwrap();
        let r = run_streaming_campaign_resumable(sparams.clone(), journal).unwrap();
        assert_eq!(r.granules_downloaded, baseline.granules_downloaded, "{tag}");
        assert_eq!(
            r.granules_preprocessed, baseline.granules_preprocessed,
            "{tag}"
        );
        assert_eq!(r.labeled_files, baseline.labeled_files, "{tag}");
        assert_eq!(r.shipped_files, baseline.shipped_files, "{tag}");
        assert_eq!(r.downloaded, baseline.downloaded, "{tag}");
        assert_eq!(r.shipped, baseline.shipped, "{tag}");
        let (final_journal, _) = Journal::open(store).unwrap();
        assert_no_duplicate_completions(final_journal.events(), &tag);
    }
}

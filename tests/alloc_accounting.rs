//! End-to-end resource accounting: a counting global allocator plus an
//! obs-attached campaign must attribute nonzero allocator traffic to the
//! preprocess stage — the tier-1-visible form of the example's
//! `--features alloc-profile` walkthrough.

use std::sync::Arc;

use eoml::core::campaign::{run_campaign, CampaignParams};
use eoml::obs::resource::{memory_table, CountingAlloc, ALLOC_BYTES_COUNTER, ALLOC_PEAK_GAUGE};
use eoml::obs::table::Cell;
use eoml::obs::{Obs, ObsReport};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn campaign_attributes_allocator_bytes_to_preprocess() {
    let obs = Obs::shared();
    let params = CampaignParams {
        files_per_day: 24,
        ..CampaignParams::small()
    }
    .with_obs(Arc::clone(&obs));
    let report = run_campaign(params);
    assert!(report.granules > 0, "campaign must preprocess granules");

    let metrics = obs.metrics();
    let preprocess_bytes = metrics
        .counter_value(ALLOC_BYTES_COUNTER, "preprocess")
        .expect("preprocess stage reports alloc_bytes");
    assert!(
        preprocess_bytes > 0,
        "preprocess must attribute nonzero allocator bytes"
    );
    let download_bytes = metrics
        .counter_value(ALLOC_BYTES_COUNTER, "download")
        .expect("download stage reports alloc_bytes");
    assert!(download_bytes > 0);
    assert!(
        metrics
            .gauge_value(ALLOC_PEAK_GAUGE, "preprocess")
            .unwrap_or(0.0)
            > 0.0,
        "preprocess peak gauge must be set"
    );

    // The Fig.-7-style memory table carries one row per instrumented
    // stage, and the campaign report surfaces it.
    let table = memory_table(&metrics.snapshot());
    let stages: Vec<&Cell> = table.rows.iter().map(|r| &r[0]).collect();
    assert!(stages.contains(&&Cell::str("preprocess")), "{stages:?}");
    assert!(stages.contains(&&Cell::str("download")));

    let obs_report = ObsReport::from_obs(&obs);
    assert!(
        !obs_report.memory.rows.is_empty(),
        "ObsReport must include the memory breakdown when counters exist"
    );
    let rendered = obs_report.render_text(0);
    assert!(
        rendered.contains("Memory breakdown"),
        "render_text must show the memory section"
    );
}

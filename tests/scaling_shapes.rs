//! Shape tests for the paper's evaluation: the qualitative claims of
//! §IV must hold in the reproduction — who wins, where scaling saturates,
//! where crossovers fall. These are integration tests over
//! `eoml-cluster` + `eoml-executor` (the scaling substrate) and
//! `eoml-transfer` (the download substrate).

use eoml::cluster::contention::ContentionModel;
use eoml::cluster::exec::ClusterModel;
use eoml::cluster::spec::ClusterSpec;
use eoml::executor::simexec::{run_batch, BatchReport};
use eoml::modis::catalog::Catalog;
use eoml::modis::product::Platform;
use eoml::simtime::Simulation;
use eoml::transfer::endpoint::Endpoint;
use eoml::transfer::faults::FaultPlan;
use eoml::transfer::flownet::{FlowNetwork, HasNetwork};
use eoml::transfer::pool::{DownloadPool, DownloadReport};
use eoml::util::timebase::CivilDate;
use eoml::util::units::ByteSize;

const TILES_PER_FILE: f64 = 150.0;

struct ClSt {
    cl: ClusterModel<ClSt>,
    report: Option<BatchReport>,
}

impl eoml::cluster::exec::HasCluster for ClSt {
    fn cluster(&mut self) -> &mut ClusterModel<ClSt> {
        &mut self.cl
    }
}

fn batch(seed: u64, nodes: usize, wpn: usize, files: usize) -> BatchReport {
    let mut spec = ClusterSpec::defiant();
    spec.node.cores = spec.node.cores.max(wpn);
    let mut sim = Simulation::new(ClSt {
        cl: ClusterModel::new(spec, ContentionModel::defiant(), seed),
        report: None,
    });
    run_batch(
        &mut sim,
        (0..nodes).collect(),
        wpn,
        vec![TILES_PER_FILE; files],
        |sim, r| sim.state_mut().report = Some(r),
    );
    sim.run();
    sim.into_state().report.expect("batch ran")
}

fn mean_time(nodes: usize, wpn: usize, files: usize) -> f64 {
    (0..3)
        .map(|i| batch(11 + i * 53, nodes, wpn, files).completion_s())
        .sum::<f64>()
        / 3.0
}

#[test]
fn fig4a_shape_worker_scaling_saturates_then_second_node_helps() {
    // Strong scaling over workers, 128 files.
    let t1 = mean_time(1, 1, 128);
    let t2 = mean_time(1, 2, 128);
    let t8 = mean_time(1, 8, 128);
    let t16 = mean_time(1, 16, 128);
    let t64 = mean_time(1, 64, 128);
    let t128 = mean_time(2, 64, 128);
    // Sub-linear but real speedup at low counts.
    assert!(t2 < t1 * 0.65, "1→2 workers: {t1:.0} → {t2:.0}");
    assert!(t8 < t2 * 0.65, "2→8 workers: {t2:.0} → {t8:.0}");
    // Saturation: 16→64 gains almost nothing.
    assert!(
        (t64 / t16 - 1.0).abs() < 0.10,
        "16→64 should be flat: {t16:.0} vs {t64:.0}"
    );
    // The second node roughly halves completion (the Fig. 4a cliff).
    assert!(t128 < t64 * 0.65, "64→128 (2nd node): {t64:.0} → {t128:.0}");
}

#[test]
fn fig4b_shape_node_scaling_is_near_linear() {
    let t1 = mean_time(1, 8, 80);
    let t5 = mean_time(5, 8, 80);
    let t10 = mean_time(10, 8, 80);
    let s5 = t1 / t5;
    let s10 = t1 / t10;
    assert!((3.4..5.0).contains(&s5), "5-node speedup {s5:.2}");
    assert!((6.0..9.5).contains(&s10), "10-node speedup {s10:.2}");
}

#[test]
fn fig5_shape_weak_scaling_flat_across_nodes_degrades_within_node() {
    // Across nodes (8 w/node, 2 files/worker): near-flat.
    let w1 = mean_time(1, 8, 16);
    let w10 = mean_time(10, 8, 160);
    assert!(
        w10 < w1 * 1.6,
        "weak scaling across nodes should stay near-flat: {w1:.0} → {w10:.0}"
    );
    // Within a node (2 files/worker): completion grows past saturation.
    let v2 = mean_time(1, 2, 4);
    let v32 = mean_time(1, 32, 64);
    assert!(
        v32 > v2 * 2.0,
        "within-node weak scaling should degrade: {v2:.0} → {v32:.0}"
    );
}

#[test]
fn table1_throughput_levels_match_paper_within_20_percent() {
    // Spot-check the anchor points of Table I.
    let tp = |nodes: usize, wpn: usize, files: usize| {
        files as f64 * TILES_PER_FILE / mean_time(nodes, wpn, files)
    };
    let anchors = [
        (1, 1, 128, 10.52),
        (1, 8, 128, 36.59),
        (1, 64, 128, 37.34),
        (2, 64, 128, 71.01),
        (1, 8, 80, 36.05),
        (10, 8, 80, 267.44),
    ];
    for (nodes, wpn, files, paper) in anchors {
        let measured = tp(nodes, wpn, files);
        let err = (measured - paper).abs() / paper;
        assert!(
            err < 0.20,
            "{nodes} nodes × {wpn} workers: {measured:.1} vs paper {paper} ({:.0}% off)",
            err * 100.0
        );
    }
}

#[test]
fn headline_12000_tiles_within_25_percent_of_44s() {
    let t = mean_time(10, 8, 80);
    assert!(
        (t - 44.0).abs() / 44.0 < 0.25,
        "12k tiles on 80 workers took {t:.1}s (paper: 44s)"
    );
}

// ----------------------------------------------------------- download shape

struct NetSt {
    net: FlowNetwork<NetSt>,
    report: Option<DownloadReport>,
}

impl HasNetwork for NetSt {
    fn network(&mut self) -> &mut FlowNetwork<NetSt> {
        &mut self.net
    }
}

fn download(seed: u64, n_per_product: usize, workers: usize) -> DownloadReport {
    let cat = Catalog::new(seed);
    let date = CivilDate::new(2022, 1, 1).unwrap();
    let files: Vec<(String, ByteSize)> = cat
        .batch(Platform::Terra, date, n_per_product)
        .into_iter()
        .map(|e| (e.file_name, e.size))
        .collect();
    let mut net = FlowNetwork::new(seed, FaultPlan::none());
    net.add_endpoint(Endpoint::laads());
    net.add_endpoint(Endpoint::ace_defiant());
    let mut sim = Simulation::new(NetSt { net, report: None });
    DownloadPool::run(
        &mut sim,
        "laads",
        "ace-defiant",
        files,
        workers,
        3,
        |sim, r| sim.state_mut().report = Some(r),
    );
    sim.run();
    sim.into_state().report.expect("download ran")
}

#[test]
fn fig3_shape_six_workers_gain_a_few_mb_per_s_on_average() {
    // The paper: "Increasing the number of download workers boosts the
    // average download speeds by an average of 3 MB/sec, except when
    // downloading a single file".
    let speed = |n: usize, w: usize| download(2022, n, w).aggregate_speed().as_mb_per_sec();
    let sizes = [2usize, 4, 8, 16, 32, 64];
    let mean_gain: f64 = sizes
        .iter()
        .map(|&n| speed(n, 6) - speed(n, 3))
        .sum::<f64>()
        / sizes.len() as f64;
    assert!(
        (1.0..7.0).contains(&mean_gain),
        "mean multi-file gain {mean_gain:.1} MB/s (paper: ≈3)"
    );
    // Single file per product: 3 workers already cover all 3 files, so
    // extra workers change nothing.
    let gain_small = speed(1, 6) - speed(1, 3);
    assert!(
        gain_small.abs() < 0.8,
        "single-file gain should vanish, got {gain_small:.2} MB/s"
    );
}

#[test]
fn fig3_shape_small_files_are_overhead_dominated() {
    // The per-request overhead amortizes over file size, so small MOD03
    // files see lower effective speeds than large MOD02 files — Fig. 3's
    // rising curve over product size.
    let r = download(2022, 16, 3);
    let mean_speed = |pred: &dyn Fn(u64) -> bool| {
        let speeds: Vec<f64> = r
            .files
            .iter()
            .filter(|f| pred(f.size.as_u64()))
            .map(|f| f.speed().as_mb_per_sec())
            .collect();
        assert!(!speeds.is_empty());
        speeds.iter().sum::<f64>() / speeds.len() as f64
    };
    let small = mean_speed(&|b| b < 40_000_000);
    let large = mean_speed(&|b| b > 80_000_000);
    assert!(
        small < large * 0.85,
        "small files {small:.2} MB/s should lag large files {large:.2} MB/s"
    );
}

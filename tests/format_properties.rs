//! Property-based tests (proptest) of the data-format substrates: the
//! NetCDF-3 classic codec, the EOGR granule container, and the YAML-subset
//! parser. These are the invariants the pipeline's integrity rests on:
//! whatever is written can be read back, byte-identically interpreted.

use eoml::config::parse_yaml;
use eoml::modis::container::{Container, Dataset, DatasetData};
use eoml::ncdf::{NcFile, NcType, NcValues};
use proptest::prelude::*;

// ------------------------------------------------------------- strategies

fn nc_values(t: NcType, n: usize) -> BoxedStrategy<NcValues> {
    match t {
        NcType::Byte => proptest::collection::vec(any::<i8>(), n)
            .prop_map(NcValues::Byte)
            .boxed(),
        NcType::Char => proptest::collection::vec(any::<u8>(), n)
            .prop_map(NcValues::Char)
            .boxed(),
        NcType::Short => proptest::collection::vec(any::<i16>(), n)
            .prop_map(NcValues::Short)
            .boxed(),
        NcType::Int => proptest::collection::vec(any::<i32>(), n)
            .prop_map(NcValues::Int)
            .boxed(),
        NcType::Float => proptest::collection::vec(
            prop_oneof![any::<i16>().prop_map(|v| v as f32), Just(0.0f32)],
            n,
        )
        .prop_map(NcValues::Float)
        .boxed(),
        NcType::Double => proptest::collection::vec(any::<i32>().prop_map(|v| v as f64), n)
            .prop_map(NcValues::Double)
            .boxed(),
    }
}

fn nc_type() -> impl Strategy<Value = NcType> {
    prop_oneof![
        Just(NcType::Byte),
        Just(NcType::Char),
        Just(NcType::Short),
        Just(NcType::Int),
        Just(NcType::Float),
        Just(NcType::Double),
    ]
}

prop_compose! {
    fn nc_file()(
        dim_lens in proptest::collection::vec(1usize..5, 1..4),
        has_record in any::<bool>(),
        numrecs in 0usize..4,
        var_specs in proptest::collection::vec((nc_type(), 0usize..3usize, any::<bool>()), 0..5),
        attr_count in 0usize..3,
    )(
        // Second stage: build the file and generate matching data.
        file in {
            let mut f = NcFile::new();
            let mut dims = Vec::new();
            for (i, &len) in dim_lens.iter().enumerate() {
                dims.push(f.add_dim(format!("d{i}"), len));
            }
            let rec = if has_record {
                Some(f.add_record_dim("rec").expect("single record dim"))
            } else {
                None
            };
            for _ in 0..attr_count {
                f.add_global_attr(format!("a{}", f.gatts.len()), NcValues::text("v"));
            }
            let mut strategies: Vec<BoxedStrategy<NcValues>> = Vec::new();
            let mut placed: Vec<(eoml::ncdf::VarId, bool)> = Vec::new();
            for (vi, (t, rank, wants_record)) in var_specs.iter().enumerate() {
                let rank = (*rank).min(dims.len());
                let mut shape: Vec<eoml::ncdf::DimId> = dims[..rank].to_vec();
                let is_rec = *wants_record && rec.is_some();
                if is_rec {
                    shape.insert(0, rec.expect("checked"));
                }
                let v = f
                    .add_var(format!("v{vi}"), *t, shape)
                    .expect("valid var");
                let slab = f.slab_len(v);
                let total = if is_rec { slab * numrecs } else { slab };
                strategies.push(nc_values(*t, total));
                placed.push((v, is_rec));
            }
            let numrecs = if has_record { numrecs } else { 0 };
            (Just((f, placed, numrecs)), strategies).prop_map(|((mut f, placed, numrecs), data)| {
                for ((v, is_rec), values) in placed.into_iter().zip(data) {
                    if is_rec {
                        f.vars[v.0].data = values;
                    } else {
                        f.put_values(v, values).expect("matching data");
                    }
                }
                f.numrecs = numrecs;
                f
            })
        }
    ) -> NcFile {
        file
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn netcdf_round_trips(file in nc_file()) {
        let bytes = file.encode().expect("encodable");
        let back = NcFile::decode(&bytes).expect("decodable");
        prop_assert_eq!(back, file);
    }

    #[test]
    fn netcdf_decode_never_panics_on_mutations(
        file in nc_file(),
        flip_at in any::<prop::sample::Index>(),
        flip_bits in any::<u8>(),
    ) {
        let mut bytes = file.encode().expect("encodable");
        if !bytes.is_empty() {
            let i = flip_at.index(bytes.len());
            bytes[i] ^= flip_bits;
            // Must either decode or return an error — never panic/hang.
            let _ = NcFile::decode(&bytes);
        }
    }
}

// ------------------------------------------------------ container properties

fn dataset_data() -> impl Strategy<Value = DatasetData> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(DatasetData::U8),
        proptest::collection::vec(any::<i32>(), 0..32).prop_map(DatasetData::I32),
        proptest::collection::vec(any::<i32>().prop_map(|v| v as f32), 0..32)
            .prop_map(DatasetData::F32),
    ]
}

prop_compose! {
    fn container()(
        attrs in proptest::collection::vec(("[a-z]{1,8}", "[ -~]{0,16}"), 0..4),
        datasets in proptest::collection::vec(("[a-z_]{1,12}", dataset_data()), 0..5),
    ) -> Container {
        let mut c = Container::new();
        for (k, v) in attrs {
            c.attrs.insert(k, v);
        }
        for (i, (name, data)) in datasets.into_iter().enumerate() {
            let len = data.len() as u32;
            c.datasets.push(Dataset::new(format!("{name}{i}"), vec![len], data));
        }
        c
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn container_round_trips(c in container()) {
        let back = Container::decode(&c.encode()).expect("decodable");
        prop_assert_eq!(back, c);
    }

    #[test]
    fn container_detects_any_payload_corruption(
        c in container(),
        flip_at in any::<prop::sample::Index>(),
        flip_bits in 1u8..=255,
    ) {
        let bytes = c.encode();
        if !bytes.is_empty() {
            let mut corrupted = bytes.clone();
            let i = flip_at.index(bytes.len());
            corrupted[i] ^= flip_bits;
            // Either it fails to decode (usually checksum/structure), or —
            // if the flip landed in an attribute or name — the decoded
            // value differs from the original. It must never silently
            // produce identical content from different bytes.
            match Container::decode(&corrupted) {
                Err(_) => {}
                Ok(back) => prop_assert_ne!(back, c),
            }
        }
    }
}

// ----------------------------------------------------------- yaml properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn yaml_parser_never_panics(src in "[ -~\n]{0,400}") {
        let _ = parse_yaml(&src);
    }

    #[test]
    fn yaml_flat_map_round_trips(
        entries in proptest::collection::vec(("[a-z][a-z0-9_]{0,10}", -1000i64..1000), 1..8)
    ) {
        // Deduplicate keys (duplicates are a parse error by design).
        let mut seen = std::collections::HashSet::new();
        let entries: Vec<_> = entries.into_iter().filter(|(k, _)| seen.insert(k.clone())).collect();
        let src: String = entries
            .iter()
            .map(|(k, v)| format!("{k}: {v}\n"))
            .collect();
        let doc = parse_yaml(&src).expect("valid document");
        for (k, v) in &entries {
            prop_assert_eq!(doc.get(k).and_then(|x| x.as_i64()), Some(*v));
        }
    }

    #[test]
    fn yaml_quoted_strings_round_trip(s in "[ -~]{0,30}") {
        // Escape single quotes by doubling them (YAML single-quote rule).
        let quoted = format!("key: '{}'\n", s.replace('\'', "''"));
        let doc = parse_yaml(&quoted).expect("valid document");
        prop_assert_eq!(doc.get("key").and_then(|v| v.as_str()), Some(s.as_str()));
    }
}

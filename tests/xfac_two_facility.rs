//! Two-facility acceptance: a campaign ships with a manifest, the
//! destination facility ingests and verifies it, both facilities' span
//! stores stitch into one Chrome trace with a WAN-attributed critical
//! path, corrupted shipments fail loudly (typed error + Degraded health),
//! and a clean re-ship after an ack is idempotent.

use eoml::core::campaign::{run_campaign, CampaignParams};
use eoml::journal::{Journal, JournalEvent, MemStorage};
use eoml::obs::ops::health;
use eoml::obs::{FacilitySpans, FacilityStatus, HealthPolicy, HealthState, Obs, XfacAnalysis};
use eoml::transfer::{receive, FaultInjector, FaultPlan, IngestError, Ingestor, ReceivedArtifact};
use serde_json::Value;
use std::sync::Arc;

const SOURCE: &str = "ace-defiant";
const DEST: &str = "frontier-orion";

/// Run the source campaign with an obs hub attached and hand back hub +
/// report (manifest included).
fn source_campaign() -> (Arc<Obs>, eoml::core::campaign::CampaignReport) {
    let obs = Obs::shared();
    let report = run_campaign(
        CampaignParams {
            files_per_day: 24,
            ..CampaignParams::small()
        }
        .with_obs(Arc::clone(&obs)),
    );
    assert!(report.labeled_files > 0, "need shipped files");
    (obs, report)
}

#[test]
fn clean_shipment_verifies_acks_and_stitches_into_one_trace() {
    let (src_obs, report) = source_campaign();
    let manifest = report.manifest.as_ref().expect("manifest");
    assert_eq!(manifest.len(), report.labeled_files);

    // Destination facility: its own obs hub and verifier.
    let dst_obs = Obs::shared();
    let mut ingestor = Ingestor::new(DEST).with_obs(Arc::clone(&dst_obs));
    let mut faults = FaultInjector::new(FaultPlan::none());
    let received = receive(manifest, &mut faults);
    let ingest = ingestor.ingest(manifest, &received, manifest.created_s + 5.0);
    assert!(ingest.ok(), "clean ingest failed: {:?}", ingest.errors);
    assert!(!ingest.duplicate);
    assert_eq!(ingest.verified.len(), manifest.len());

    // The ack is journaled; a restarted destination restores it and
    // treats the re-ship as a duplicate (idempotent).
    let store = MemStorage::new();
    let (mut journal, _) = Journal::open(store.clone()).unwrap();
    journal
        .append(JournalEvent::IngestAcked {
            manifest: ingest.manifest_id.clone(),
            facility: DEST.into(),
            files: ingest.verified.len() as u64,
            bytes: ingest.bytes_verified,
        })
        .unwrap();
    drop(journal);
    let (journal, _) = Journal::open(store).unwrap();
    assert!(journal.state().is_ingest_acked(&manifest.id()));
    let mut restarted = Ingestor::new(DEST).with_obs(Arc::clone(&dst_obs));
    restarted.restore_acked(journal.state().ingests_acked.keys().cloned());
    let again = restarted.ingest(manifest, &received, manifest.created_s + 9.0);
    assert!(again.duplicate, "re-ship of an acked manifest must no-op");

    // Stitch both facilities into one cross-facility timeline.
    let x = XfacAnalysis::stitch(&[
        FacilitySpans::capture(SOURCE, &src_obs),
        FacilitySpans::capture(DEST, &dst_obs),
    ]);
    let stitched = x.stitched_trace_ids();
    assert!(
        !stitched.is_empty(),
        "no trace crossed the WAN: src={} dst={} spans",
        src_obs.span_count(),
        dst_obs.span_count()
    );
    let id = stitched[0].to_string();
    let wan = x.wan_breakdown(&id).expect("stitched trace analysable");
    assert!(
        wan.wire_s > 0.0,
        "no wire time on the critical path: {wan:?}"
    );
    assert!(wan.verify_s > 0.0, "no verify time: {wan:?}");

    // The Chrome export renders both facilities as process lanes.
    let doc = x.chrome_trace();
    let v: Value = serde_json::from_str(&doc).expect("valid stitched trace");
    let events = v["traceEvents"].as_array().unwrap();
    let lanes: Vec<(&str, f64)> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("M"))
        .map(|e| {
            (
                e["args"]["name"].as_str().unwrap(),
                e["pid"].as_f64().unwrap(),
            )
        })
        .collect();
    assert!(lanes.contains(&(SOURCE, 1.0)), "{lanes:?}");
    assert!(lanes.contains(&(DEST, 2.0)), "{lanes:?}");
    // Shipment spans live on the source pid, verify spans on the
    // destination pid, and a stitched granule appears on both.
    let pid_of = |cat: &str| {
        events
            .iter()
            .find(|e| e["ph"].as_str() == Some("X") && e["cat"].as_str() == Some(cat))
            .map(|e| e["pid"].as_f64().unwrap())
            .unwrap_or_else(|| panic!("no {cat} events"))
    };
    assert_eq!(pid_of("shipment"), 1.0);
    assert_eq!(pid_of("ingest"), 2.0);
    let pids_for_trace: Vec<f64> = events
        .iter()
        .filter(|e| e["args"]["trace_id"].as_str() == Some(id.as_str()))
        .map(|e| e["pid"].as_f64().unwrap())
        .collect();
    assert!(pids_for_trace.contains(&1.0) && pids_for_trace.contains(&2.0));
}

#[test]
fn corrupt_shipment_fails_loudly_and_degrades_facility_health() {
    let (_src_obs, report) = source_campaign();
    let manifest = report.manifest.as_ref().expect("manifest");

    // Deterministically corrupt the WAN: same seed → same failures.
    let plan = FaultPlan {
        drop_probability: 0.2,
        corrupt_probability: 0.2,
    };
    let dst_obs = Obs::shared();
    let mut ingestor = Ingestor::new(DEST).with_obs(Arc::clone(&dst_obs));
    let received = receive(manifest, &mut FaultInjector::new(plan).with_seed(7));
    let ingest = ingestor.ingest(manifest, &received, manifest.created_s + 5.0);
    assert!(!ingest.ok(), "corruption must not verify");
    assert!(!ingest.duplicate);
    let err = ingest.first_error().expect("typed error");
    assert!(
        matches!(
            err,
            IngestError::DigestMismatch { .. } | IngestError::Missing { .. }
        ),
        "unexpected error: {err:?}"
    );
    // The same seed reproduces the same failure set.
    let received2 = receive(manifest, &mut FaultInjector::new(plan).with_seed(7));
    let ingest2 = Ingestor::new(DEST).ingest(manifest, &received2, manifest.created_s + 5.0);
    let kinds =
        |r: &eoml::transfer::IngestReport| r.errors.iter().map(|e| e.kind()).collect::<Vec<_>>();
    assert_eq!(kinds(&ingest), kinds(&ingest2));

    // The rejection is journaled as a loud, durable audit record...
    let store = MemStorage::new();
    let (mut journal, _) = Journal::open(store).unwrap();
    journal
        .append(JournalEvent::IngestRejected {
            manifest: ingest.manifest_id.clone(),
            facility: DEST.into(),
            reason: err.kind().into(),
        })
        .unwrap();
    assert!(!journal.state().is_ingest_acked(&manifest.id()));
    assert_eq!(journal.state().ingest_rejections[DEST], 1);

    // ...and the facility's verify-failure counters fold into health as
    // Degraded (or worse, at high failure rates).
    let stage_key = format!("facility:{DEST}");
    let verified = dst_obs
        .metrics()
        .counter_value("artifacts_verified", &stage_key)
        .unwrap_or(0);
    let failures = dst_obs
        .metrics()
        .counter_value("verify_failures", &stage_key)
        .unwrap_or(0);
    assert!(failures > 0, "failure counter did not move");
    let status = FacilityStatus {
        facility: DEST.into(),
        ingest_lag_s: 5.0,
        verified,
        verify_failures: failures,
    };
    let health = health::evaluate(
        &HealthPolicy::default(),
        manifest.created_s + 5.0,
        1,
        None,
        0,
        Vec::new(),
        0,
        false,
        0,
        vec![status],
    );
    assert!(
        !matches!(health.state, HealthState::Healthy),
        "a failing destination must not look healthy: {:?}",
        health.state
    );
    let reasons = match &health.state {
        HealthState::Degraded { reasons } | HealthState::Unhealthy { reasons } => reasons.clone(),
        HealthState::Healthy => unreachable!(),
    };
    assert!(
        reasons.iter().any(|r| r.contains(DEST)),
        "reasons must name the facility: {reasons:?}"
    );

    // A clean re-ship then verifies and acks — the failure was transient
    // WAN damage, not manifest damage.
    let clean: Vec<ReceivedArtifact> = manifest
        .artifacts
        .iter()
        .map(ReceivedArtifact::faithful)
        .collect();
    let retry = ingestor.ingest(manifest, &clean, manifest.created_s + 30.0);
    assert!(retry.ok(), "clean re-ship failed: {:?}", retry.errors);
    assert!(!retry.duplicate, "failed ingest must not have acked");
    // And only now is the manifest acked: a further re-ship no-ops.
    let dup = ingestor.ingest(manifest, &clean, manifest.created_s + 40.0);
    assert!(dup.duplicate);
}

#[test]
fn ingest_report_json_round_trips_for_ci_artifacts() {
    let (_src, report) = source_campaign();
    let manifest = report.manifest.as_ref().expect("manifest");
    let mut ingestor = Ingestor::new(DEST);
    let received = receive(manifest, &mut FaultInjector::new(FaultPlan::none()));
    let ingest = ingestor.ingest(manifest, &received, manifest.created_s + 1.0);
    let json = ingest.to_json();
    assert_eq!(json["ok"].as_bool(), Some(true));
    assert_eq!(json["facility"].as_str(), Some(DEST));
    let back = eoml::transfer::IngestReport::from_json(&json).expect("round trip");
    assert_eq!(back.manifest_id, ingest.manifest_id);
    assert_eq!(back.verified.len(), ingest.verified.len());
}

//! Integration tests of the *real-execution* pipeline: synthetic granules
//! on disk → parallel preprocessing → monitor → RICC inference flow →
//! labeled NetCDF in the outbox. Spans `eoml-modis`, `eoml-preprocess`,
//! `eoml-flows`, `eoml-ricc`, `eoml-ncdf`, `eoml-executor` and `eoml-core`.

use eoml::core::realrun::RealPipeline;
use eoml::modis::granule::GranuleId;
use eoml::modis::product::Platform;
use eoml::modis::synth::{SwathDims, SwathSynthesizer};
use eoml::ncdf::NcFile;
use eoml::preprocess::writer::read_tiles_nc;
use eoml::util::timebase::CivilDate;
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eoml-itest-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn day_granules(n: usize) -> Vec<GranuleId> {
    let sy = SwathSynthesizer::new(2022, SwathDims::small());
    let date = CivilDate::new(2022, 1, 1).unwrap();
    (0..288)
        .map(|slot| GranuleId::new(Platform::Terra, date, slot))
        .filter(|&g| sy.synthesize(g).day)
        .take(n)
        .collect()
}

#[test]
fn full_pipeline_produces_valid_labeled_netcdf() {
    let dir = tempdir("full");
    let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 2)
        .unwrap()
        .with_thresholds(0.2, 0.1);
    let report = pipeline.run(&day_granules(3)).unwrap();
    assert_eq!(report.granules, 3);
    assert!(report.tile_files >= 1);
    assert_eq!(report.labeled_tiles, report.total_tiles);
    assert_eq!(report.outbox.len(), report.tile_files);

    for path in &report.outbox {
        // Every shipped file is a structurally valid NetCDF-3 classic file
        // with consistent tiles + labels.
        let bytes = std::fs::read(path).unwrap();
        assert_eq!(&bytes[..3], b"CDF", "magic in {path:?}");
        let nc = NcFile::decode(&bytes).unwrap();
        let (tiles, labels) = read_tiles_nc(&nc).unwrap();
        let labels = labels.expect("labels appended");
        assert_eq!(labels.len(), tiles.len());
        assert!(labels.iter().all(|&l| (0..42).contains(&l)));
        for t in &tiles {
            assert_eq!(t.size, 32);
            assert_eq!(t.bands, vec![6, 7, 20, 28, 29, 31]);
            assert!(t.cloud_fraction >= 0.1);
            assert!(t.ocean_fraction >= 0.2);
            assert!((-90.0..=90.0).contains(&t.center_lat));
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let granules = day_granules(2);
    let label_sets: Vec<Vec<usize>> = (0..2)
        .map(|_| {
            let dir = tempdir("det");
            let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 2)
                .unwrap()
                .with_thresholds(0.0, 0.0);
            let report = pipeline.run(&granules).unwrap();
            let mut labels = Vec::new();
            for path in &report.outbox {
                let nc = NcFile::decode(&std::fs::read(path).unwrap()).unwrap();
                let (_, l) = read_tiles_nc(&nc).unwrap();
                labels.extend(l.unwrap().into_iter().map(|x| x as usize));
            }
            std::fs::remove_dir_all(&dir).unwrap();
            labels
        })
        .collect();
    assert_eq!(label_sets[0], label_sets[1]);
    assert!(!label_sets[0].is_empty());
}

#[test]
fn preprocessing_scales_with_local_workers() {
    // Real strong scaling: 2 workers should beat 1 on a CPU-bound batch —
    // but only where the host actually has two cores to run them on.
    // Single-core runners cannot produce a wall-clock speedup, so there
    // the test degrades to checking that the worker count does not change
    // the result. Each configuration takes the best of three trials so one
    // descheduled run can't flip the timing comparison.
    let granules = day_granules(10);
    let run_with = |workers: usize| {
        let dir = tempdir(&format!("scale{workers}"));
        let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, workers).unwrap();
        let report = pipeline.run(&granules).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        (report.total_tiles, report.tile_files, report.stage_secs[1])
    };
    let best = |workers: usize| {
        (0..3)
            .map(|_| run_with(workers))
            .reduce(|a, b| if b.2 < a.2 { b } else { a })
            .unwrap()
    };
    let (tiles1, files1, t1) = best(1);
    let (tiles2, files2, t2) = best(2);
    assert_eq!(tiles1, tiles2, "worker count changed the tile total");
    assert_eq!(files1, files2, "worker count changed the file count");
    assert!(tiles1 > 0, "batch produced no tiles");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 2 {
        eprintln!("single-core host ({cores} cpu): skipping wall-clock speedup assertion");
        return;
    }
    assert!(
        t2 < t1 * 0.95,
        "2 workers ({t2:.2}s) should beat 1 worker ({t1:.2}s)"
    );
}

#[test]
fn mixed_day_night_input_processes_only_day() {
    let dir = tempdir("mixed");
    let sy = SwathSynthesizer::new(2022, SwathDims::small());
    let date = CivilDate::new(2022, 1, 1).unwrap();
    // Two day + two night granules.
    let mut granules = Vec::new();
    let mut day = 0;
    let mut night = 0;
    for slot in 0..288 {
        let g = GranuleId::new(Platform::Terra, date, slot);
        let is_day = sy.synthesize(g).day;
        if is_day && day < 2 {
            granules.push(g);
            day += 1;
        }
        if !is_day && night < 2 {
            granules.push(g);
            night += 1;
        }
        if day == 2 && night == 2 {
            break;
        }
    }
    let pipeline = RealPipeline::new(&dir, 2022, SwathDims::small(), 32, 2)
        .unwrap()
        .with_thresholds(0.0, 0.0);
    let report = pipeline.run(&granules).unwrap();
    assert_eq!(report.granules, 4);
    assert_eq!(report.tile_files, 2, "only day granules yield tiles");
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Per-granule trace analysis end to end.
//!
//! A hand-built five-stage trace with a known critical path and one
//! injected straggler must be recovered exactly (critical path, straggler
//! set, per-stage service/queue attribution), the Fig. 6 timeline stats
//! must match the synthetic schedule, and a full observed campaign's
//! Fig. 6/7 report must agree with the metrics registry while a healthy
//! run raises no alerts.

use eoml::core::campaign::{run_campaign, trace_for_artifact, CampaignParams};
use eoml::obs::analysis::stage_timelines;
use eoml::obs::{
    AlertRule, Obs, ObsReport, ProgressSink, SegmentKind, StragglerConfig, TraceAnalysis,
    TraceContext,
};
use eoml::simtime::SimTime;
use std::sync::Arc;

const STAGES: [&str; 5] = ["download", "preprocess", "monitor", "inference", "shipment"];

fn t(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

/// One synthetic granule's five-stage journey, shifted by `o` seconds:
/// download 10 s, 2 s queue, preprocess `pp` seconds, a monitor trigger
/// 1 s into the 2 s handoff gap, inference 8 s, 1 s queue, shipment 2 s.
fn record_granule(obs: &Obs, id: &str, o: f64, pp: f64) {
    let trace = TraceContext::new(id);
    let tr = Some(&trace);
    obs.record_sim_span_traced("download", "file", t(o), t(o + 10.0), tr, &[]);
    let pp_end = o + 12.0 + pp;
    obs.record_sim_span_traced("preprocess", "granule", t(o + 12.0), t(pp_end), tr, &[]);
    obs.record_sim_span_traced(
        "monitor",
        "trigger",
        t(pp_end + 1.0),
        t(pp_end + 1.0),
        tr,
        &[],
    );
    obs.record_sim_span_traced(
        "inference",
        "infer",
        t(pp_end + 2.0),
        t(pp_end + 10.0),
        tr,
        &[],
    );
    obs.record_sim_span_traced(
        "shipment",
        "file",
        t(pp_end + 11.0),
        t(pp_end + 13.0),
        tr,
        &[],
    );
}

/// Five granules 100 s apart; G5's preprocess is the injected straggler
/// (40 s against a median of 8 s).
fn synthetic_obs() -> Arc<Obs> {
    let obs = Obs::shared();
    for (i, id) in ["G1", "G2", "G3", "G4", "G5"].iter().enumerate() {
        let pp = if *id == "G5" { 40.0 } else { 8.0 };
        record_granule(&obs, id, i as f64 * 100.0, pp);
    }
    obs
}

#[test]
fn synthetic_trace_recovers_exact_critical_path_and_attribution() {
    let obs = synthetic_obs();
    let analysis = TraceAnalysis::from_obs(&obs);
    assert_eq!(analysis.len(), 5);

    let g1 = analysis.trace("G1").expect("G1 trace");
    assert!((g1.e2e_seconds() - 33.0).abs() < 1e-9);
    for stage in STAGES {
        assert!(g1.stages().contains(&stage), "missing {stage}");
    }

    // The critical path tiles [0, 33] with the exact segment sequence:
    // the monitor mark splits the preprocess → inference handoff gap.
    let path = g1.critical_path();
    let shape: Vec<(SegmentKind, &str)> = path
        .iter()
        .map(|seg| (seg.kind, seg.stage.as_str()))
        .collect();
    assert_eq!(
        shape,
        vec![
            (SegmentKind::Service, "download"),
            (SegmentKind::Queue, "preprocess"),
            (SegmentKind::Service, "preprocess"),
            (SegmentKind::Queue, "monitor"),
            (SegmentKind::Queue, "inference"),
            (SegmentKind::Service, "inference"),
            (SegmentKind::Queue, "shipment"),
            (SegmentKind::Service, "shipment"),
        ]
    );
    let tiled: f64 = path.iter().map(|seg| seg.seconds()).sum();
    assert!(
        (tiled - g1.e2e_seconds()).abs() < 1e-9,
        "path must tile e2e"
    );

    // Per-stage service vs. queueing attribution.
    let attr = g1.stage_attribution();
    let of = |stage: &str| {
        attr.iter()
            .find(|a| a.stage == stage)
            .unwrap_or_else(|| panic!("no {stage} attribution"))
    };
    for (stage, service, queue) in [
        ("download", 10.0, 0.0),
        ("preprocess", 8.0, 2.0),
        ("monitor", 0.0, 1.0),
        ("inference", 8.0, 1.0),
        ("shipment", 2.0, 1.0),
    ] {
        let a = of(stage);
        assert!((a.service_s - service).abs() < 1e-9, "{stage} service");
        assert!((a.queue_s - queue).abs() < 1e-9, "{stage} queue");
    }
    assert_eq!(g1.bottleneck().unwrap().stage, "download");
}

#[test]
fn injected_straggler_is_the_only_one_found() {
    let obs = synthetic_obs();
    let analysis = TraceAnalysis::from_obs(&obs);
    let stragglers = analysis.stragglers(&StragglerConfig::default());
    assert_eq!(stragglers.len(), 1, "{stragglers:?}");
    let s = &stragglers[0];
    assert_eq!(s.stage, "preprocess");
    assert_eq!(s.trace_id, "G5");
    assert!((s.seconds - 40.0).abs() < 1e-9);
    assert!(
        (s.median_s - 8.0).abs() < 1e-9,
        "exact median of 8,8,8,8,40"
    );

    // stage_health covers the same five stages the analysis saw.
    let health = obs.stage_health();
    for stage in STAGES {
        let h = health
            .iter()
            .find(|h| h.stage == stage)
            .unwrap_or_else(|| panic!("no {stage} health"));
        assert_eq!(h.spans_closed, 5, "{stage}");
    }
    let dl = health.iter().find(|h| h.stage == "download").unwrap();
    assert!((dl.busy_seconds - 50.0).abs() < 1e-6);
}

#[test]
fn fig6_timeline_reports_utilization_and_idle_gaps() {
    let obs = synthetic_obs();
    let timelines = stage_timelines(&obs.spans());
    let dl = timelines
        .iter()
        .find(|tl| tl.stage == "download")
        .expect("download timeline");
    // Five 10 s downloads starting 100 s apart: extent [0, 410], 50 s
    // busy, four 90 s idle gaps, never more than one active.
    assert!((dl.first_s - 0.0).abs() < 1e-9);
    assert!((dl.last_s - 410.0).abs() < 1e-9);
    assert!((dl.busy_seconds - 50.0).abs() < 1e-9);
    assert!((dl.idle_seconds - 360.0).abs() < 1e-9);
    assert_eq!(dl.idle_gaps.len(), 4);
    assert_eq!(dl.peak, 1);
    assert_eq!(dl.active_at(5.0), 1);
    assert_eq!(dl.active_at(50.0), 0);
    assert!((dl.utilization() - 50.0 / 410.0).abs() < 1e-9);
}

#[test]
fn campaign_report_agrees_with_registry_and_healthy_run_stays_quiet() {
    let obs = Obs::shared();
    // A live progress sink with a generous stall threshold: a healthy
    // campaign must not trip it.
    let sink = ProgressSink::new().with_rule(AlertRule::StageStalled {
        stage: "download".into(),
        idle_s: 1e9,
    });
    let alerts = sink.alerts();
    obs.add_sink(Box::new(sink));
    let params = CampaignParams {
        files_per_day: 24,
        ..CampaignParams::small()
    }
    .with_obs(Arc::clone(&obs));
    let report = run_campaign(params);
    assert!(report.labeled_files > 0);
    assert!(alerts.lock().unwrap().is_empty(), "healthy run alerted");

    // The Fig. 6/7 report's per-stage totals agree with the registry.
    let obs_report = ObsReport::from_obs(&obs);
    let mismatches = obs_report.verify_against(&obs.metrics().snapshot());
    assert!(mismatches.is_empty(), "{mismatches:?}");
    let text = obs_report.render_text(0);
    assert!(text.contains("Fig. 6"));
    assert!(text.contains("Fig. 7"));
    for stage in STAGES {
        assert!(text.contains(stage), "report missing {stage}");
    }

    // Provenance join: every shipped artifact has a queryable trace with
    // a nameable slow stage.
    let analysis = TraceAnalysis::from_obs(&obs);
    let shipped: Vec<&str> = report
        .provenance
        .records()
        .iter()
        .filter(|r| r.artifact.starts_with("orion:"))
        .map(|r| r.artifact.as_str())
        .collect();
    assert!(!shipped.is_empty());
    for artifact in shipped {
        let trace = trace_for_artifact(&analysis, artifact)
            .unwrap_or_else(|| panic!("no trace behind {artifact}"));
        assert!(trace.bottleneck().is_some());
    }
}

//! End-to-end observability: a full simulated campaign with an [`Obs`] hub
//! attached produces a valid Chrome trace covering all five stages plus a
//! Prometheus dump, and a journaled crash/resume surfaces the recovery
//! metrics — the acceptance criteria for the unified tracing layer.

use eoml::core::campaign::{run_campaign, run_campaign_resumable, CampaignParams};
use eoml::journal::{Journal, JournalError, MemStorage};
use eoml::obs::Obs;
use serde_json::Value;
use std::sync::Arc;

fn observed_params(obs: &Arc<Obs>) -> CampaignParams {
    CampaignParams {
        files_per_day: 24,
        ..CampaignParams::small()
    }
    .with_obs(Arc::clone(obs))
}

#[test]
fn campaign_trace_covers_all_five_stages_and_parses() {
    let obs = Obs::shared();
    let report = run_campaign(observed_params(&obs));
    assert!(report.tile_files > 0, "campaign produced no tile files");

    // The Chrome trace parses and mirrors every collected span.
    let trace: Value = serde_json::from_str(&obs.chrome_trace_json()).expect("valid trace JSON");
    let events = trace["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(events.len(), obs.span_count());
    for stage in ["download", "preprocess", "monitor", "inference", "shipment"] {
        assert!(
            events
                .iter()
                .any(|e| e["cat"].as_str() == Some(stage) && e["ph"].as_str() == Some("X")),
            "no {stage} events in the Chrome trace"
        );
    }
    // Sim-stamped events carry the sim clock tag and non-negative µs.
    for e in events {
        assert_eq!(e["args"]["clock"].as_str(), Some("sim"));
        assert!(e["ts"].as_f64().unwrap() >= 0.0);
        assert!(e["dur"].as_f64().unwrap() >= 0.0);
    }

    // Per-granule tracing: every per-file download span and every
    // inference span rides into the exported trace with its granule's
    // trace id (the stage-level wrapper spans stay untraced).
    for (cat, name) in [
        ("download", "file"),
        ("preprocess", "granule"),
        ("monitor", "trigger"),
        ("inference", "compute"),
        ("shipment", "file"),
    ] {
        let per_item: Vec<_> = events
            .iter()
            .filter(|e| e["cat"].as_str() == Some(cat) && e["name"].as_str() == Some(name))
            .collect();
        assert!(!per_item.is_empty(), "no {cat}/{name} events");
        for e in per_item {
            let id = e["args"]["trace_id"]
                .as_str()
                .unwrap_or_else(|| panic!("{cat}/{name} event missing trace_id: {e}"));
            assert!(id.contains(".A2022"), "odd granule id {id}");
        }
    }

    // The Prometheus dump exposes the per-stage counters.
    let prom = obs.prometheus_text();
    for needle in [
        "eoml_files_total{stage=\"download\"}",
        "eoml_granules_total{stage=\"preprocess\"}",
        "eoml_triggers_total{stage=\"monitor\"}",
        "eoml_files_labeled_total{stage=\"inference\"}",
        "eoml_files_shipped_total{stage=\"shipment\"}",
    ] {
        assert!(prom.contains(needle), "missing {needle} in:\n{prom}");
    }
}

#[test]
fn journaled_resume_surfaces_recovery_metrics() {
    let store = MemStorage::new();
    {
        let obs = Obs::shared();
        let (journal, _) = Journal::open_observed(store.clone(), Arc::clone(&obs)).unwrap();
        let mut journal = journal;
        journal.crash_after(30);
        let crashed = run_campaign_resumable(observed_params(&obs), journal);
        assert!(matches!(crashed, Err(JournalError::Crashed)));
        // The crashed run still journaled durable appends.
        assert!(obs.metrics().counter_value("appends", "journal").unwrap() > 0);
    }

    // Reopen through the observed path: recovery stats become metrics.
    let obs = Obs::shared();
    let (journal, recovery) = Journal::open_observed(store, Arc::clone(&obs)).unwrap();
    assert!(recovery.events > 0, "crash left no durable events");
    let m = obs.metrics();
    assert_eq!(m.counter_value("recoveries", "journal"), Some(1));
    assert_eq!(
        m.counter_value("events_recovered", "journal"),
        Some(recovery.events as u64)
    );
    assert!(
        m.counter_value("frames_replayed", "journal").unwrap() > 0,
        "resume should replay journal frames"
    );

    // The resumed campaign completes and its trace still covers the
    // stages that had to re-run.
    let resumed = run_campaign_resumable(observed_params(&obs), journal).unwrap();
    assert!(resumed.tile_files > 0);
    let trace: Value = serde_json::from_str(&obs.chrome_trace_json()).unwrap();
    assert!(!trace["traceEvents"].as_array().unwrap().is_empty());
    let prom = obs.prometheus_text();
    assert!(prom.contains("eoml_frames_replayed_total{stage=\"journal\"}"));
}

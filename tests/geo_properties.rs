//! Property-based tests of the geodesy substrate: great-circle identities,
//! orbital invariants, solar geometry, and land-mask determinism — the
//! foundations the synthetic MOD03 product rests on.

use eoml::geo::landmask::LandMask;
use eoml::geo::latlon::{normalize_lon, LatLon};
use eoml::geo::orbit::{OrbitParams, SunSyncOrbit};
use eoml::geo::solar::solar_zenith_deg;
use eoml::util::timebase::{CivilDate, UtcTime};
use proptest::prelude::*;

fn lat() -> impl Strategy<Value = f64> {
    -85.0f64..85.0
}

fn lon() -> impl Strategy<Value = f64> {
    -180.0f64..180.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn distance_is_a_metric(
        (la1, lo1) in (lat(), lon()),
        (la2, lo2) in (lat(), lon()),
        (la3, lo3) in (lat(), lon()),
    ) {
        let a = LatLon::new(la1, lo1);
        let b = LatLon::new(la2, lo2);
        let c = LatLon::new(la3, lo3);
        // Symmetry.
        prop_assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-6);
        // Identity.
        prop_assert!(a.distance_km(&a) < 1e-6);
        // Triangle inequality (numerical slack).
        prop_assert!(a.distance_km(&c) <= a.distance_km(&b) + b.distance_km(&c) + 1e-6);
        // Bounded by half the circumference.
        prop_assert!(a.distance_km(&b) <= std::f64::consts::PI * 6371.0 + 1e-6);
    }

    #[test]
    fn destination_round_trips_distance_and_bearing(
        (la, lo) in (lat(), lon()),
        bearing in 0.0f64..360.0,
        dist in 1.0f64..5000.0,
    ) {
        let start = LatLon::new(la, lo);
        let end = start.destination(bearing, dist);
        prop_assert!((start.distance_km(&end) - dist).abs() < 1.0,
            "distance {} vs requested {dist}", start.distance_km(&end));
        // Walking back along the reverse bearing returns near the start
        // (use the bearing measured at the destination).
        let back_bearing = end.bearing_to(&start);
        let back = end.destination(back_bearing, dist);
        prop_assert!(back.distance_km(&start) < 2.0,
            "returned {} km from start", back.distance_km(&start));
    }

    #[test]
    fn normalize_lon_is_idempotent_and_periodic(l in -1000.0f64..1000.0) {
        let n = normalize_lon(l);
        prop_assert!((-180.0..=180.0).contains(&n));
        prop_assert_eq!(normalize_lon(n), n);
        prop_assert!((normalize_lon(l + 360.0) - n).abs() < 1e-9);
    }

    #[test]
    fn ground_track_stays_on_the_sphere_and_below_max_lat(t in 0.0f64..200_000.0) {
        let orbit = SunSyncOrbit::new(OrbitParams::terra());
        let p = orbit.ground_point(t);
        prop_assert!(p.lat.abs() <= 81.9, "lat {} at t={t}", p.lat);
        prop_assert!((-180.0..=180.0).contains(&p.lon));
    }

    #[test]
    fn solar_zenith_is_bounded_and_antipodally_complementary(
        (la, lo) in (lat(), lon()),
        secs in 0.0f64..86_400.0,
    ) {
        let t = UtcTime::from_date(CivilDate::new(2022, 3, 21).unwrap())
            + std::time::Duration::from_secs_f64(secs);
        let p = LatLon::new(la, lo);
        let z = solar_zenith_deg(&p, t);
        prop_assert!((0.0..=180.0).contains(&z));
        // At the equinox the sun is over the equator: the antipode's zenith
        // is the supplement (within the low-precision formulas' tolerance).
        let anti = LatLon::new(-la, lo + 180.0);
        let za = solar_zenith_deg(&anti, t);
        prop_assert!((z + za - 180.0).abs() < 3.0, "z {z} + antipode {za}");
    }

    #[test]
    fn landmask_is_pure(la in lat(), lo in lon()) {
        let m = LandMask::earth_like(2022);
        let p = LatLon::new(la, lo);
        prop_assert_eq!(m.is_land(&p), m.is_land(&p));
        let v = m.field_value(&p);
        prop_assert!((0.0..1.0).contains(&v));
    }
}
